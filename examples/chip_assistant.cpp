// chip_assistant — the paper's end-to-end story in one binary (Figures 4-6).
//
// Builds (or loads from the cache) the LLaMA3-8B-analog model family:
// base -> instruct finetune -> LoRA DAFT -> ChipAlign merge, then answers a
// few instruction-laden chip questions with all three models side by side,
// mirroring the response comparisons of the paper's Figures 5 and 6.
//
// The questions are served, not looped: every model hosts one multi-tenant
// Server (src/serve), all engineer queries are submitted up front as
// concurrent sessions, and the continuous-batching scheduler decodes them
// together — the multi-client serving path, producing bit-identical text
// to per-question generate() calls.
//
// The retrieval index persists alongside the model cache: the first run
// builds and durably saves it, later runs load it back (bitwise-identical
// rankings) instead of re-tokenizing and re-embedding the corpus; all demo
// questions are retrieved as one thread-pooled batch.
//
//   ./examples/chip_assistant            # demo questions
//   ./examples/chip_assistant --rag      # retrieve context instead of golden
//   ./examples/chip_assistant --dtype int8 --kv-dtype f16
//                                        # quantized weights + fp16 KV cache
//   ./examples/chip_assistant --speculative --draft-k 4
//                                        # prompt-lookup draft + multi-token
//                                        # verify; same bytes, fewer steps
//   ./examples/chip_assistant --request-timeout-ms 5000
//                                        # per-question deadline; slow
//                                        # questions expire, the rest finish
//
// Ctrl-C (SIGINT) or SIGTERM drains the servers instead of dying mid-batch:
// admission closes, resident sessions finish (or hit their deadlines), and
// the summary reports what completed versus what was shut down.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "data/corpus.hpp"
#include "eval/grader.hpp"
#include "eval/metrics.hpp"
#include "nn/infer.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

using namespace chipalign;

namespace {

/// Loads the cached retrieval index if one exists, else builds it from the
/// fact-base corpus and saves it for the next run.
RetrievalPipeline load_or_build_rag(const ModelZoo& zoo) {
  const std::string index_path = zoo.cache_dir() + "/retrieval_index.bin";
  try {
    RetrievalPipeline rag = RetrievalPipeline::load(index_path);
    std::printf("loaded retrieval index %s (%zu documents)\n",
                index_path.c_str(), rag.corpus_size());
    return rag;
  } catch (const Error&) {
    // Missing (first run) or corrupt — rebuild and persist.
  }
  RetrievalPipeline rag(zoo.facts().corpus_sentences());
  rag.save(index_path);
  std::printf("built and saved retrieval index %s (%zu documents)\n",
              index_path.c_str(), rag.corpus_size());
  return rag;
}

/// Set by the SIGINT/SIGTERM handler; the serving loop polls it and drains
/// instead of letting the process die mid-batch. sig_atomic_t is the only
/// type the C++ standard guarantees is safe to write from a signal handler.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_signal(int) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
  bool use_rag = false;
  bool speculative = false;
  long draft_k = 4;
  long request_timeout_ms = 0;
  DType weight_dtype = DType::kF32;
  DType kv_dtype = DType::kF32;
  const auto parse_dtype_flag = [](const char* text, bool kv) {
    const std::string t(text);
    if (t == "f32") return DType::kF32;
    if (t == "f16") return DType::kF16;
    if (!kv && t == "bf16") return DType::kBF16;
    if (!kv && t == "int8") return DType::kI8;
    CA_THROW("unknown " << (kv ? "--kv-dtype" : "--dtype") << " '" << t
                        << "' (use " << (kv ? "f32|f16" : "f32|f16|bf16|int8")
                        << ")");
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rag") == 0) {
      use_rag = true;
    } else if (std::strcmp(argv[i], "--dtype") == 0 && i + 1 < argc) {
      weight_dtype = parse_dtype_flag(argv[++i], /*kv=*/false);
    } else if (std::strcmp(argv[i], "--kv-dtype") == 0 && i + 1 < argc) {
      kv_dtype = parse_dtype_flag(argv[++i], /*kv=*/true);
    } else if (std::strcmp(argv[i], "--speculative") == 0) {
      speculative = true;
    } else if (std::strcmp(argv[i], "--draft-k") == 0 && i + 1 < argc) {
      draft_k = std::atol(argv[++i]);
      CA_CHECK(draft_k >= 0, "--draft-k must be >= 0, got " << draft_k);
    } else if (std::strcmp(argv[i], "--request-timeout-ms") == 0 &&
               i + 1 < argc) {
      request_timeout_ms = std::atol(argv[++i]);
      CA_CHECK(request_timeout_ms >= 0,
               "--request-timeout-ms must be >= 0, got "
                   << request_timeout_ms);
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  set_log_level(LogLevel::kInfo);
  std::printf("chip_assistant — ChipAlign end-to-end demo\n");
  std::printf("==========================================\n\n");

  ModelZoo zoo;
  const BackboneSpec spec = openroad_backbone_a();
  std::printf("building / loading the %s model family (cache: %s)...\n",
              spec.name.c_str(), zoo.cache_dir().c_str());

  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct_ckpt = zoo.instruct(spec);
  const Checkpoint chip_ckpt = zoo.chip(spec);
  const Checkpoint merged_ckpt =
      run_merge("chipalign", chip_ckpt, instruct_ckpt, base, 0.6);

  TransformerModel instruct_model =
      TransformerModel::from_checkpoint(instruct_ckpt);
  TransformerModel chip_model = TransformerModel::from_checkpoint(chip_ckpt);
  TransformerModel merged_model =
      TransformerModel::from_checkpoint(merged_ckpt);
  if (weight_dtype != DType::kF32) {
    std::printf("quantizing weights to %s for serving...\n",
                dtype_name(weight_dtype).c_str());
    instruct_model.quantize_weights(weight_dtype);
    chip_model.quantize_weights(weight_dtype);
    merged_model.quantize_weights(weight_dtype);
  }

  const RetrievalPipeline rag = load_or_build_rag(zoo);

  // Demo items: instruction-laden questions over the fact base, like the
  // engineer queries of Figures 5 and 6 (same generator + seed as the
  // Table 1 bench, so these are representative of the measured population).
  const auto items = build_openroad_eval(zoo.facts(), /*seed=*/901,
                                         /*count=*/4);

  GenerateOptions gen;
  gen.max_new_tokens = 96;

  // All engineer questions retrieve as one pooled batch (identical chunks
  // to per-question retrieve_texts calls).
  std::vector<std::vector<std::string>> retrieved;
  if (use_rag) {
    std::vector<std::string> questions;
    for (const QaEvalItem& item : items) questions.push_back(item.question);
    retrieved = rag.retrieve_texts_batch(questions, 2, &global_thread_pool());
  }

  std::vector<std::string> prompts;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const QaEvalItem& item = items[i];
    const std::vector<std::string> chunks =
        use_rag ? retrieved[i] : std::vector<std::string>{item.golden_context};
    prompts.push_back(qa_prompt(instruction_header(item.instructions), chunks,
                                item.question));
  }

  struct Entry {
    const char* label;
    TransformerModel* model;
  };
  const std::vector<Entry> entries = {
      {"Instruct ", &instruct_model},
      {"EDA      ", &chip_model},
      {"ChipAlign", &merged_model},
  };

  // One server per model; all engineer queries run as concurrent sessions.
  // A SIGINT/SIGTERM mid-run drains the current server (admission closes,
  // residents finish or hit their deadlines) instead of killing the
  // process mid-batch, and skips the remaining models.
  std::vector<std::vector<std::string>> responses(entries.size());
  ServerStats last_stats;
  std::int64_t terminated_early = 0;
  for (std::size_t m = 0; m < entries.size(); ++m) {
    ServeConfig serve;
    serve.max_batch = static_cast<std::int64_t>(prompts.size());
    serve.prefix_cache_bytes = std::size_t{1} << 24;
    serve.kv_dtype = kv_dtype;
    serve.speculative = speculative;
    serve.draft_k = static_cast<std::int64_t>(draft_k);
    Server server(*entries[m].model, serve);
    std::vector<SessionId> ids;
    for (const std::string& prompt : prompts) {
      Request request =
          server.text_request(prompt, gen, /*stop_at_newline=*/true);
      request.deadline_ms = static_cast<std::int64_t>(request_timeout_ms);
      ids.push_back(server.submit(std::move(request)));
    }
    bool drained = false;
    while (server.step()) {
      if (g_interrupted != 0 && !drained) {
        std::printf("\nsignal received — draining server %zu/%zu...\n",
                    m + 1, entries.size());
        server.drain();
        drained = true;
      }
    }
    for (const SessionId id : ids) {
      const SessionResult result = server.wait_result(id);
      if (result.status == SessionStatus::kCompleted) {
        responses[m].push_back(result.text);
      } else {
        ++terminated_early;
        responses[m].push_back(std::string("[") +
                               session_status_name(result.status) + "]");
      }
    }
    last_stats = server.stats();
    if (g_interrupted != 0) break;
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    const QaEvalItem& item = items[i];
    std::printf("--------------------------------------------------------\n");
    std::printf("instructions: %s\n",
                instruction_header(item.instructions).c_str());
    for (InstructionKind kind : item.instructions) {
      std::printf("   %s = %s\n", instruction_tag(kind).c_str(),
                  instruction_description(kind).c_str());
    }
    std::printf("question:     %s\n", item.question.c_str());
    std::printf("golden:       %s\n\n", item.golden_answer.c_str());

    for (std::size_t m = 0; m < entries.size(); ++m) {
      if (i >= responses[m].size()) continue;  // model skipped after signal
      const std::string& response = responses[m][i];
      const double rouge = rouge_l(response, item.golden_answer);
      const int grade = rubric_grade(response, item.golden_answer,
                                     item.instructions);
      std::printf("  %s | ROUGE-L %.3f | grade %3d | %s\n", entries[m].label,
                  rouge, grade, response.c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "served %lld sessions per model in %lld batched steps "
      "(peak batch %lld, prefix-cache hit rate %.2f)\n",
      static_cast<long long>(last_stats.completed),
      static_cast<long long>(last_stats.steps),
      static_cast<long long>(last_stats.peak_batch),
      last_stats.cache.hit_rate());
  if (terminated_early > 0) {
    std::printf(
        "%lld session(s) ended early (expired/shut down) — see the "
        "bracketed statuses above; --request-timeout-ms %ld\n",
        static_cast<long long>(terminated_early), request_timeout_ms);
  }
  if (g_interrupted != 0) {
    std::printf("drained cleanly after signal: %lld completed, "
                "%lld shut down\n",
                static_cast<long long>(last_stats.completed),
                static_cast<long long>(last_stats.shutdown_terminated));
  }
  std::printf("dtypes: weights %s, KV cache %s (--dtype / --kv-dtype)\n",
              dtype_name(weight_dtype).c_str(), dtype_name(kv_dtype).c_str());
  if (speculative) {
    std::printf(
        "speculative decoding: draft_k %ld, accept len %.2f, draft hit "
        "rate %.2f (same bytes as plain greedy serving)\n",
        draft_k, last_stats.spec.accept_len_mean(),
        last_stats.spec.draft_hit_rate());
  }
  std::printf("context mode: %s — rerun with %s to flip.\n",
              use_rag ? "RAG (retrieved)" : "golden",
              use_rag ? "no flag" : "--rag");
  return 0;
}
