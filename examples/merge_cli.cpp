// merge_cli — command-line model merging over safetensors checkpoints,
// in the spirit of mergekit but for this repo's checkpoint format.
//
// Usage:
//   merge_cli --method chipalign --lambda 0.6 \
//             --chip chip.safetensors --instruct instruct.safetensors \
//             [--base base.safetensors] [--density 0.5] [--seed 42] \
//             [--storage f32|f16|bf16] --out merged.safetensors
//   merge_cli --analyze --chip a.safetensors --instruct b.safetensors \
//             [--base base.safetensors]
//
// With --demo (no file arguments) the tool merges two freshly initialized
// models so the binary can be exercised without any checkpoints on disk.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "merge/geometry.hpp"
#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "nn/transformer.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

struct Args {
  std::map<std::string, std::string> values;
  bool has(const std::string& key) const { return values.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    return has(key) ? std::stod(values.at(key)) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    CA_CHECK(starts_with(key, "--"), "unexpected argument '" << key << "'");
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.values[key] = argv[++i];
    } else {
      args.values[key] = "true";  // boolean flag
    }
  }
  return args;
}

DType parse_storage(const std::string& text) {
  if (text == "f32") return DType::kF32;
  if (text == "f16") return DType::kF16;
  if (text == "bf16") return DType::kBF16;
  CA_THROW("unknown --storage '" << text << "' (use f32|f16|bf16)");
}

void print_usage() {
  std::printf(
      "merge_cli — merge two safetensors checkpoints\n\n"
      "  --method M      one of: %s (default chipalign)\n"
      "  --lambda L      chip-side weight in [0,1] (default 0.6)\n"
      "  --lambda-override S=V[,S=V...]  per-tensor lambda by name suffix\n"
      "  --density D     keep fraction for ties/della/dare (default 0.5)\n"
      "  --seed S        RNG seed for stochastic methods\n"
      "  --chip PATH     chip/domain model checkpoint\n"
      "  --instruct PATH instruction model checkpoint\n"
      "  --base PATH     common base model (task-vector methods)\n"
      "  --out PATH      output checkpoint\n"
      "  --storage T     f32|f16|bf16 output storage (default f32)\n"
      "  --analyze       print weight-space geometry instead of merging\n"
      "  --demo          run on freshly initialized models (no files)\n",
      join(merger_names(), ", ").c_str());
}

Checkpoint demo_checkpoint(std::uint64_t seed) {
  ModelConfig config;
  config.name = "demo";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 4;
  config.n_kv_heads = 2;
  config.d_ff = 64;
  config.max_seq_len = 128;
  Rng rng(seed);
  return TransformerModel(config, rng).to_checkpoint();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }

    Checkpoint chip;
    Checkpoint instruct;
    Checkpoint base;
    bool have_base = false;

    if (args.has("demo")) {
      chip = demo_checkpoint(11);
      instruct = demo_checkpoint(22);
      base = demo_checkpoint(33);
      have_base = true;
      std::printf("[demo] merging two freshly initialized checkpoints\n");
    } else {
      if (!args.has("chip") || !args.has("instruct")) {
        print_usage();
        return 2;
      }
      chip = Checkpoint::load(args.get("chip"));
      instruct = Checkpoint::load(args.get("instruct"));
      if (args.has("base")) {
        base = Checkpoint::load(args.get("base"));
        have_base = true;
      }
    }

    if (args.has("analyze")) {
      const auto report =
          analyze_geometry(chip, instruct, have_base ? &base : nullptr,
                           args.get_double("lambda", 0.6));
      std::printf("%-44s %10s %10s %10s %12s\n", "tensor", "numel", "theta",
                  "tv-cos", "slerp-gap");
      for (const TensorGeometry& g : report) {
        std::printf("%-44s %10lld %10.4f %10.3f %12.5f\n", g.name.c_str(),
                    static_cast<long long>(g.numel), g.theta, g.tv_cosine,
                    g.slerp_lerp_gap);
      }
      const GeometrySummary summary = summarize_geometry(report);
      std::printf("\nmean theta %.4f rad, max %.4f rad, mean tv-cosine %.3f\n",
                  summary.mean_theta, summary.max_theta, summary.mean_tv_cosine);
      return 0;
    }

    const std::string method = args.get("method", "chipalign");
    const auto merger = create_merger(method);
    MergeOptions options;
    options.lambda = args.get_double("lambda", 0.6);
    options.density = args.get_double("density", 0.5);
    if (args.has("seed")) {
      options.seed = static_cast<std::uint64_t>(std::stoull(args.get("seed")));
    }
    if (args.has("lambda-override")) {
      // Comma-separated suffix=value pairs, e.g.
      // --lambda-override embed_tokens.weight=0.3,norm.weight=0.5
      for (const std::string& pair : split(args.get("lambda-override"), ',')) {
        const auto eq = pair.find('=');
        CA_CHECK(eq != std::string::npos,
                 "--lambda-override entries must be suffix=value, got '"
                     << pair << "'");
        options.lambda_overrides.emplace_back(trim(pair.substr(0, eq)),
                                              std::stod(pair.substr(eq + 1)));
      }
    }
    CA_CHECK(!merger->requires_base() || have_base,
             "method '" << method << "' needs --base");

    Timer timer;
    const Checkpoint merged = merge_checkpoints(
        *merger, chip, instruct, have_base ? &base : nullptr, options);
    std::printf("merged %zu tensors (%lld params) with '%s' at lambda=%.2f "
                "in %.0f ms\n",
                merged.tensors().size(),
                static_cast<long long>(merged.parameter_count()),
                method.c_str(), options.lambda, timer.milliseconds());

    const std::string out = args.get("out", "merged.safetensors");
    merged.save(out, parse_storage(args.get("storage", "f32")));
    std::printf("wrote %s\n", out.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
