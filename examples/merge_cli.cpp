// merge_cli — command-line model merging over safetensors checkpoints,
// in the spirit of mergekit but for this repo's checkpoint format.
//
// In-memory merge (single-file output):
//   merge_cli --method chipalign --lambda 0.6 --chip chip.safetensors
//             --instruct instruct.safetensors --out merged.safetensors
//
// Streaming merge (sharded checkpoints, bounded memory; inputs may be
// single .safetensors files, sharded checkpoint directories, or
// model.safetensors.index.json paths; output is a directory):
//   merge_cli --streaming --method ties --chip chip_ckpt/ --instruct inst_ckpt/
//             --base base_ckpt/ --out merged_ckpt/ --shard-size-mb 64
//             --max-inflight-mb 256 [--resume]
//
// With --demo (no file arguments) the tool merges two freshly initialized
// models so the binary can be exercised without any checkpoints on disk.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "merge/geometry.hpp"
#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "nn/transformer.hpp"
#include "stream/shard_writer.hpp"
#include "stream/streaming_merge.hpp"
#include "stream/tensor_source.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/mem_probe.hpp"
#include "util/string_utils.hpp"
#include "util/timer.hpp"

using namespace chipalign;

namespace {

// Exit-code taxonomy, so soak scripts and supervisors can assert on the
// failure class without parsing stderr:
//   0 — success
//   2 — usage error (bad flags, missing arguments)
//   3 — permanent I/O or validation failure (corrupt input, plan
//       mismatch, ENOSPC, ...): retrying the same command will fail again
//   4 — transient read failures exhausted the retry budget: rerunning
//       (or raising --retry-reads) may succeed
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitPermanent = 3;
constexpr int kExitRetriesExhausted = 4;

struct Args {
  std::map<std::string, std::string> values;
  bool has(const std::string& key) const { return values.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback =
                  "") const {
    const auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    return has(key) ? std::stod(values.at(key)) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    CA_CHECK(starts_with(key, "--"), "unexpected argument '" << key << "'");
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.values[key] = argv[++i];
    } else {
      args.values[key] = "true";  // boolean flag
    }
  }
  return args;
}

DType parse_dtype(const std::string& text) {
  if (text == "f32") return DType::kF32;
  if (text == "f16") return DType::kF16;
  if (text == "bf16") return DType::kBF16;
  if (text == "int8") return DType::kI8;
  CA_THROW("unknown output dtype '" << text << "' (use f32|f16|bf16|int8)");
}

void print_usage() {
  std::printf(
      "merge_cli — merge two safetensors checkpoints\n\n"
      "  --method M      one of: %s (default chipalign)\n"
      "  --lambda L      chip-side weight in [0,1] (default 0.6)\n"
      "  --lambda-override S=V[,S=V...]  per-tensor lambda by name suffix\n"
      "  --density D     keep fraction for ties/della/dare (default 0.5)\n"
      "  --seed S        RNG seed for stochastic methods\n"
      "  --chip PATH     chip/domain model checkpoint\n"
      "  --instruct PATH instruction model checkpoint\n"
      "  --base PATH     common base model (task-vector methods)\n"
      "  --out PATH      output checkpoint (a directory with --streaming)\n"
      "  --out-dtype T   f32|f16|bf16|int8 output storage (default f32;\n"
      "                  --storage is accepted as an alias; int8 stores\n"
      "                  rank-2 tensors as codes + per-row .quant_scale\n"
      "                  companions, in-memory mode only)\n"
      "  --analyze       print weight-space geometry instead of merging\n"
      "  --demo          run on freshly initialized models (no files)\n"
      "\n"
      "streaming mode (bounded-memory sharded merge):\n"
      "  --streaming         merge shard-by-shard instead of in memory;\n"
      "                      inputs may be .safetensors files, sharded\n"
      "                      checkpoint dirs, or *.index.json paths\n"
      "  --shard-size-mb N   max data MB per output shard (default 64;\n"
      "                      0 = single shard)\n"
      "  --max-inflight-mb N in-flight working-set budget (default 256)\n"
      "  --io-threads N      prefetch reader threads (default 2)\n"
      "  --prefetch-tensors N  cap on tensors in flight at once (default 16)\n"
      "  --no-pipeline       strictly serial read->merge->write escape hatch\n"
      "                      (same bytes, no read/compute/write overlap)\n"
      "  --resume            continue an interrupted run from its journal\n"
      "  --retry-reads N     attempts per source read before giving up on a\n"
      "                      transient failure (default 1 = no retry)\n"
      "  --retry-backoff-ms M  initial retry backoff, doubled per retry\n"
      "                      (default 10)\n"
      "\n"
      "exit codes: 0 ok, 2 usage, 3 permanent I/O/validation failure,\n"
      "4 transient read retries exhausted. CHIPALIGN_FAILPOINTS (see\n"
      "src/util/failpoint.hpp) injects deterministic faults for testing.\n",
      join(merger_names(), ", ").c_str());
}

Checkpoint demo_checkpoint(std::uint64_t seed) {
  ModelConfig config;
  config.name = "demo";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 4;
  config.n_kv_heads = 2;
  config.d_ff = 64;
  config.max_seq_len = 128;
  Rng rng(seed);
  return TransformerModel(config, rng).to_checkpoint();
}

/// A `\r`-rewriting progress line: "merged 12/87 tensors (31.2 MB/s)".
/// `approx_total_bytes` scales the throughput estimate; the exact figure is
/// printed at the end. Safe to call from worker threads (one printf per call).
MergeProgressFn progress_line(std::uint64_t approx_total_bytes) {
  auto timer = std::make_shared<Timer>();
  return [timer, approx_total_bytes](std::size_t done, std::size_t total) {
    const double secs = timer->seconds();
    const double frac =
        total > 0 ? static_cast<double>(done) / static_cast<double>(total)
            : 0.0;
    const double mb =
        static_cast<double>(approx_total_bytes) * frac / (1024.0 * 1024.0);
    std::fprintf(stderr, "\rmerged %zu/%zu tensors (%.1f MB/s)%s", done, total,
                 secs > 0.0 ? mb / secs : 0.0, done == total ? "\n" : "");
    std::fflush(stderr);
  };
}

std::uint64_t mb_to_bytes(double mb) {
  CA_CHECK(mb >= 0.0, "size in MB must be non-negative, got " << mb);
  return static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    failpoint::arm_from_env();
    const Args args = parse_args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return kExitOk;
    }

    const bool streaming = args.has("streaming");
    const bool demo = args.has("demo");
    if (!demo && (!args.has("chip") || !args.has("instruct"))) {
      print_usage();
      return kExitUsage;
    }

    const std::string method = args.get("method", "chipalign");
    const auto merger = create_merger(method);
    MergeOptions options;
    options.lambda = args.get_double("lambda", 0.6);
    options.density = args.get_double("density", 0.5);
    if (args.has("seed")) {
      options.seed = static_cast<std::uint64_t>(std::stoull(args.get("seed")));
    }
    if (args.has("lambda-override")) {
      // Comma-separated suffix=value pairs, e.g.
      // --lambda-override embed_tokens.weight=0.3,norm.weight=0.5
      for (const std::string& pair : split(args.get("lambda-override"), ',')) {
        const auto eq = pair.find('=');
        CA_CHECK(eq != std::string::npos,
                 "--lambda-override entries must be suffix=value, got '"
                     << pair << "'");
        options.lambda_overrides.emplace_back(trim(pair.substr(0, eq)),
                                              std::stod(pair.substr(eq + 1)));
      }
    }
    // Fail on bad hyperparameters before touching any checkpoint — this also
    // covers modes that never reach a merge driver, like --analyze.
    validate_merge_options(options);
    const DType out_dtype =
        parse_dtype(args.get("out-dtype", args.get("storage", "f32")));

    if (streaming) {
      CA_CHECK(!args.has("analyze"), "--analyze is an in-memory mode");
      CA_CHECK(out_dtype != DType::kI8,
               "--out-dtype int8 needs the in-memory path (the sharded "
               "writer does not emit .quant_scale companions); drop "
               "--streaming");
      const std::string out_dir = args.get("out", "merged_checkpoint");

      std::string chip_path = args.get("chip");
      std::string instruct_path = args.get("instruct");
      std::string base_path = args.get("base");
      if (demo) {
        // Materialize demo checkpoints as small sharded inputs so the
        // streaming path is exercised end to end.
        chip_path = out_dir + "/.demo/chip";
        instruct_path = out_dir + "/.demo/instruct";
        base_path = out_dir + "/.demo/base";
        save_sharded_checkpoint(chip_path, demo_checkpoint(11), 1u << 20);
        save_sharded_checkpoint(instruct_path, demo_checkpoint(22), 1u << 20);
        save_sharded_checkpoint(base_path, demo_checkpoint(33), 1u << 20);
        std::printf(
            "[demo] streaming-merging freshly initialized checkpoints\n");
      }

      const ShardedTensorSource chip = ShardedTensorSource::open(chip_path);
      const ShardedTensorSource instruct =
          ShardedTensorSource::open(instruct_path);
      const bool have_base = !base_path.empty();
      CA_CHECK(!merger->requires_base() || have_base,
               "method '" << method << "' needs --base");
      ShardedTensorSource base_storage =
          have_base ? ShardedTensorSource::open(base_path)
                    : ShardedTensorSource();

      StreamingMergeConfig config;
      config.shard_size_bytes = mb_to_bytes(args.get_double("shard-size-mb",
                                                            64));
      config.max_inflight_bytes =
          mb_to_bytes(args.get_double("max-inflight-mb", 256));
      config.out_dtype = out_dtype;
      config.resume = args.has("resume");
      config.pipeline = !args.has("no-pipeline");
      if (args.has("io-threads")) {
        const double io_threads = args.get_double("io-threads", 2);
        CA_CHECK(io_threads >= 1,
                 "--io-threads must be at least 1, got " << io_threads);
        config.io_threads = static_cast<std::size_t>(io_threads);
      }
      if (args.has("prefetch-tensors")) {
        const double prefetch = args.get_double("prefetch-tensors", 16);
        CA_CHECK(prefetch >= 1,
                 "--prefetch-tensors must be at least 1, got " << prefetch);
        config.prefetch_tensors = static_cast<std::size_t>(prefetch);
      }
      if (args.has("retry-reads")) {
        const double attempts = args.get_double("retry-reads", 1);
        CA_CHECK(attempts >= 1,
                 "--retry-reads must be at least 1, got " << attempts);
        config.read_retry.max_attempts = static_cast<int>(attempts);
      }
      if (args.has("retry-backoff-ms")) {
        const double backoff = args.get_double("retry-backoff-ms", 10);
        CA_CHECK(backoff >= 1,
                 "--retry-backoff-ms must be at least 1, got " << backoff);
        config.read_retry.backoff_ms = static_cast<int>(backoff);
      }
      config.progress = progress_line(chip.total_bytes());

      const StreamingMergeReport report =
          merge_streaming(*merger, chip, instruct,
                          have_base ? &base_storage : nullptr, options, config,
                          out_dir);
      std::printf(
          "streamed %zu tensors (%zu resumed) into %zu shard(s): %s written "
          "at %.1f MB/s in %.2f s [%s]\n",
          report.tensor_count, report.resumed_count, report.shard_count,
          format_bytes(report.bytes_written).c_str(), report.mb_per_second(),
          report.seconds, report.pipelined ? "pipelined" : "serial");
      std::printf(
          "stage busy time: read %.2f s, merge %.2f s, write %.2f s "
          "(%zu source reads checksum-verified, %zu transient reads "
          "retried)\n",
          report.read_seconds, report.merge_seconds, report.write_seconds,
          report.source_checksums_verified, report.read_retries);
      std::printf("wrote %s (peak RSS %s, in-flight budget %s)\n",
                  report.index_path.c_str(),
                  format_bytes(peak_rss_bytes()).c_str(),
                  format_bytes(config.max_inflight_bytes).c_str());
      return kExitOk;
    }

    Checkpoint chip;
    Checkpoint instruct;
    Checkpoint base;
    bool have_base = false;

    if (demo) {
      chip = demo_checkpoint(11);
      instruct = demo_checkpoint(22);
      base = demo_checkpoint(33);
      have_base = true;
      std::printf("[demo] merging two freshly initialized checkpoints\n");
    } else {
      if (!args.has("chip") || !args.has("instruct")) {
        print_usage();
        return kExitUsage;
      }
      chip = load_sharded_checkpoint(args.get("chip"));
      instruct = load_sharded_checkpoint(args.get("instruct"));
      if (args.has("base")) {
        base = load_sharded_checkpoint(args.get("base"));
        have_base = true;
      }
    }

    if (args.has("analyze")) {
      const auto report =
          analyze_geometry(chip, instruct, have_base ? &base : nullptr,
                           args.get_double("lambda", 0.6));
      std::printf("%-44s %10s %10s %10s %12s\n", "tensor", "numel", "theta",
                  "tv-cos", "slerp-gap");
      for (const TensorGeometry& g : report) {
        std::printf("%-44s %10lld %10.4f %10.3f %12.5f\n", g.name.c_str(),
                    static_cast<long long>(g.numel), g.theta, g.tv_cosine,
                    g.slerp_lerp_gap);
      }
      const GeometrySummary summary = summarize_geometry(report);
      std::printf("\nmean theta %.4f rad, max %.4f rad, mean tv-cosine %.3f\n",
                  summary.mean_theta, summary.max_theta,
                      summary.mean_tv_cosine);
      return kExitOk;
    }

    CA_CHECK(!merger->requires_base() || have_base,
             "method '" << method << "' needs --base");

    Timer timer;
    const std::uint64_t approx_bytes =
        static_cast<std::uint64_t>(chip.parameter_count()) * sizeof(float);
    const Checkpoint merged =
        merge_checkpoints(*merger, chip, instruct, have_base ? &base : nullptr,
                          options, progress_line(approx_bytes));
    std::printf("merged %zu tensors (%lld params) with '%s' at lambda=%.2f "
                "in %.0f ms\n",
                merged.tensors().size(),
                static_cast<long long>(merged.parameter_count()),
                method.c_str(), options.lambda, timer.milliseconds());

    const std::string out = args.get("out", "merged.safetensors");
    merged.save(out, out_dtype);
    std::printf("wrote %s (peak RSS %s)\n", out.c_str(),
                format_bytes(peak_rss_bytes()).c_str());
    return kExitOk;
  } catch (const RetriesExhaustedError& e) {
    // Error messages carry the failing path (and failpoint name when one
    // was injected), so soak scripts can assert on both class and site.
    std::fprintf(stderr, "error (retries exhausted): %s\n", e.what());
    return kExitRetriesExhausted;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitPermanent;
  }
}
