// checkpoint_info — inspect and compare safetensors checkpoints.
//
//   checkpoint_info model.safetensors             # tensor table + config
//   checkpoint_info a.safetensors b.safetensors   # pairwise diff/geometry
//   checkpoint_info --demo                        # on a fresh tiny model
//
// The two-file mode prints, per tensor, the Frobenius norms, the delta norm
// and the angle between the flattened tensors — the quantities ChipAlign's
// geodesic interpolation acts on.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/table.hpp"
#include "merge/geometry.hpp"
#include "model/checkpoint.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor_ops.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"

using namespace chipalign;

namespace {

void print_single(const Checkpoint& ckpt) {
  std::printf("config: %s — %lld parameters, %zu tensors\n",
              ckpt.config().name.c_str(),
              static_cast<long long>(ckpt.parameter_count()),
              ckpt.tensors().size());
  std::printf("arch: d_model=%lld layers=%lld heads=%lld kv=%lld d_ff=%lld "
              "ctx=%lld\n\n",
              static_cast<long long>(ckpt.config().d_model),
              static_cast<long long>(ckpt.config().n_layers),
              static_cast<long long>(ckpt.config().n_heads),
              static_cast<long long>(ckpt.config().n_kv_heads),
              static_cast<long long>(ckpt.config().d_ff),
              static_cast<long long>(ckpt.config().max_seq_len));

  TablePrinter table({"Tensor", "Shape", "||W||_F", "mean", "|max|"});
  for (const TensorStats& s : ckpt.stats()) {
    table.add_row({s.name, shape_to_string(s.shape),
                   TablePrinter::fmt(s.frobenius_norm, 4),
                   TablePrinter::fmt(s.mean, 5),
                   TablePrinter::fmt(s.abs_max, 4)});
  }
  table.print();
}

void print_pair(const Checkpoint& a, const Checkpoint& b) {
  check_mergeable(a, b);
  std::printf("comparing '%s' vs '%s'\n\n", a.config().name.c_str(),
              b.config().name.c_str());
  TablePrinter table({"Tensor", "||A||_F", "||B||_F", "||A-B||_F",
                      "angle(rad)"});
  double total_delta_sq = 0.0;
  for (const std::string& name : a.names()) {
    const Tensor& ta = a.at(name);
    const Tensor& tb = b.at(name);
    const double delta = ops::frobenius_norm(ops::sub(ta, tb));
    total_delta_sq += delta * delta;
    const double cosine = ops::cosine_similarity(ta, tb);
    table.add_row({name, TablePrinter::fmt(ops::frobenius_norm(ta), 4),
                   TablePrinter::fmt(ops::frobenius_norm(tb), 4),
                   TablePrinter::fmt(delta, 4),
                   TablePrinter::fmt(std::acos(std::clamp(cosine, -1.0, 1.0)),
                                     4)});
  }
  table.print();
  std::printf("\ntotal ||A-B||_F = %.4f\n", std::sqrt(total_delta_sq));
}

Checkpoint demo_checkpoint(std::uint64_t seed, const std::string& tag) {
  ModelConfig config;
  config.name = tag;
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 64;
  Rng rng(seed);
  return TransformerModel(config, rng).to_checkpoint();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
      const Checkpoint a = demo_checkpoint(1, "demo-a");
      const Checkpoint b = demo_checkpoint(2, "demo-b");
      print_single(a);
      std::printf("\n");
      print_pair(a, b);
      return 0;
    }
    if (argc == 2) {
      print_single(Checkpoint::load(argv[1]));
      return 0;
    }
    if (argc == 3) {
      print_pair(Checkpoint::load(argv[1]), Checkpoint::load(argv[2]));
      return 0;
    }
    std::printf("usage: checkpoint_info <ckpt> [other_ckpt] | --demo\n");
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
