// Quickstart: the 60-second tour of the ChipAlign library.
//
// Creates two same-architecture models, merges them with every registered
// method, inspects the weight-space geometry, and round-trips the merged
// model through a safetensors file. No training involved — runs in well
// under a second.
//
//   ./examples/quickstart

#include <cstdio>
#include <filesystem>

#include "merge/geometry.hpp"
#include "merge/registry.hpp"
#include "model/checkpoint.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor_ops.hpp"
#include "text/tokenizer.hpp"

using namespace chipalign;

int main() {
  std::printf("ChipAlign quickstart\n====================\n\n");

  // 1. Two same-architecture models. In real use these are your chip LLM
  //    and a public instruction LLM; here they are freshly initialized.
  ModelConfig config;
  config.name = "quickstart";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 4;
  config.n_kv_heads = 2;
  config.d_ff = 64;
  config.max_seq_len = 128;

  Rng rng_chip(1);
  Rng rng_instruct(2);
  const Checkpoint chip = TransformerModel(config, rng_chip).to_checkpoint();
  const Checkpoint instruct =
      TransformerModel(config, rng_instruct).to_checkpoint();
  std::printf("built two models with %lld parameters each\n\n",
              static_cast<long long>(chip.parameter_count()));

  // 2. The paper's merge: geodesic interpolation at lambda = 0.6.
  MergeOptions options;
  options.lambda = 0.6;
  const auto chipalign = create_merger("chipalign");
  const Checkpoint merged =
      merge_checkpoints(*chipalign, chip, instruct, nullptr, options);

  // Norm restoration property: ||W_m|| = ||W_c||^0.6 * ||W_i||^0.4.
  const std::string probe = "model.layers.0.self_attn.q_proj.weight";
  std::printf("geodesic merge at lambda=0.6:\n");
  std::printf("  ||W_chip||_F     = %.4f\n",
              ops::frobenius_norm(chip.at(probe)));
  std::printf("  ||W_instruct||_F = %.4f\n",
              ops::frobenius_norm(instruct.at(probe)));
  std::printf("  ||W_merged||_F   = %.4f (geometric weighted mean)\n\n",
              ops::frobenius_norm(merged.at(probe)));

  // 3. Every other merge method through the same registry interface.
  std::printf("all registered merge methods:\n");
  for (const std::string& name : merger_names()) {
    const auto merger = create_merger(name);
    const Checkpoint result = merge_checkpoints(
        *merger, chip, instruct, merger->requires_base() ? &chip : nullptr,
        options);
    std::printf("  %-16s -> finite=%s, tensors=%zu\n", name.c_str(),
                result.all_finite() ? "yes" : "NO", result.tensors().size());
  }

  // 4. Weight-space geometry: why the geodesic differs from the chord.
  const auto geometry = analyze_geometry(chip, instruct, nullptr, 0.6);
  const GeometrySummary summary = summarize_geometry(geometry);
  std::printf("\nweight-space geometry: mean angle %.3f rad, mean SLERP/LERP "
              "gap %.4f\n",
              summary.mean_theta, summary.mean_slerp_lerp_gap);

  // 5. Checkpoints serialize to standard safetensors files.
  const auto path = (std::filesystem::temp_directory_path() /
                     "chipalign_quickstart.safetensors")
                        .string();
  merged.save(path, DType::kF16);  // half-precision storage, like real LLMs
  const Checkpoint reloaded = Checkpoint::load(path);
  std::printf("\nsaved + reloaded merged model via %s (f16 storage, %lld "
              "params)\n",
              path.c_str(), static_cast<long long>(reloaded.parameter_count()));

  std::printf("\ndone — see examples/chip_assistant.cpp for the full "
              "train-merge-evaluate pipeline.\n");
  return 0;
}
