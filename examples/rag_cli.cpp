// rag_cli — build, inspect and query persisted retrieval indexes.
//
//   rag_cli build --out PATH [--dim N] [--ngram N] [--ann-nlist N]
//       indexes the fact-base documentation corpus and durably saves it
//       (temp write -> fsync -> rename; a crash never leaves a torn index).
//   rag_cli info PATH
//       prints the index's document count, embedder shape and ANN layout.
//   rag_cli query PATH "question" [--top-k K] [--nprobe N]
//       loads the index and prints the fused top-k hits. --nprobe 0 forces
//       the exact dense scan instead of the IVF partition.
//
// Exit codes: 0 ok, 2 usage, 3 index error (missing/corrupt/truncated).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/fact_base.hpp"
#include "rag/retrieval.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

using namespace chipalign;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rag_cli build --out PATH [--dim N] [--ngram N] "
               "[--ann-nlist N]\n"
               "  rag_cli info PATH\n"
               "  rag_cli query PATH \"question\" [--top-k K] [--nprobe N]\n");
  return 2;
}

long arg_long(int argc, char** argv, int& i) {
  if (i + 1 >= argc) return -1;
  return std::atol(argv[++i]);
}

int cmd_build(int argc, char** argv) {
  std::string out;
  RetrievalConfig config;
  config.ann_nlist = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--dim") == 0) {
      config.embed_dim = static_cast<std::size_t>(arg_long(argc, argv, i));
    } else if (std::strcmp(argv[i], "--ngram") == 0) {
      config.embed_ngram = static_cast<int>(arg_long(argc, argv, i));
    } else if (std::strcmp(argv[i], "--ann-nlist") == 0) {
      config.ann_nlist = static_cast<std::size_t>(arg_long(argc, argv, i));
    } else {
      return usage();
    }
  }
  if (out.empty()) return usage();

  const FactBase facts;
  const RetrievalPipeline pipeline(facts.corpus_sentences(), config);
  pipeline.save(out);
  std::printf("indexed %zu documents -> %s (dim %zu, ngram %d, ann %s)\n",
              pipeline.corpus_size(), out.c_str(), config.embed_dim,
              config.embed_ngram,
              pipeline.has_ann()
                  ? (std::to_string(pipeline.ann().nlist()) + " partitions")
                        .c_str()
                  : "off");
  return 0;
}

int cmd_info(const std::string& path) {
  const RetrievalPipeline pipeline = RetrievalPipeline::load(path);
  std::printf("retrieval index %s\n", path.c_str());
  std::printf("  documents:     %zu\n", pipeline.corpus_size());
  std::printf("  bm25 terms:    %zu (k1 %.2f, b %.2f)\n",
              pipeline.bm25().postings().size(), pipeline.bm25().k1(),
              pipeline.bm25().b());
  std::printf("  dense:         dim %zu, ngram %d\n",
              pipeline.dense().embedder().dim(),
              pipeline.dense().embedder().ngram());
  if (pipeline.has_ann()) {
    std::printf("  ann:           %zu partitions\n", pipeline.ann().nlist());
  } else {
    std::printf("  ann:           none (exact dense scan)\n");
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string path = argv[2];
  const std::string question = argv[3];
  std::size_t top_k = 5;
  RetrievalConfig config;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top-k") == 0) {
      top_k = static_cast<std::size_t>(arg_long(argc, argv, i));
    } else if (std::strcmp(argv[i], "--nprobe") == 0) {
      config.ann_nprobe = static_cast<std::size_t>(arg_long(argc, argv, i));
    } else {
      return usage();
    }
  }
  const RetrievalPipeline pipeline = RetrievalPipeline::load(path, config);
  const auto hits = pipeline.retrieve(question, top_k);
  if (hits.empty()) {
    std::printf("no hits\n");
    return 0;
  }
  for (const RetrievalHit& hit : hits) {
    std::printf("%6.4f  #%zu  %s\n", hit.score, hit.doc_index,
                pipeline.document(hit.doc_index).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  failpoint::arm_from_env();
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "build") return cmd_build(argc, argv);
    if (command == "info" && argc >= 3) return cmd_info(argv[2]);
    if (command == "query") return cmd_query(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "rag_cli: %s\n", e.what());
    return 3;
  }
  return usage();
}
