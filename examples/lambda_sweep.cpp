// lambda_sweep — a compact version of Figure 8 for one backbone.
//
// Sweeps the ChipAlign interpolation weight over [0, 1] and reports both
// sides of the trade-off at each point: chip-domain quality (ROUGE-L on
// OpenROAD-style QA) and instruction alignment (IFEval prompt-strict
// accuracy), so the crossover the paper exploits at lambda = 0.6 is visible
// in one table.
//
//   ./examples/lambda_sweep [steps]   # default 5 points (0, .25, .5, .75, 1)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/backbones.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "eval/ifeval.hpp"
#include "eval/qa_runner.hpp"
#include "util/logging.hpp"

using namespace chipalign;

int main(int argc, char** argv) {
  int points = 5;
  if (argc > 1) points = std::max(2, std::atoi(argv[1]));

  set_log_level(LogLevel::kInfo);
  std::printf("lambda_sweep — domain quality vs instruction alignment\n\n");

  ModelZoo zoo;
  const EvalSuite suite = build_eval_suite(zoo.facts());
  const BackboneSpec spec = openroad_backbone_a();
  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  const Checkpoint chip = zoo.chip(spec);

  TablePrinter table({"lambda", "ROUGE-L (chip QA)", "IFEval prompt-strict"});
  for (int i = 0; i < points; ++i) {
    const double lambda =
        static_cast<double>(i) / static_cast<double>(points - 1);
    const Checkpoint merged = run_merge("chipalign", chip, instruct, base,
                                        lambda);
    TransformerModel model = TransformerModel::from_checkpoint(merged);
    const double rouge = run_openroad_eval(model, suite.openroad, nullptr).all;
    const double ifeval = run_ifeval(model, suite.ifeval).prompt_strict;
    table.add_row({TablePrinter::fmt(lambda, 2), TablePrinter::fmt(rouge),
                   TablePrinter::pct(ifeval)});
  }
  table.print();
  std::printf("\nlambda=0 is the instruct model, lambda=1 the EDA model;\n"
              "the paper recommends 0.6 as the sweet spot.\n");
  return 0;
}
