#!/usr/bin/env python3
"""Bench-trend regression gate.

Compares freshly produced BENCH_*.json summaries against the committed
baselines in bench/baselines/ and fails (exit 1) when a tracked metric
regresses beyond its tolerance. Designed for the Release CI smoke:

    ./run_benches.sh --quick
    python3 scripts/check_bench_trend.py

Rules, in order:

  * mode guard     a quick baseline is only comparable to a quick run (and
                   full to full); a mismatch is an error, not a comparison.
  * throughput     tokens/s- and queries/s-shaped metrics must stay within
                   15% of baseline (fresh >= 0.85 * baseline) — wide enough
                   that best-of-N absorbs shared-runner noise, strict
                   enough that a 20% regression always fails. Hardware
                   noise above baseline is always fine.
  * quality        accuracy / recall / hit-rate / ROUGE metrics are exact
                   deterministic constants in this codebase, so they get a
                   tight 2% band.
  * booleans       any tracked correctness flag that is true in the
                   baseline must still be true.
  * gates          per-gate status strings: a gate that passed at baseline
                   must not fail; entries whose status starts with
                   "skipped" on either side are host-dependent and ignored.
                   Both shapes are understood — {"value","floor","status"}
                   objects (bench_infer/serve/rag) and bare status strings
                   (bench_stream_merge).
  * coverage       a metric present in the baseline but missing from the
                   fresh summary is a failure (silently dropping a tracked
                   number is itself a regression).

Timings and RSS numbers are reported but never gated — they are too
machine-dependent; the throughput ratios above are the stable signal.
Baselines assume one runner class: after changing CI hardware (or bench
sizes), regenerate them with --update-baselines and commit the result.

Noise handling: short quick-mode runs on shared runners jitter well past
any sane tolerance, so the checker supports best-of-N. With
--rerun-cmd './run_benches.sh --quick' --max-runs 3, a failing comparison
re-runs the benches and merges each new summary into a running
elementwise best (max for numbers, OR for booleans, pass-wins for gate
statuses) before comparing again. A genuine regression reproduces on
every re-run and still fails; scheduler noise converges to a pass.
(Merging by max also applies to ungated informational numbers — that is
fine, nothing compares them.)

Sustained slowdown (a shared runner that is simply 20% slower today than
when the baselines were captured) is separated from regressions via the
frozen seed decoder probe: throughput floors are scaled by
fresh/baseline seed_decode_tps (clamped to [0.5, 1.0]) — see
host_factor(). The probe code never changes, so only host speed moves
it; a kernel or engine regression does not, and still trips its floor.

--update-baselines rewrites bench/baselines/ from the fresh files instead
of comparing (commit the result); combined with --rerun-cmd/--max-runs it
records the best-of-N merge, giving baselines that are not themselves a
single noisy sample.
"""

import argparse
import fnmatch
import json
import pathlib
import subprocess
import sys

BENCH_FILES = [
    "BENCH_infer.json",
    "BENCH_serve.json",
    "BENCH_rag.json",
    "BENCH_stream_merge.json",
]

# (pattern, min fresh/baseline ratio) over flattened dotted keys. 0.85
# leaves margin under best-of-N for shared-runner jitter while still
# always catching a 20% regression.
THROUGHPUT_RULES = [
    ("decode_tps", 0.85),
    ("decode_tps_*", 0.85),
    ("spec_decode_tps", 0.85),
    ("spec_plain_tps", 0.85),
    ("prefill_tps", 0.85),
    ("mcq_items_per_s", 0.85),
    ("tokens_per_s_*", 0.85),
    ("*_qps", 0.85),
]

# Deterministic quality constants: tight band, still ratio-based so a
# baseline of 0 compares as equal-only.
QUALITY_RULES = [
    ("mcq_acc_*", 0.98),
    ("rouge_*", 0.98),
    ("ann_recall_*", 0.98),
    ("prefix_hit_rate", 0.98),
    # Speculative acceptance is a deterministic function of the (pinned)
    # greedy token stream and the drafter, so it gets the tight band too:
    # a drop means drafting got worse, not that the host got slower.
    ("*accept_len", 0.98),
    ("*draft_hit_rate", 0.98),
]

BOOLEAN_KEYS = [
    "mcq_scores_equal",
    "deterministic_*",
    "quant_deterministic",
    "outputs_equal",
    "spec_identical",
    "spec_outputs_equal",
    "persist_identical",
    "batch_identical",
    # Serve lifecycle: a clean drain (every session terminal, no leaked KV
    # bytes or prefix pins, counters balanced) must never regress.
    "drain_clean",
]


def flatten(obj, prefix=""):
    """Yields (dotted_key, leaf_value) for every non-gate leaf."""
    for key, value in obj.items():
        if key == "gates":
            continue
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from flatten(value, dotted + ".")
        else:
            yield dotted, value


def leaf_name(dotted):
    return dotted.rsplit(".", 1)[-1]


def match_rules(key, rules):
    name = leaf_name(key)
    for pattern, ratio in rules:
        if fnmatch.fnmatch(name, pattern):
            return ratio
    return None


def gate_status(entry):
    if isinstance(entry, dict):
        return str(entry.get("status", ""))
    return str(entry)


def _status_rank(status):
    if status == "pass":
        return 0
    if status.startswith("skipped"):
        return 1
    return 2


def merge_best(base, new):
    """Elementwise best of two summaries: max numbers, OR booleans,
    pass-wins gate statuses, recursing through nested objects."""
    if isinstance(base, dict) and isinstance(new, dict):
        out = dict(base)
        for key, value in new.items():
            out[key] = merge_best(base[key], value) if key in base else value
        return out
    if isinstance(base, bool) or isinstance(new, bool):
        return bool(base) or bool(new)
    if isinstance(base, (int, float)) and isinstance(new, (int, float)):
        return max(base, new)
    if isinstance(base, str) and isinstance(new, str):
        return base if _status_rank(base) <= _status_rank(new) else new
    return new


def host_factor(merged, baseline_dir):
    """Host-speed calibration in [0.5, 1.0] from the frozen seed decoder.

    BENCH_infer.json carries seed_decode_tps, measured on an in-binary
    scalar decode path that has been frozen since it was introduced — it
    only moves when the host itself is faster or slower, never when the
    optimized kernels change. Scaling throughput floors by
    fresh_seed/base_seed cancels sustained slowdown of a shared runner
    without masking real regressions: an actual kernel/engine regression
    leaves the seed untouched, so its floor barely moves. Clamped so a
    fast host never tightens floors (<= 1.0) and a wild seed sample can
    hide at most half a metric (>= 0.5)."""
    fresh = merged.get("BENCH_infer.json", {}).get("seed_decode_tps")
    base_path = baseline_dir / "BENCH_infer.json"
    if not fresh or not base_path.exists():
        return 1.0
    with open(base_path) as f:
        base = json.load(f).get("seed_decode_tps")
    if not base:
        return 1.0
    return min(1.0, max(0.5, fresh / base))


def compare_file(name, fresh, baseline, failures, notes, factor=1.0):
    fresh_mode = fresh.get("quick", fresh.get("mode"))
    base_mode = baseline.get("quick", baseline.get("mode"))
    if fresh_mode != base_mode:
        failures.append(
            f"{name}: mode mismatch (fresh {fresh_mode!r} vs baseline "
            f"{base_mode!r}) — regenerate the baseline at the same sizes"
        )
        return

    fresh_flat = dict(flatten(fresh))
    for key, base_value in flatten(baseline):
        if key in ("backend", "quick", "mode", "method"):
            continue
        if key not in fresh_flat:
            failures.append(f"{name}: tracked metric '{key}' disappeared")
            continue
        fresh_value = fresh_flat[key]

        if any(fnmatch.fnmatch(leaf_name(key), p) for p in BOOLEAN_KEYS):
            if base_value is True and fresh_value is not True:
                failures.append(f"{name}: {key} was true, now {fresh_value}")
            continue

        if leaf_name(key) == "seed_decode_tps":
            continue  # the host-speed probe itself is never gated

        ratio = match_rules(key, THROUGHPUT_RULES)
        kind = "throughput"
        if ratio is None:
            ratio = match_rules(key, QUALITY_RULES)
            kind = "quality"
        if ratio is None or not isinstance(base_value, (int, float)):
            continue  # informational (timings, RSS, counters)
        if not isinstance(fresh_value, (int, float)):
            failures.append(
                f"{name}: {key} is no longer numeric ({fresh_value!r})"
            )
            continue
        floor = base_value * ratio
        if kind == "throughput":
            floor *= factor
        if fresh_value < floor:
            failures.append(
                f"{name}: {kind} regression: {key} = {fresh_value:g} < "
                f"{floor:g} (baseline {base_value:g}, tolerance "
                f"{100 * (1 - ratio):.0f}%, host factor {factor:.2f})"
            )
        else:
            notes.append(
                f"{name}: {key} {base_value:g} -> {fresh_value:g} ok"
            )

    fresh_gates = fresh.get("gates", {})
    for gate, base_entry in baseline.get("gates", {}).items():
        base_status = gate_status(base_entry)
        if base_status.startswith("skipped"):
            continue
        if gate not in fresh_gates:
            failures.append(f"{name}: gate '{gate}' disappeared")
            continue
        status = gate_status(fresh_gates[gate])
        if status.startswith("skipped"):
            notes.append(f"{name}: gate {gate} now {status} (host-dependent)")
            continue
        if base_status == "pass" and status != "pass":
            failures.append(
                f"{name}: gate '{gate}' passed at baseline, now '{status}'"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", default=None,
                        help=f"fresh summaries (default: {BENCH_FILES})")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        type=pathlib.Path)
    parser.add_argument("--fresh-dir", default=".", type=pathlib.Path)
    parser.add_argument("--update-baselines", action="store_true",
                        help="overwrite the baselines from the fresh files")
    parser.add_argument("--rerun-cmd", default=None,
                        help="shell command that regenerates the fresh "
                             "summaries (e.g. './run_benches.sh --quick')")
    parser.add_argument("--max-runs", type=int, default=1,
                        help="best-of-N: re-run --rerun-cmd and merge until "
                             "the comparison passes or N runs are spent")
    args = parser.parse_args()

    names = args.files or BENCH_FILES
    merged = {}  # file name -> best-of-runs summary
    attempts = 0
    while True:
        attempts += 1
        failures = []
        notes = []
        compared = 0
        for file_name in names:
            fresh_path = args.fresh_dir / pathlib.Path(file_name).name
            if not fresh_path.exists():
                failures.append(f"{fresh_path}: fresh summary missing — did "
                                "the bench run?")
                continue
            with open(fresh_path) as f:
                fresh = json.load(f)
            key = fresh_path.name
            merged[key] = (merge_best(merged[key], fresh)
                           if key in merged else fresh)

        if args.update_baselines:
            if attempts < args.max_runs and args.rerun_cmd:
                print(f"baseline run {attempts}/{args.max_runs} merged; "
                      "re-running benches")
                subprocess.run(args.rerun_cmd, shell=True, check=True)
                continue
            args.baseline_dir.mkdir(parents=True, exist_ok=True)
            for key, summary in merged.items():
                base_path = args.baseline_dir / key
                with open(base_path, "w") as f:
                    json.dump(summary, f, indent=1)
                    f.write("\n")
                print(f"updated {base_path}")
            return 0

        factor = host_factor(merged, args.baseline_dir)
        if factor < 1.0:
            notes.append(f"host running at {factor:.2f}x of baseline speed "
                         "(seed decoder probe); throughput floors scaled")
        for file_name in names:
            key = pathlib.Path(file_name).name
            base_path = args.baseline_dir / key
            if key not in merged:
                continue  # missing-file failure already recorded
            if not base_path.exists():
                notes.append(f"{base_path}: no baseline yet (run with "
                             "--update-baselines to create)")
                continue
            with open(base_path) as f:
                baseline = json.load(f)
            compare_file(key, merged[key], baseline, failures, notes, factor)
            compared += 1

        if not failures or attempts >= args.max_runs or not args.rerun_cmd:
            break
        print(f"bench trend: {len(failures)} miss(es) on run "
              f"{attempts}/{args.max_runs} — re-running benches to separate "
              "noise from regression")
        subprocess.run(args.rerun_cmd, shell=True, check=True)

    for line in notes:
        print(f"  note: {line}")
    if failures:
        print(f"bench trend: {len(failures)} regression(s) vs baselines "
              f"(best of {attempts} run(s)):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print(f"bench trend: OK ({compared} summaries within tolerance, "
          f"{attempts} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
