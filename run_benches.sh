#!/bin/sh
# Regenerates every paper table/figure. First run trains the model zoo into
# .chipalign_cache (slow once); later runs reuse it.
set -u
cd "$(dirname "$0")"
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo ""
  echo "######## $b ########"
  "$b"
done
