#!/bin/sh
# Regenerates every paper table/figure. First run trains the model zoo into
# .chipalign_cache (slow once); later runs reuse it.
#
#   ./run_benches.sh           full sweep (every bench binary)
#   ./run_benches.sh --quick   CI smoke: the streaming-merge acceptance bench
#                              in its reduced --quick configuration only
set -u
cd "$(dirname "$0")"

if [ "${1:-}" = "--quick" ]; then
  b=build/bench/bench_stream_merge
  [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 1; }
  echo "######## $b --quick ########"
  exec "$b" --quick
fi

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo ""
  echo "######## $b ########"
  case "$b" in
    */bench_stream_merge) "$b" || exit 1 ;;  # acceptance gate: fail the sweep
    *) "$b" ;;
  esac
done
