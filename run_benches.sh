#!/bin/sh
# Regenerates every paper table/figure. First run trains the model zoo into
# .chipalign_cache (slow once); later runs reuse it.
#
#   ./run_benches.sh           full sweep (every bench binary)
#   ./run_benches.sh --quick   CI smoke: the kernel, streaming-merge and
#                              inference acceptance benches in their reduced
#                              --quick configurations only
#
# bench_infer additionally writes BENCH_infer.json (machine-readable
# decode/matvec/MCQ numbers) next to this script in both modes,
# bench_serve writes BENCH_serve.json (batched-serving throughput and
# prefix-cache hit rates), bench_rag writes BENCH_rag.json (retrieval
# build/load times, queries/s per fact-base size, ANN recall), and
# bench_stream_merge writes BENCH_stream_merge.json (timings, RSS, gate
# results, and the fault-injection status — failpoints are compiled into
# the measured binaries but stay disarmed unless CHIPALIGN_FAILPOINTS is
# set).
#
# Every gated bench runs to completion even when an earlier one fails; a
# per-bench PASS/FAIL summary is printed at the end and the exit status is
# non-zero when any gate failed, listing all of them.
set -u
cd "$(dirname "$0")"

summary=""
failed=""

# run_gated <name> <cmd...> — runs a gated bench, records PASS/FAIL.
run_gated() {
  name="$1"
  shift
  echo ""
  echo "######## $name ########"
  if "$@"; then
    summary="${summary}PASS  ${name}\n"
  else
    summary="${summary}FAIL  ${name}\n"
    failed="${failed}  ${name}\n"
  fi
}

report() {
  echo ""
  echo "======== bench summary ========"
  printf '%b' "$summary"
  if [ -n "$failed" ]; then
    echo ""
    echo "failed gates:"
    printf '%b' "$failed"
    exit 1
  fi
  exit 0
}

if [ "${1:-}" = "--quick" ]; then
  b=build/bench/bench_kernels
  [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 2; }
  run_gated "$b --quick" "$b" --quick
  b=build/bench/bench_stream_merge
  [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 2; }
  run_gated "$b --quick" "$b" --quick --json BENCH_stream_merge.json
  b=build/bench/bench_infer
  [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 2; }
  run_gated "$b --quick" "$b" --quick --json BENCH_infer.json
  b=build/bench/bench_serve
  [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 2; }
  run_gated "$b --quick" "$b" --quick --json BENCH_serve.json
  b=build/bench/bench_rag
  [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 2; }
  run_gated "$b --quick" "$b" --quick --json BENCH_rag.json
  report
fi

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  case "$b" in
    # Acceptance gates: a miss fails the sweep (after all benches have run).
    */bench_stream_merge)
      run_gated "$b" "$b" --json BENCH_stream_merge.json ;;
    */bench_kernels) run_gated "$b --gate" "$b" --gate ;;
    */bench_infer)
      run_gated "$b --gate" "$b" --gate --json BENCH_infer.json ;;
    */bench_serve)
      run_gated "$b --gate" "$b" --gate --json BENCH_serve.json ;;
    */bench_rag)
      run_gated "$b --gate" "$b" --gate --json BENCH_rag.json ;;
    *)
      echo ""
      echo "######## $b ########"
      "$b"
      ;;
  esac
done
report
