#!/bin/sh
# Regenerates every paper table/figure. First run trains the model zoo into
# .chipalign_cache (slow once); later runs reuse it.
#
#   ./run_benches.sh           full sweep (every bench binary)
#   ./run_benches.sh --quick   CI smoke: the kernel and streaming-merge
#                              acceptance benches in their reduced --quick
#                              configurations only
set -u
cd "$(dirname "$0")"

if [ "${1:-}" = "--quick" ]; then
  for b in build/bench/bench_kernels build/bench/bench_stream_merge; do
    [ -x "$b" ] || { echo "$b not built (run cmake --build build)"; exit 1; }
    echo "######## $b --quick ########"
    "$b" --quick || exit 1
  done
  exit 0
fi

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo ""
  echo "######## $b ########"
  case "$b" in
    # Acceptance gates: fail the sweep on a miss.
    */bench_stream_merge) "$b" || exit 1 ;;
    */bench_kernels) "$b" --gate || exit 1 ;;
    *) "$b" ;;
  esac
done
