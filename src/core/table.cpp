#include "core/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace chipalign {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CA_CHECK(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  CA_CHECK(cells.size() == headers_.size(),
           "row has " << cells.size() << " cells, header has "
                      << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c],
                                                       row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision);
}

}  // namespace chipalign
