#pragma once
/// \file model_zoo.hpp
/// \brief Builds and caches the trained models every experiment consumes.
///
/// Roles per backbone (Figure 4 of the paper):
///   base     — pretrained on the mixed corpus,
///   instruct — base + full finetune on instruction data,
///   chip     — LoRA DAFT from instruct (OpenROAD backbones) or full
///              "ChipNeMo" finetune from base (industrial backbone).
///
/// Every built checkpoint is cached as a safetensors file under the cache
/// directory (env CHIPALIGN_CACHE_DIR, default ".chipalign_cache"), so all
/// benches and examples share one training run per model.

#include <string>

#include "core/backbones.hpp"
#include "data/fact_base.hpp"
#include "model/checkpoint.hpp"

namespace chipalign {

/// Cache-backed factory for the trained models.
class ModelZoo {
 public:
  /// \param cache_dir empty => $CHIPALIGN_CACHE_DIR or ".chipalign_cache".
  explicit ModelZoo(std::string cache_dir = "");

  const std::string& cache_dir() const { return cache_dir_; }
  const FactBase& facts() const { return facts_; }

  /// The pretrained common ancestor.
  Checkpoint base(const BackboneSpec& spec);

  /// The instruction-aligned model (Chat/Instruct analogue).
  Checkpoint instruct(const BackboneSpec& spec);

  /// The chip / EDA model (per the spec's ChipRecipe).
  Checkpoint chip(const BackboneSpec& spec);

  /// Cache file a given (spec, role) resolves to; the filename embeds a
  /// fingerprint of the recipe so stale checkpoints are never reused.
  /// Roles: "base", "instruct", "chip".
  std::string cache_path(const BackboneSpec& spec,
                         const std::string& role) const;

 private:
  Checkpoint build_base(const BackboneSpec& spec);
  Checkpoint build_instruct(const BackboneSpec& spec);
  Checkpoint build_chip(const BackboneSpec& spec);

  /// Loads role checkpoint from cache or builds and stores it.
  template <typename Builder>
  Checkpoint get_or_build(const BackboneSpec& spec, const std::string& role,
                          Builder&& builder);

  std::string cache_dir_;
  FactBase facts_;
};

}  // namespace chipalign
