#pragma once
/// \file backbones.hpp
/// \brief The three model families ("backbones") used by the experiments.
///
/// Tiny analogues of the paper's backbones (see DESIGN.md's substitution
/// table):
///  * openroad_backbone_a — stands in for LLaMA3-8B   (Table 1, Figure 8)
///  * openroad_backbone_b — stands in for Qwen1.5-14B (Table 1, Figure 8)
///  * industrial_backbone — stands in for LLaMA2-70B  (Tables 2/3, Figures 2/7)
///
/// Each spec fixes the architecture, the RNG seeds and the training budgets
/// for the three model roles, so every bench reproduces the same models.

#include <string>

#include "data/fact_base.hpp"
#include "model/model_config.hpp"
#include "train/trainer.hpp"

namespace chipalign {

/// Recipe for building a backbone's base / instruct / chip models.
struct BackboneSpec {
  std::string name;       ///< e.g. "llama3-8b-analog"
  ModelConfig config;
  std::uint64_t init_seed = 1;

  TrainConfig pretrain;
  TrainConfig instruct_ft;
  TrainConfig daft;

  /// "chipnemo" => the chip model is a *full* finetune from the base model
  /// on chip data mixed with some instruction data (ChipNeMo's DAPT+DAFT
  /// with OASST). "lora" => LoRA DAFT from the instruct model (Figure 4a).
  enum class ChipRecipe { kLoraFromInstruct, kChipNemoFromBase };
  ChipRecipe chip_recipe = ChipRecipe::kLoraFromInstruct;

  /// Domains the chip model is finetuned on (empty = all).
  std::vector<FactDomain> chip_domains;

  /// Fraction of instruction-formatted examples mixed into chip finetuning
  /// (only used by the ChipNeMo recipe; models OASST in ChipNeMo's DAFT).
  double chip_instruct_frac = 0.0;
};

/// LLaMA3-8B stand-in (smaller of the two OpenROAD backbones).
BackboneSpec openroad_backbone_a();

/// Qwen1.5-14B stand-in (wider).
BackboneSpec openroad_backbone_b();

/// LLaMA2-70B stand-in (deepest; chip model follows the ChipNeMo recipe).
BackboneSpec industrial_backbone();

}  // namespace chipalign
