#include "core/pipeline.hpp"

#include "merge/registry.hpp"

namespace chipalign {

Checkpoint run_merge(const std::string& method, const Checkpoint& chip,
                     const Checkpoint& instruct, const Checkpoint& base,
                     double lambda) {
  const std::unique_ptr<Merger> merger = create_merger(method);
  MergeOptions options;
  options.lambda = lambda;
  return merge_checkpoints(*merger, chip, instruct,
                           merger->requires_base() ? &base : nullptr, options);
}

EvalSuite build_eval_suite(const FactBase& facts) {
  EvalSuite suite;
  suite.openroad = build_openroad_eval(facts, /*seed=*/901, /*count=*/90);
  suite.industrial = build_industrial_eval(facts, /*seed=*/902,
                                           /*per_domain=*/5);
  suite.mcq = build_mcq_eval(facts, /*seed=*/903, /*per_domain=*/10);
  suite.ifeval = build_ifeval_set(/*seed=*/904, /*count=*/120);
  // One shared DocStore: the corpus is held once and both retriever halves
  // of the pipeline reference it.
  suite.rag = std::make_unique<RetrievalPipeline>(
      make_doc_store(facts.corpus_sentences()));
  return suite;
}

}  // namespace chipalign
