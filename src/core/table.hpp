#pragma once
/// \file table.hpp
/// \brief Aligned ASCII table printer used by the benchmark harnesses.

#include <iostream>
#include <string>
#include <vector>

namespace chipalign {

/// Collects rows and prints them with aligned columns. First row added via
/// the constructor is the header; a separator line is drawn under it.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os = std::cout) const;

  /// Fixed-precision float formatting helper.
  static std::string fmt(double value, int precision = 3);

  /// Percentage formatting helper ("61.0").
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chipalign
