#include "core/backbones.hpp"

#include "text/tokenizer.hpp"

namespace chipalign {

namespace {

ModelConfig tiny_config(const std::string& name, std::int64_t d_model,
                        std::int64_t n_layers, std::int64_t n_heads,
                        std::int64_t n_kv_heads, std::int64_t d_ff) {
  ModelConfig config;
  config.name = name;
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = d_model;
  config.n_layers = n_layers;
  config.n_heads = n_heads;
  config.n_kv_heads = n_kv_heads;
  config.d_ff = d_ff;
  config.max_seq_len = 512;
  config.rope_theta = 10000.0;
  config.norm_eps = 1e-5;
  config.validate();
  return config;
}

TrainConfig budget(std::int64_t steps, double lr, std::uint64_t seed) {
  TrainConfig config;
  config.steps = steps;
  config.batch_size = 8;
  config.peak_lr = lr;
  config.warmup_steps = steps / 10;
  config.seed = seed;
  return config;
}

}  // namespace

BackboneSpec openroad_backbone_a() {
  BackboneSpec spec;
  spec.name = "llama3-8b-analog";
  spec.config = tiny_config(spec.name, 48, 3, 4, 2, 96);
  spec.init_seed = 101;
  spec.pretrain = budget(1000, 2e-3, 1011);
  spec.instruct_ft = budget(1600, 1.5e-3, 1012);
  spec.daft = budget(400, 1e-3, 1013);
  spec.chip_recipe = BackboneSpec::ChipRecipe::kLoraFromInstruct;
  spec.chip_domains = {FactDomain::kFunctionality, FactDomain::kVlsiFlow,
                       FactDomain::kGuiInstallTest};
  return spec;
}

BackboneSpec openroad_backbone_b() {
  BackboneSpec spec;
  spec.name = "qwen1.5-14b-analog";
  spec.config = tiny_config(spec.name, 64, 3, 4, 2, 128);
  spec.init_seed = 202;
  spec.pretrain = budget(1000, 2e-3, 2021);
  spec.instruct_ft = budget(1600, 1.5e-3, 2022);
  // The wider backbone needs a longer/hotter DAFT before it exhibits the
  // alignment forgetting the paper documents (more capacity = more
  // resistance to catastrophic forgetting).
  spec.daft = budget(800, 1.5e-3, 2023);
  spec.chip_recipe = BackboneSpec::ChipRecipe::kLoraFromInstruct;
  spec.chip_domains = {FactDomain::kFunctionality, FactDomain::kVlsiFlow,
                       FactDomain::kGuiInstallTest};
  return spec;
}

BackboneSpec industrial_backbone() {
  BackboneSpec spec;
  spec.name = "llama2-70b-analog";
  spec.config = tiny_config(spec.name, 64, 4, 4, 4, 128);
  spec.init_seed = 303;
  spec.pretrain = budget(1000, 2e-3, 3031);
  spec.instruct_ft = budget(1600, 1.5e-3, 3032);
  // ChipNeMo: full finetune from base on all chip domains with an
  // instruction admixture (ChipNeMo's DAFT included OASST chat data and
  // SteerLM alignment — the paper credits this for ChipNeMo's residual
  // instructional knowledge, §IV-D). The admixture also keeps the chip
  // model functionally closer to the Chat model, which matters for
  // mergeability at this tiny scale.
  spec.daft = budget(500, 1e-3, 3033);
  spec.chip_recipe = BackboneSpec::ChipRecipe::kChipNemoFromBase;
  spec.chip_domains = {};  // all domains
  spec.chip_instruct_frac = 0.30;
  return spec;
}

}  // namespace chipalign
