#include "core/model_zoo.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "data/corpus.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace chipalign {

ModelZoo::ModelZoo(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {
  if (cache_dir_.empty()) {
    const char* env = std::getenv("CHIPALIGN_CACHE_DIR");
    cache_dir_ = env != nullptr ? env : ".chipalign_cache";
  }
  std::filesystem::create_directories(cache_dir_);
}

namespace {
/// Bump when the data builders or training pipeline change behaviour, so
/// stale cached checkpoints are not reused.
constexpr std::uint64_t kRecipeVersion = 5;

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFF;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t train_fingerprint(std::uint64_t hash, const TrainConfig& config) {
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(config.steps));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(config.batch_size));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(config.peak_lr * 1e9));
  hash = fnv1a_mix(hash, config.seed);
  return hash;
}

/// Fingerprint of everything that determines the weights of `role`. The
/// fingerprint is hierarchical — a role depends on its own recipe plus the
/// recipes of the roles it builds on — so e.g. tuning the DAFT budget
/// invalidates only the chip checkpoint, not the cached base/instruct runs.
std::uint64_t role_fingerprint(const BackboneSpec& spec,
                               const std::string& role) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  hash = fnv1a_mix(hash, kRecipeVersion);
  hash = fnv1a_mix(hash, spec.init_seed);
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(spec.config.d_model));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(spec.config.n_layers));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(spec.config.n_heads));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(spec.config.n_kv_heads));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(spec.config.d_ff));
  hash = fnv1a_mix(hash, static_cast<std::uint64_t>(spec.config.max_seq_len));
  hash = train_fingerprint(hash, spec.pretrain);  // every role builds on base
  const bool chipnemo =
      spec.chip_recipe == BackboneSpec::ChipRecipe::kChipNemoFromBase;
  if (role == "instruct" || (role == "chip" && !chipnemo)) {
    hash = train_fingerprint(hash, spec.instruct_ft);
  }
  if (role == "chip") {
    hash = train_fingerprint(hash, spec.daft);
    hash = fnv1a_mix(hash, chipnemo ? 2 : 1);
    hash = fnv1a_mix(hash,
                     static_cast<std::uint64_t>(spec.chip_instruct_frac * 1e6));
    for (FactDomain domain : spec.chip_domains) {
      hash = fnv1a_mix(hash, static_cast<std::uint64_t>(domain) + 17);
    }
  }
  return hash;
}
}  // namespace

std::string ModelZoo::cache_path(const BackboneSpec& spec,
                                 const std::string& role) const {
  char hash_hex[20];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(role_fingerprint(spec, role)));
  return cache_dir_ + "/" + spec.name + "." + role + "." + hash_hex +
         ".safetensors";
}

template <typename Builder>
Checkpoint ModelZoo::get_or_build(const BackboneSpec& spec,
                                  const std::string& role, Builder&& builder) {
  const std::string path = cache_path(spec, role);
  if (std::filesystem::exists(path)) {
    CA_LOG_DEBUG("loading cached " << spec.name << "/" << role);
    return Checkpoint::load(path);
  }
  CA_LOG_INFO("building " << spec.name << "/" << role
                          << " (cached at " << path << ")");
  Timer timer;
  Checkpoint checkpoint = builder();
  CA_LOG_INFO("built " << spec.name << "/" << role << " in "
                       << timer.seconds() << " s");
  checkpoint.save(path);
  return checkpoint;
}

Checkpoint ModelZoo::base(const BackboneSpec& spec) {
  return get_or_build(spec, "base", [&] { return build_base(spec); });
}

Checkpoint ModelZoo::instruct(const BackboneSpec& spec) {
  return get_or_build(spec, "instruct", [&] { return build_instruct(spec); });
}

Checkpoint ModelZoo::chip(const BackboneSpec& spec) {
  return get_or_build(spec, "chip", [&] { return build_chip(spec); });
}

Checkpoint ModelZoo::build_base(const BackboneSpec& spec) {
  Rng rng(spec.init_seed);
  TransformerModel model(spec.config, rng);

  PretrainDataConfig data_config;
  data_config.seed = spec.init_seed * 7919 + 1;
  data_config.max_len = spec.config.max_seq_len;
  const std::vector<TrainExample> dataset =
      build_pretrain_dataset(facts_, data_config);

  const TrainStats stats = train_full(model, dataset, spec.pretrain);
  CA_LOG_INFO(spec.name << " pretrain loss " << stats.first_loss << " -> "
                        << stats.final_loss);
  Checkpoint out = model.to_checkpoint();
  out.config().name = spec.name + "-base";
  return out;
}

Checkpoint ModelZoo::build_instruct(const BackboneSpec& spec) {
  TransformerModel model = TransformerModel::from_checkpoint(base(spec));

  InstructDataConfig data_config;
  data_config.seed = spec.init_seed * 7919 + 2;
  data_config.max_len = spec.config.max_seq_len;
  const std::vector<TrainExample> dataset = build_instruct_dataset(data_config);

  const TrainStats stats = train_full(model, dataset, spec.instruct_ft);
  CA_LOG_INFO(spec.name << " instruct loss " << stats.first_loss << " -> "
                        << stats.final_loss);
  Checkpoint out = model.to_checkpoint();
  out.config().name = spec.name + "-instruct";
  return out;
}

Checkpoint ModelZoo::build_chip(const BackboneSpec& spec) {
  ChipDataConfig data_config;
  data_config.seed = spec.init_seed * 7919 + 3;
  data_config.max_len = spec.config.max_seq_len;
  data_config.domains = spec.chip_domains;

  if (spec.chip_recipe == BackboneSpec::ChipRecipe::kChipNemoFromBase) {
    // ChipNeMo: full finetune from the *base* model, all requested domains,
    // with a small instruction admixture (OASST analogue).
    data_config.instruct_frac = spec.chip_instruct_frac;
    data_config.repeats_per_fact = 8;
    TransformerModel model = TransformerModel::from_checkpoint(base(spec));
    std::vector<TrainExample> dataset =
        build_chip_daft_dataset(facts_, data_config);
    if (spec.chip_instruct_frac > 0.0) {
      // Blend in genuine instruction examples so the chip model retains
      // *some* alignment, as ChipNeMo did via OASST + SteerLM.
      InstructDataConfig instruct_config;
      instruct_config.seed = spec.init_seed * 7919 + 4;
      instruct_config.max_len = spec.config.max_seq_len;
      instruct_config.count = static_cast<int>(
          static_cast<double>(dataset.size()) * spec.chip_instruct_frac);
      if (instruct_config.count > 0) {
        for (TrainExample& example :
             build_instruct_dataset(instruct_config)) {
          dataset.push_back(std::move(example));
        }
      }
    }
    const TrainStats stats = train_full(model, dataset, spec.daft);
    CA_LOG_INFO(spec.name << " chipnemo loss " << stats.first_loss << " -> "
                          << stats.final_loss);
    Checkpoint out = model.to_checkpoint();
    out.config().name = spec.name + "-chipnemo";
    return out;
  }

  // Figure 4(a): LoRA DAFT from the instruct model, then fold the adapters.
  TransformerModel model = TransformerModel::from_checkpoint(instruct(spec));
  LoraConfig lora_config;
  lora_config.rank = 8;
  lora_config.alpha = 16.0;
  lora_config.seed = spec.init_seed * 7919 + 5;
  lora_config.target_suffixes = {
      "self_attn.q_proj.weight", "self_attn.k_proj.weight",
      "self_attn.v_proj.weight", "self_attn.o_proj.weight",
      "mlp.gate_proj.weight",    "mlp.up_proj.weight",
      "mlp.down_proj.weight",
  };
  LoraAdapterSet adapters(model, lora_config);

  const std::vector<TrainExample> dataset =
      build_chip_daft_dataset(facts_, data_config);
  const TrainStats stats = train_lora(model, adapters, dataset, spec.daft);
  CA_LOG_INFO(spec.name << " daft loss " << stats.first_loss << " -> "
                        << stats.final_loss);
  adapters.fold();
  Checkpoint out = model.to_checkpoint();
  out.config().name = spec.name + "-eda";
  return out;
}

}  // namespace chipalign
