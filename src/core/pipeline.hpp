#pragma once
/// \file pipeline.hpp
/// \brief High-level glue shared by benches and examples: merge dispatch and
/// the bundled evaluation suite.

#include <memory>
#include <string>
#include <vector>

#include "data/qa_bench.hpp"
#include "merge/merger.hpp"
#include "model/checkpoint.hpp"
#include "rag/retrieval.hpp"

namespace chipalign {

/// Runs one merge method by registry name with the given lambda (base is
/// used only by task-vector methods). Other MergeOptions keep their
/// publication defaults.
Checkpoint run_merge(const std::string& method, const Checkpoint& chip,
                     const Checkpoint& instruct, const Checkpoint& base,
                     double lambda = 0.6);

/// Every evaluation artifact the benchmarks need, built deterministically
/// from one fact base.
struct EvalSuite {
  std::vector<QaEvalItem> openroad;        ///< 90 items (Table 1 / Figure 8)
  std::vector<IndustrialItem> industrial;  ///< 20 items x 2 turns (Table 2)
  std::vector<McqItem> mcq;                ///< 30 items (Figure 7)
  std::vector<IfEvalItem> ifeval;          ///< 120 prompts (Table 3)
  std::unique_ptr<RetrievalPipeline> rag;  ///< over the doc corpus
};

/// Builds the standard evaluation suite (fixed seeds).
EvalSuite build_eval_suite(const FactBase& facts);

}  // namespace chipalign
