#include "serve/radix_cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace chipalign {

/// One path-compressed edge of the trie. Owns the KV rows of its edge
/// tokens, stored layer-major ([n_layers, len, kv_dim] flattened) so a
/// contiguous copy_n per layer moves them in or out of a SessionState.
/// Rows are kept as raw bytes in the cache's kv_dtype (fp32 or fp16), so
/// copies never convert — a hit restores the prefill's exact bits.
struct RadixKvCache::Node {
  std::vector<TokenId> tokens;     ///< edge label
  std::vector<unsigned char> k;    ///< [n_layers, len, kv_dim] elements
  std::vector<unsigned char> v;
  std::map<TokenId, std::unique_ptr<Node>> children;
  Node* parent = nullptr;
  std::int64_t refcount = 0;  ///< live Refs pinning this node
  std::int64_t last_use = 0;  ///< LRU stamp

  std::int64_t len() const {
    return static_cast<std::int64_t>(tokens.size());
  }
};

namespace {

/// Keeps the first `keep` rows of each layer of a [n_layers, len, kv_dim]
/// block (or the rows from `keep` on, when `tail` is set), re-packed
/// contiguously for the new length. `row_bytes` is kv_dim * element size.
std::vector<unsigned char> slice_rows(const std::vector<unsigned char>& src,
                                      std::int64_t n_layers, std::int64_t len,
                                      std::size_t row_bytes,
                                      std::int64_t keep, bool tail) {
  const std::int64_t out_len = tail ? len - keep : keep;
  std::vector<unsigned char> out(static_cast<std::size_t>(n_layers * out_len) *
                                 row_bytes);
  for (std::int64_t l = 0; l < n_layers; ++l) {
    const std::int64_t from = tail ? keep : 0;
    std::copy_n(src.data() + static_cast<std::size_t>(l * len + from) *
                                 row_bytes,
                static_cast<std::size_t>(out_len) * row_bytes,
                out.data() + static_cast<std::size_t>(l * out_len) *
                                 row_bytes);
  }
  return out;
}

}  // namespace

RadixKvCache::RadixKvCache(const ModelConfig& config, std::size_t max_bytes,
                           DType kv_dtype)
    : root_(std::make_unique<Node>()),
      n_layers_(config.n_layers),
      kv_dim_(config.n_kv_heads * config.head_dim()),
      kv_dtype_(kv_dtype),
      elem_size_(dtype_size(kv_dtype)),
      max_bytes_(max_bytes) {
  CA_CHECK(kv_dtype == DType::kF32 || kv_dtype == DType::kF16,
           "radix cache KV dtype must be F32 or F16, got "
               << dtype_name(kv_dtype));
}

RadixKvCache::~RadixKvCache() = default;

std::size_t RadixKvCache::node_bytes(std::int64_t token_count) const {
  return 2 * static_cast<std::size_t>(n_layers_ * token_count * kv_dim_) *
         elem_size_;
}

RadixKvCache::Ref RadixKvCache::acquire(std::span<const TokenId> tokens,
                                        SessionState& state) {
  ++stats_.lookups;
  stats_.lookup_tokens += static_cast<std::int64_t>(tokens.size());
  if (max_bytes_ == 0 || tokens.empty()) return Ref{};
  CA_CHECK(state.position == 0, "acquire into a non-empty session");
  CA_CHECK(state.n_layers == n_layers_ && state.kv_dim == kv_dim_ &&
               state.kv_dtype == kv_dtype_,
           "session KV geometry does not match this cache");
  CA_CHECK(state.capacity >= static_cast<std::int64_t>(tokens.size()),
           "session capacity " << state.capacity << " below prompt length "
                               << tokens.size());

  std::vector<Node*> path;
  Node* node = root_.get();
  std::int64_t offset = 0;
  const auto total = static_cast<std::int64_t>(tokens.size());
  while (offset < total) {
    const auto it = node->children.find(tokens[offset]);
    if (it == node->children.end()) break;
    Node* child = it->second.get();
    const std::int64_t room = total - offset;
    std::int64_t m = 0;
    while (m < child->len() && m < room &&
           child->tokens[static_cast<std::size_t>(m)] == tokens[offset + m]) {
      ++m;
    }
    // m >= 1: children are keyed by their edge's first token.
    const std::size_t row_bytes = static_cast<std::size_t>(kv_dim_) *
                                  elem_size_;
    for (std::int64_t l = 0; l < n_layers_; ++l) {
      std::copy_n(child->k.data() + static_cast<std::size_t>(l * child->len())
                                        * row_bytes,
                  static_cast<std::size_t>(m) * row_bytes,
                  state.k_raw(l, offset));
      std::copy_n(child->v.data() + static_cast<std::size_t>(l * child->len())
                                        * row_bytes,
                  static_cast<std::size_t>(m) * row_bytes,
                  state.v_raw(l, offset));
    }
    if (child->refcount == 0) ++stats_.pinned_nodes;
    ++child->refcount;
    child->last_use = ++clock_;
    path.push_back(child);
    offset += m;
    if (m < child->len()) break;  // diverged (or prompt ended) mid-edge
    node = child;
  }
  state.position = offset;
  stats_.hit_tokens += offset;
  return Ref(this, std::move(path), offset);
}

void RadixKvCache::insert(std::span<const TokenId> tokens,
                          const SessionState& state) {
  if (max_bytes_ == 0 || tokens.empty()) return;
  const auto total = static_cast<std::int64_t>(tokens.size());
  CA_CHECK(state.position >= total,
           "insert of " << total << " tokens from a session at position "
                        << state.position);
  CA_CHECK(state.n_layers == n_layers_ && state.kv_dim == kv_dim_ &&
               state.kv_dtype == kv_dtype_,
           "session KV geometry does not match this cache");

  const std::size_t row_bytes = static_cast<std::size_t>(kv_dim_) *
                                elem_size_;
  const auto fill_from_state = [&](Node& dst, std::int64_t start,
                                   std::int64_t count) {
    dst.tokens.assign(tokens.begin() + start, tokens.begin() + start + count);
    dst.k.resize(static_cast<std::size_t>(n_layers_ * count) * row_bytes);
    dst.v.resize(dst.k.size());
    for (std::int64_t l = 0; l < n_layers_; ++l) {
      std::copy_n(state.k_raw(l, start),
                  static_cast<std::size_t>(count) * row_bytes,
                  dst.k.data() + static_cast<std::size_t>(l * count) *
                                     row_bytes);
      std::copy_n(state.v_raw(l, start),
                  static_cast<std::size_t>(count) * row_bytes,
                  dst.v.data() + static_cast<std::size_t>(l * count) *
                                     row_bytes);
    }
  };

  Node* node = root_.get();
  std::int64_t offset = 0;
  while (offset < total) {
    const auto it = node->children.find(tokens[offset]);
    if (it == node->children.end()) {
      // Fresh branch: one node carries the whole remaining suffix.
      auto fresh = std::make_unique<Node>();
      fill_from_state(*fresh, offset, total - offset);
      fresh->parent = node;
      fresh->last_use = ++clock_;
      stats_.inserted_tokens += total - offset;
      stats_.bytes += static_cast<std::int64_t>(node_bytes(total - offset));
      ++stats_.nodes;
      node->children.emplace(tokens[offset], std::move(fresh));
      break;
    }
    Node* child = it->second.get();
    const std::int64_t room = total - offset;
    std::int64_t m = 0;
    while (m < child->len() && m < room &&
           child->tokens[static_cast<std::size_t>(m)] == tokens[offset + m]) {
      ++m;
    }
    child->last_use = ++clock_;
    if (m == child->len()) {  // edge fully shared; descend
      offset += m;
      node = child;
      continue;
    }
    if (offset + m == total) break;  // prompt is a prefix of this edge
    // Divergence mid-edge: split. `child` keeps the suffix (so live Refs
    // pinning it stay valid) and a new prefix node takes the first m rows.
    auto prefix = std::make_unique<Node>();
    prefix->tokens.assign(child->tokens.begin(), child->tokens.begin() + m);
    prefix->k = slice_rows(child->k, n_layers_, child->len(), row_bytes, m,
                           /*tail=*/false);
    prefix->v = slice_rows(child->v, n_layers_, child->len(), row_bytes, m,
                           /*tail=*/false);
    prefix->parent = node;
    prefix->last_use = child->last_use;
    child->k = slice_rows(child->k, n_layers_, child->len(), row_bytes, m,
                          /*tail=*/true);
    child->v = slice_rows(child->v, n_layers_, child->len(), row_bytes, m,
                          /*tail=*/true);
    child->tokens.erase(child->tokens.begin(), child->tokens.begin() + m);
    child->parent = prefix.get();
    auto child_owner = std::move(it->second);
    node->children.erase(it);
    prefix->children.emplace(child->tokens.front(), std::move(child_owner));
    Node* prefix_raw = prefix.get();
    node->children.emplace(prefix_raw->tokens.front(), std::move(prefix));
    ++stats_.nodes;  // split adds one node, zero bytes
    node = prefix_raw;
    offset += m;
    // Loop continues: tokens[offset] now misses in prefix's children (it
    // diverged from child's edge), so the next iteration adds the branch.
  }
  ++stats_.inserts;
  evict_to_budget();
}

void RadixKvCache::release(std::vector<Node*>& path) {
  for (Node* node : path) {
    CA_CHECK(node->refcount > 0, "radix cache refcount underflow");
    --node->refcount;
    if (node->refcount == 0) --stats_.pinned_nodes;
  }
}

void RadixKvCache::evict_to_budget() {
  while (stats_.bytes > static_cast<std::int64_t>(max_bytes_)) {
    // LRU leaf scan; the tree holds at most a few dozen nodes, so O(n) per
    // eviction is cheaper than maintaining an intrusive LRU list.
    Node* victim = nullptr;
    std::vector<Node*> stack{root_.get()};
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      for (const auto& [first, child] : node->children) {
        stack.push_back(child.get());
      }
      if (node == root_.get() || !node->children.empty() ||
          node->refcount > 0) {
        continue;
      }
      if (victim == nullptr || node->last_use < victim->last_use) {
        victim = node;
      }
    }
    if (victim == nullptr) return;  // everything left is pinned
    ++stats_.evictions;
    stats_.evicted_tokens += victim->len();
    stats_.bytes -= static_cast<std::int64_t>(node_bytes(victim->len()));
    --stats_.nodes;
    victim->parent->children.erase(victim->tokens.front());
  }
}

void RadixKvCache::clear() {
  // Peel unpinned leaves until only pinned paths (and the root) remain.
  bool removed = true;
  while (removed) {
    removed = false;
    std::vector<Node*> stack{root_.get()};
    std::vector<Node*> victims;
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      for (const auto& [first, child] : node->children) {
        stack.push_back(child.get());
      }
      if (node != root_.get() && node->children.empty() &&
          node->refcount == 0) {
        victims.push_back(node);
      }
    }
    for (Node* victim : victims) {
      ++stats_.evictions;
      stats_.evicted_tokens += victim->len();
      stats_.bytes -= static_cast<std::int64_t>(node_bytes(victim->len()));
      --stats_.nodes;
      victim->parent->children.erase(victim->tokens.front());
      removed = true;
    }
  }
}

}  // namespace chipalign
