#pragma once
/// \file radix_cache.hpp
/// \brief Shared radix (prefix-tree) KV cache for the serving engine.
///
/// Sessions whose prompts share a token prefix — every chip_assistant
/// request starts with the same instruction header, every QA prompt with
/// the same retrieved context — redo identical prefill work. RadixKvCache
/// generalizes the point-to-point InferenceSession::Snapshot into a shared
/// structure: a path-compressed token trie whose every node owns the
/// per-layer KV rows of its edge tokens. acquire() copies the KV of the
/// longest cached prefix straight into a fresh SessionState (so a session
/// never aliases tree memory and eviction can never pull rows out from
/// under a running decode), and insert() publishes a finished prefill back
/// into the tree, splitting edges at divergence points so common prefixes
/// are stored exactly once.
///
/// Nodes are refcounted: acquire() pins the matched path until the returned
/// Ref is released (sessions hold the Ref for their lifetime), which keeps
/// hot prefixes resident. When stored bytes exceed the budget, unpinned
/// leaves are evicted in least-recently-used order; interior nodes become
/// evictable once their children are gone, so cold branches peel from the
/// tips inward.
///
/// Because the copied rows are the exact bits the original prefill wrote,
/// a cache-hit session decodes bit-identically to one that re-ran the
/// whole prompt (the same invariant Snapshot::restore() guarantees).
///
/// Not thread-safe; the serving Scheduler calls it from its driver thread.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "model/model_config.hpp"
#include "nn/session_state.hpp"
#include "tensor/dtype.hpp"
#include "text/tokenizer.hpp"

namespace chipalign {

class RadixKvCache {
 public:
  /// Counters for observability and the bench gates. Token counts make
  /// hit_rate() a per-token (not per-lookup) ratio: a 900-token header hit
  /// weighs 900x a 1-token hit, matching the prefill work actually saved.
  struct Stats {
    std::int64_t lookups = 0;
    std::int64_t lookup_tokens = 0;  ///< tokens offered to acquire()
    std::int64_t hit_tokens = 0;     ///< tokens served from the tree
    std::int64_t inserts = 0;
    std::int64_t inserted_tokens = 0;  ///< new tokens stored (dedup'd)
    std::int64_t evictions = 0;        ///< nodes evicted
    std::int64_t evicted_tokens = 0;
    std::int64_t nodes = 0;        ///< live nodes (excluding the root)
    std::int64_t bytes = 0;        ///< live KV bytes stored
    std::int64_t pinned_nodes = 0; ///< nodes with at least one live Ref pin;
                                   ///< must return to 0 after a server drain
                                   ///< (the no-leaked-pins invariant)
    double hit_rate() const {
      return lookup_tokens > 0
                 ? static_cast<double>(hit_tokens) /
                       static_cast<double>(lookup_tokens)
                 : 0.0;
    }
  };

  class Ref;

  /// \param max_bytes eviction budget for stored KV; 0 disables the cache
  ///   (acquire always misses, insert is a no-op).
  /// \param kv_dtype row storage dtype; must match the SessionStates the
  ///   cache exchanges rows with (kF32 or kF16). Rows move as opaque bytes,
  ///   so a hit hands back the exact bits the prefill stored either way.
  RadixKvCache(const ModelConfig& config, std::size_t max_bytes,
               DType kv_dtype = DType::kF32);
  ~RadixKvCache();

  RadixKvCache(const RadixKvCache&) = delete;
  RadixKvCache& operator=(const RadixKvCache&) = delete;

  /// Copies the KV rows of the longest cached prefix of `tokens` into
  /// positions [0, matched) of `state` and sets state.position = matched.
  /// Returns a Ref pinning the matched path (release it — or let it die —
  /// when the session ends). state.position is left untouched on a miss.
  /// state must be empty (position 0) and have capacity >= tokens.size().
  Ref acquire(std::span<const TokenId> tokens, SessionState& state);

  /// Stores the KV for `tokens` out of `state` (which must have consumed
  /// at least tokens.size() positions), sharing every already-cached
  /// prefix node and splitting edges at the divergence point. Evicts LRU
  /// unpinned leaves afterwards if the byte budget is exceeded; the nodes
  /// just inserted are evictable like any others once unpinned.
  void insert(std::span<const TokenId> tokens, const SessionState& state);

  /// Drops every unpinned node regardless of recency. Pinned paths stay.
  void clear();

  Stats stats() const { return stats_; }

 private:
  struct Node;

  void release(std::vector<Node*>& path);
  void evict_to_budget();
  std::size_t node_bytes(std::int64_t token_count) const;

  std::unique_ptr<Node> root_;
  std::int64_t n_layers_ = 0;
  std::int64_t kv_dim_ = 0;
  DType kv_dtype_ = DType::kF32;
  std::size_t elem_size_ = sizeof(float);  ///< dtype_size(kv_dtype_)
  std::size_t max_bytes_ = 0;
  std::int64_t clock_ = 0;  ///< monotonic LRU stamp
  Stats stats_;

  friend class Ref;

 public:
  /// Move-only pin on an acquired path. KV was copied at acquire() time, so
  /// a Ref carries no data — it only keeps the matched nodes' refcounts up
  /// so eviction skips them while the session that hit them is running.
  class Ref {
   public:
    Ref() = default;
    Ref(Ref&& other) noexcept
        : cache_(other.cache_), path_(std::move(other.path_)),
          matched_(other.matched_) {
      other.cache_ = nullptr;
      other.path_.clear();
      other.matched_ = 0;
    }
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        release();
        cache_ = other.cache_;
        path_ = std::move(other.path_);
        matched_ = other.matched_;
        other.cache_ = nullptr;
        other.path_.clear();
        other.matched_ = 0;
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { release(); }

    /// Tokens served from the cache (0 on a miss).
    std::int64_t matched() const { return matched_; }

    /// Unpins the path early (idempotent).
    void release() {
      if (cache_ != nullptr) {
        cache_->release(path_);
        cache_ = nullptr;
        path_.clear();
      }
    }

   private:
    friend class RadixKvCache;
    Ref(RadixKvCache* cache, std::vector<Node*> path, std::int64_t matched)
        : cache_(cache), path_(std::move(path)), matched_(matched) {}

    RadixKvCache* cache_ = nullptr;
    std::vector<Node*> path_;
    std::int64_t matched_ = 0;
  };
};

}  // namespace chipalign
