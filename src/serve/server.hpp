#pragma once
/// \file server.hpp
/// \brief Multi-tenant serving engine: continuous batching over one model.
///
/// One immutable TransformerModel, many concurrent sessions. Clients
/// submit() Requests (thread-safe) and get back an opaque SessionId; a
/// driver thread calls run() (or step() in a loop), which advances EVERY
/// runnable session by one token per iteration in a single
/// batched_decode_step — each weight matrix streams through the cache once
/// per step instead of once per session, which is where batched serving
/// throughput comes from.
///
/// Continuous batching: sessions join and leave the batch at token
/// granularity. A freshly admitted session spends its first steps feeding
/// prompt tokens (its logits rows are discarded) while its batch-mates are
/// already decoding; when a session finishes or a new one is admitted, the
/// next step's batch simply re-forms. Admission control bounds residency
/// by session count and KV bytes; waiting requests queue FIFO. Within a
/// step, runnable sessions are picked round-robin so no session starves
/// when more than max_batch are resident.
///
/// Request lifecycle (DESIGN.md §4k): every submitted session moves
/// queued → resident → terminal, and every terminal session delivers a
/// SessionResult whose `status` says how it ended — kCompleted, or one of
/// the early-exit statuses: kCancelled (Server::cancel(), effective within
/// one step), kDeadlineExceeded (Request::deadline_ms / max_queue_ms,
/// enforced in the queue and mid-decode at token granularity),
/// kShedOverload (bounced from a full bounded queue under the shed-oldest
/// policy), or kShuttingDown (drain() reached it first). Early-exit
/// eviction releases the session's KV bytes and prefix-cache pins at the
/// next step boundary, and never perturbs batch-mates: the surviving batch
/// simply re-forms, and the batched==serial bit-identity contract makes the
/// survivors' outputs independent of who left. submit() rejections
/// (QueueFullError, UnservableError, ShuttingDownError — util/error.hpp)
/// are the only requests that do not deliver a result; an accepted request
/// always terminalizes, even across drain.
///
/// Sampling, stop conditions and token budgets replicate generate()
/// exactly, and batched_decode_step is bit-identical to the serial decode
/// path, so a session's output token sequence is bitwise equal to what
/// generate() would produce for its prompt — independent of batch-mates,
/// batch width, admission order, or prefix-cache hits. The serving tests
/// pin this, and the serve-path chaos soak re-pins it with the `serve.*`
/// failpoint sites armed.
///
/// A shared RadixKvCache (optional) lets sessions whose prompts share a
/// token prefix skip the shared part of prefill: acquire() on admission,
/// insert() once the prompt is fully consumed.
///
/// Threading model: submit()/cancel()/wait_result*()/drain()/stats() are
/// thread-safe; step()/run()/serve() must be called from one driver thread
/// at a time. Token callbacks fire on the driver thread. The optional
/// watchdog runs its own polling thread and only reads via the same lock.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "nn/infer.hpp"
#include "nn/spec_decode.hpp"
#include "nn/transformer.hpp"
#include "serve/radix_cache.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

/// Opaque handle for a submitted request; assigned by submit().
using SessionId = std::int64_t;

/// How a session reached its terminal state. kCompleted is the only status
/// under which SessionResult::tokens is a full generation; every other
/// status carries whatever was emitted before the early exit (possibly
/// nothing) plus a diagnostic in SessionResult::error.
enum class SessionStatus {
  kCompleted,         ///< ran to <eos>/newline/budget; bitwise == generate()
  kCancelled,         ///< Server::cancel(), or a streaming callback threw
  kDeadlineExceeded,  ///< deadline_ms or max_queue_ms elapsed first
  kShedOverload,      ///< shed from a full bounded queue (shed-oldest policy)
  kShuttingDown,      ///< drain()/shutdown_now() terminated it
  kFailed,            ///< admission fault (e.g. injected serve.admit error)
};

/// Stable lowercase name for logs and JSON ("completed", "cancelled", ...).
const char* session_status_name(SessionStatus status);

/// Serving engine knobs. Defaults suit the test-scale models in this repo.
struct ServeConfig {
  /// Sessions resident (holding KV) at once; excess submissions queue.
  std::size_t max_sessions = 32;
  /// Admission budget for resident sessions' KV bytes. 0 = unlimited.
  std::size_t max_kv_bytes = 0;
  /// Widest batched step; more runnable sessions round-robin across steps.
  std::int64_t max_batch = 16;
  /// Bound on the admission queue (waiting, not-yet-resident sessions).
  /// 0 = unbounded. When full, submit() either throws QueueFullError
  /// (default) or — with shed_oldest_on_full — sheds the oldest waiting
  /// session (terminal status kShedOverload) to make room for the newcomer.
  std::size_t max_queue = 0;
  /// Full-queue policy: favor fresh requests over stale ones. Off, the
  /// newcomer is rejected; on, the oldest queued session is shed. Either
  /// way the outcome is explicit — nothing is ever silently dropped.
  bool shed_oldest_on_full = false;
  /// Clock used for deadlines and the watchdog, in milliseconds. Leave
  /// empty for steady_clock; tests inject a fake clock here to make
  /// deadline expiry and stall detection deterministic. Must be
  /// thread-safe: submit(), the driver, and the watchdog all call it.
  std::function<std::int64_t()> now_ms;
  /// Budget for the shared prefix cache; 0 disables prefix reuse.
  std::size_t prefix_cache_bytes = 0;
  /// KV cache storage dtype for every session (and the prefix cache):
  /// kF32, or kF16 to halve resident KV bytes — so twice the sessions fit
  /// a given max_kv_bytes — at a small accuracy cost (rows round to
  /// nearest-even on store). Outputs stay bitwise deterministic either way.
  DType kv_dtype = DType::kF32;
  /// Pool for fanning per-session attention inside a batched step; nullptr
  /// uses the global pool. Purely a throughput knob (bits never change).
  ThreadPool* pool = nullptr;

  // Speculative decoding (nn/spec_decode.hpp). When enabled, greedy
  // sessions past prefill advance up to draft_k + 1 tokens per step via
  // prompt-lookup drafting + one multi-token verify_step; acceptance is
  // greedy, so emitted tokens stay byte-identical to non-speculative
  // decoding (a pure throughput knob). Prefilling and temperature-sampled
  // sessions keep the plain batched path.
  bool speculative = false;    ///< enable draft+verify for greedy sessions
  std::int64_t draft_k = 4;    ///< draft tokens proposed per verify pass
  std::int64_t ngram_min = 1;  ///< prompt-lookup shortest suffix n-gram
  std::int64_t ngram_max = 3;  ///< prompt-lookup longest suffix n-gram
};

/// One generation request. Prompt tokens are raw ids (use text_request()
/// to encode a string the way generate() does, with <bos>).
struct Request {
  std::vector<TokenId> prompt;
  std::int64_t max_new_tokens = 128;
  double temperature = 0.0;  ///< 0 => greedy decoding
  std::uint64_t seed = 7;    ///< sampler stream, used when temperature > 0
  bool stop_at_newline = false;
  /// Whole-lifetime deadline in milliseconds from submit(); 0 = none.
  /// Checked in the queue and between decode steps: an expired resident is
  /// evicted at token granularity (KV and prefix pins released) with
  /// status kDeadlineExceeded and whatever tokens it had emitted.
  std::int64_t deadline_ms = 0;
  /// Queue-time-only deadline: give up if not *admitted* within this many
  /// milliseconds of submit(). 0 = wait forever. Lets clients bound tail
  /// latency without capping the decode itself.
  std::int64_t max_queue_ms = 0;
  /// Streaming callback, fired on the driver thread as each token is
  /// emitted (before the result is complete). May be empty. A throwing
  /// callback terminates its own session (status kCancelled, the exception
  /// text in SessionResult::error) and never disturbs batch-mates.
  std::function<void(SessionId, TokenId)> on_token;
};

/// Terminal outcome of a session (see SessionStatus for how it ended).
struct SessionResult {
  SessionStatus status = SessionStatus::kCompleted;
  std::vector<TokenId> tokens;  ///< emitted tokens (no prompt, no <eos>)
  std::string text;             ///< tokens decoded
  std::string error;            ///< diagnostic when status != kCompleted
  std::int64_t prompt_tokens = 0;
  std::int64_t cached_tokens = 0;  ///< prompt tokens served by prefix cache
};

/// Aggregate serving counters (see also RadixKvCache::Stats). Lifecycle
/// accounting balances: submitted == completed + cancelled + expired +
/// shed + shutdown_terminated + failed + waiting + resident — i.e. every
/// accepted session is either still in flight or counted in exactly one
/// terminal bucket. submit() throws are counted separately (rejected_*)
/// and never enter `submitted`.
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;  ///< cancel() or failed streaming callback
  std::int64_t expired = 0;    ///< deadline_ms / max_queue_ms terminations
  std::int64_t shed = 0;       ///< kShedOverload terminations
  std::int64_t shutdown_terminated = 0;  ///< kShuttingDown terminations
  std::int64_t failed = 0;               ///< kFailed (admission faults)
  std::int64_t rejected_full = 0;        ///< submit() QueueFullError throws
  std::int64_t rejected_unservable = 0;  ///< submit() UnservableError throws
  std::int64_t rejected_shutdown = 0;    ///< submit() ShuttingDownError
  std::int64_t steps = 0;          ///< batched decode steps executed
  std::int64_t step_tokens = 0;    ///< tokens advanced across all steps
  std::int64_t peak_batch = 0;     ///< widest batch seen
  std::int64_t peak_resident = 0;  ///< most concurrently resident sessions
  std::int64_t step_faults = 0;    ///< serve.step injections absorbed
  std::int64_t admit_faults = 0;   ///< serve.admit injections (→ kFailed)
  std::int64_t prefix_faults = 0;  ///< serve.prefix_acquire (→ cache miss)
  std::int64_t callback_faults = 0;  ///< throwing on_token (→ kCancelled)
  std::int64_t watchdog_alarms = 0;  ///< stalled-driver detections
  std::int64_t waiting = 0;          ///< gauge: queued sessions now
  std::int64_t resident = 0;         ///< gauge: resident sessions now
  std::size_t resident_kv_bytes = 0;  ///< gauge: KV held by residents now
  SpecDecodeStats spec;            ///< speculative draft/verify counters
  RadixKvCache::Stats cache;
};

class Server {
 public:
  Server(const TransformerModel& model, ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates and enqueues a request; returns its handle. Throws
  /// UnservableError on a request no admission order could ever run
  /// (empty prompt, prompt at/over the context window, out-of-vocab
  /// tokens, non-positive token budget, negative deadlines, or a KV
  /// footprint over the server budget), ShuttingDownError after drain(),
  /// and QueueFullError when the bounded queue is full without the
  /// shed-oldest policy. Thread-safe.
  SessionId submit(Request request);

  /// Builds a Request for a text prompt exactly the way generate() would:
  /// <bos>-prefixed encoding and the GenerateOptions sampling knobs.
  Request text_request(std::string_view prompt,
                       const GenerateOptions& options = {},
                       bool stop_at_newline = false) const;

  /// Requests early termination of `id`. Returns true when the session was
  /// still live (queued or resident): a queued session terminalizes
  /// immediately, a resident one at the next step boundary — "effective
  /// within one step". Returns false when the session already has a result
  /// (too late). Throws UnknownSessionError for an id submit() never
  /// issued. Thread-safe; callable from any thread, including on_token
  /// callbacks on the driver thread.
  bool cancel(SessionId id);

  /// Advances every runnable session by one token (one batched decode
  /// step), first terminalizing cancelled/expired sessions and admitting
  /// queued ones. Returns false when no queued or resident work remains.
  /// Driver thread only.
  bool step();

  /// Runs step() until all submitted work has terminalized. Returns after
  /// drain() once residents finish (or expire under the hard stop).
  void run();

  /// Blocking driver loop for a long-lived server: like run(), but when no
  /// work is queued it sleeps on a condition variable instead of
  /// returning, waking on submit(). Returns only once drain() has been
  /// called and every session has terminalized. Driver thread only.
  void serve();

  /// Initiates graceful shutdown: admission closes permanently (submit()
  /// throws ShuttingDownError), every queued session terminalizes
  /// immediately with kShuttingDown, and residents keep decoding until
  /// they complete or their deadlines expire — then run()/serve() return.
  /// Idempotent; thread-safe; callable with or without a live driver
  /// (queued work terminalizes either way, residents need the driver).
  void drain();

  /// Hard-stop escape hatch: drain(), plus residents are terminalized with
  /// kShuttingDown (keeping any tokens already emitted) at the next step
  /// boundary instead of decoding to completion. In-flight batched work is
  /// never interrupted mid-step — a wedged step is what the watchdog
  /// detects, not what shutdown_now() interrupts.
  void shutdown_now();

  /// True once drain()/shutdown_now() has been called. Thread-safe.
  bool draining() const;

  /// True when queued or resident sessions exist. Thread-safe.
  bool busy() const;

  /// Blocks until `id` terminalizes and returns (a copy of) its result.
  /// Throws UnknownSessionError for an id submit() never issued — a
  /// mistyped or stale id fails fast instead of blocking forever. The
  /// driver must be running (or the session already terminal) or this
  /// waits forever; prefer wait_result_for() when unsure.
  SessionResult wait_result(SessionId id);

  /// Bounded wait_result(): returns the result, or std::nullopt if `id`
  /// has not terminalized within timeout_ms. Throws UnknownSessionError
  /// for an id submit() never issued. timeout_ms <= 0 polls once.
  std::optional<SessionResult> wait_result_for(SessionId id,
                                               std::int64_t timeout_ms);

  /// Starts a watchdog thread that fires when the driver loop is wedged:
  /// if the server is busy() and no step has completed for stall_ms
  /// (by the configured clock), `on_stall` is invoked with the stalled
  /// duration and ServerStats::watchdog_alarms increments; the alarm
  /// re-arms, so a persistent stall fires roughly every stall_ms. The
  /// default on_stall logs a warning. The watchdog observes — it never
  /// kills the driver; pair it with shutdown_now() in the handler if
  /// that is the policy. Thread-safe.
  void start_watchdog(std::int64_t stall_ms,
                      std::function<void(std::int64_t)> on_stall = {});

  /// Stops and joins the watchdog thread (idempotent; also runs in the
  /// destructor).
  void stop_watchdog();

  ServerStats stats() const;

 private:
  struct Session;

  std::int64_t now_ms() const;
  void reap_locked();
  void admit_locked();
  void check_known_locked(SessionId id) const;
  bool queue_expired_locked(const Session& session, std::int64_t now) const;
  bool lifetime_expired_locked(const Session& session,
                               std::int64_t now) const;
  TokenId sample_next(Session& session, std::span<const float> row);
  /// Emits one token: records it and fires the streaming callback behind
  /// the serve.callback failpoint. Returns false when the callback threw —
  /// the session must then terminalize as kCancelled.
  bool emit_token(Session& session, TokenId token);
  void finish_locked(std::unique_ptr<Session> session, SessionStatus status);
  void touch_progress_locked();
  /// True when `session` should advance via draft+verify this step.
  bool speculative_eligible(const Session& session) const;
  /// One speculative pass for `session`: draft, verify_step, acceptance
  /// walk, KV truncate. Returns true when the session finished (including
  /// a failed streaming callback — check session.callback_failed).
  bool spec_advance(Session& session, SpecDecodeStats& pass_stats,
                    ThreadPool* pool);

  const TransformerModel& model_;
  ServeConfig config_;
  RadixKvCache cache_;
  DecodeScratch scratch_;
  std::vector<float> logits_;  ///< [max_batch, vocab]
  TokenId newline_id_ = -1;
  PromptLookupDrafter drafter_;     ///< shared, stateless (driver thread)
  std::vector<float> spec_logits_;  ///< [draft_k + 1, vocab]
  std::vector<TokenId> spec_context_;  ///< prompt + emitted scratch
  std::vector<TokenId> spec_block_;    ///< pending + drafts scratch

  mutable std::mutex mutex_;
  std::condition_variable finished_cv_;
  std::condition_variable work_cv_;  ///< wakes serve() on submit()/drain()
  SessionId next_id_ = 1;
  std::vector<std::unique_ptr<Session>> waiting_;  ///< FIFO admission queue
  std::vector<std::unique_ptr<Session>> active_;   ///< resident sessions
  std::size_t resident_kv_bytes_ = 0;
  std::size_t rr_next_ = 0;  ///< round-robin cursor into active_
  std::map<SessionId, SessionResult> results_;
  ServerStats stats_;
  bool draining_ = false;   ///< admission closed (drain()/shutdown_now())
  bool hard_stop_ = false;  ///< also evict residents at step boundaries
  std::int64_t last_progress_ms_ = 0;  ///< watchdog: last step completion

  std::thread watchdog_;
  std::mutex watchdog_mutex_;  ///< guards start/stop against each other
  std::atomic<bool> watchdog_stop_{false};
};

}  // namespace chipalign
