#pragma once
/// \file server.hpp
/// \brief Multi-tenant serving engine: continuous batching over one model.
///
/// One immutable TransformerModel, many concurrent sessions. Clients
/// submit() Requests (thread-safe) and get back an opaque SessionId; a
/// driver thread calls run() (or step() in a loop), which advances EVERY
/// runnable session by one token per iteration in a single
/// batched_decode_step — each weight matrix streams through the cache once
/// per step instead of once per session, which is where batched serving
/// throughput comes from.
///
/// Continuous batching: sessions join and leave the batch at token
/// granularity. A freshly admitted session spends its first steps feeding
/// prompt tokens (its logits rows are discarded) while its batch-mates are
/// already decoding; when a session finishes or a new one is admitted, the
/// next step's batch simply re-forms. Admission control bounds residency
/// by session count and KV bytes; waiting requests queue FIFO. Within a
/// step, runnable sessions are picked round-robin so no session starves
/// when more than max_batch are resident.
///
/// Sampling, stop conditions and token budgets replicate generate()
/// exactly, and batched_decode_step is bit-identical to the serial decode
/// path, so a session's output token sequence is bitwise equal to what
/// generate() would produce for its prompt — independent of batch-mates,
/// batch width, admission order, or prefix-cache hits. The serving tests
/// pin this.
///
/// A shared RadixKvCache (optional) lets sessions whose prompts share a
/// token prefix skip the shared part of prefill: acquire() on admission,
/// insert() once the prompt is fully consumed.
///
/// Threading model: submit()/wait_result()/stats() are thread-safe;
/// step()/run() must be called from one driver thread at a time. Token
/// callbacks fire on the driver thread.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nn/infer.hpp"
#include "nn/spec_decode.hpp"
#include "nn/transformer.hpp"
#include "serve/radix_cache.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

/// Opaque handle for a submitted request; assigned by submit().
using SessionId = std::int64_t;

/// Serving engine knobs. Defaults suit the test-scale models in this repo.
struct ServeConfig {
  /// Sessions resident (holding KV) at once; excess submissions queue.
  std::size_t max_sessions = 32;
  /// Admission budget for resident sessions' KV bytes. 0 = unlimited.
  std::size_t max_kv_bytes = 0;
  /// Widest batched step; more runnable sessions round-robin across steps.
  std::int64_t max_batch = 16;
  /// Budget for the shared prefix cache; 0 disables prefix reuse.
  std::size_t prefix_cache_bytes = 0;
  /// KV cache storage dtype for every session (and the prefix cache):
  /// kF32, or kF16 to halve resident KV bytes — so twice the sessions fit
  /// a given max_kv_bytes — at a small accuracy cost (rows round to
  /// nearest-even on store). Outputs stay bitwise deterministic either way.
  DType kv_dtype = DType::kF32;
  /// Pool for fanning per-session attention inside a batched step; nullptr
  /// uses the global pool. Purely a throughput knob (bits never change).
  ThreadPool* pool = nullptr;

  // Speculative decoding (nn/spec_decode.hpp). When enabled, greedy
  // sessions past prefill advance up to draft_k + 1 tokens per step via
  // prompt-lookup drafting + one multi-token verify_step; acceptance is
  // greedy, so emitted tokens stay byte-identical to non-speculative
  // decoding (a pure throughput knob). Prefilling and temperature-sampled
  // sessions keep the plain batched path.
  bool speculative = false;    ///< enable draft+verify for greedy sessions
  std::int64_t draft_k = 4;    ///< draft tokens proposed per verify pass
  std::int64_t ngram_min = 1;  ///< prompt-lookup shortest suffix n-gram
  std::int64_t ngram_max = 3;  ///< prompt-lookup longest suffix n-gram
};

/// One generation request. Prompt tokens are raw ids (use text_request()
/// to encode a string the way generate() does, with <bos>).
struct Request {
  std::vector<TokenId> prompt;
  std::int64_t max_new_tokens = 128;
  double temperature = 0.0;  ///< 0 => greedy decoding
  std::uint64_t seed = 7;    ///< sampler stream, used when temperature > 0
  bool stop_at_newline = false;
  /// Streaming callback, fired on the driver thread as each token is
  /// emitted (before the result is complete). May be empty.
  std::function<void(SessionId, TokenId)> on_token;
};

/// Completed generation.
struct SessionResult {
  std::vector<TokenId> tokens;  ///< emitted tokens (no prompt, no <eos>)
  std::string text;             ///< tokens decoded
  std::int64_t prompt_tokens = 0;
  std::int64_t cached_tokens = 0;  ///< prompt tokens served by prefix cache
};

/// Aggregate serving counters (see also RadixKvCache::Stats).
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t steps = 0;          ///< batched decode steps executed
  std::int64_t step_tokens = 0;    ///< tokens advanced across all steps
  std::int64_t peak_batch = 0;     ///< widest batch seen
  std::int64_t peak_resident = 0;  ///< most concurrently resident sessions
  SpecDecodeStats spec;            ///< speculative draft/verify counters
  RadixKvCache::Stats cache;
};

class Server {
 public:
  Server(const TransformerModel& model, ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates and enqueues a request; returns its handle. Throws Error on
  /// an unservable request: empty prompt, prompt at/over the context
  /// window, out-of-vocab tokens, non-positive token budget, or a KV
  /// footprint no budget state could ever admit. Thread-safe.
  SessionId submit(Request request);

  /// Builds a Request for a text prompt exactly the way generate() would:
  /// <bos>-prefixed encoding and the GenerateOptions sampling knobs.
  Request text_request(std::string_view prompt,
                       const GenerateOptions& options = {},
                       bool stop_at_newline = false) const;

  /// Advances every runnable session by one token (one batched decode
  /// step), admitting queued sessions first. Returns false when no queued
  /// or resident work remains. Driver thread only.
  bool step();

  /// Runs step() until all submitted work has completed.
  void run();

  /// True when queued or resident sessions exist. Thread-safe.
  bool busy() const;

  /// Blocks until `id` completes and returns (a copy of) its result.
  /// Throws Error for an id submit() never returned. The driver must be
  /// running (or the session already finished) or this waits forever.
  SessionResult wait_result(SessionId id);

  ServerStats stats() const;

 private:
  struct Session;

  void admit_locked();
  TokenId sample_next(Session& session, std::span<const float> row);
  void finish_locked(std::unique_ptr<Session> session);
  /// True when `session` should advance via draft+verify this step.
  bool speculative_eligible(const Session& session) const;
  /// One speculative pass for `session`: draft, verify_step, acceptance
  /// walk, KV truncate. Returns true when the session finished.
  bool spec_advance(Session& session, SpecDecodeStats& pass_stats,
                    ThreadPool* pool);

  const TransformerModel& model_;
  ServeConfig config_;
  RadixKvCache cache_;
  DecodeScratch scratch_;
  std::vector<float> logits_;  ///< [max_batch, vocab]
  TokenId newline_id_ = -1;
  PromptLookupDrafter drafter_;     ///< shared, stateless (driver thread)
  std::vector<float> spec_logits_;  ///< [draft_k + 1, vocab]
  std::vector<TokenId> spec_context_;  ///< prompt + emitted scratch
  std::vector<TokenId> spec_block_;    ///< pending + drafts scratch

  mutable std::mutex mutex_;
  std::condition_variable finished_cv_;
  SessionId next_id_ = 1;
  std::vector<std::unique_ptr<Session>> waiting_;  ///< FIFO admission queue
  std::vector<std::unique_ptr<Session>> active_;   ///< resident sessions
  std::size_t resident_kv_bytes_ = 0;
  std::size_t rr_next_ = 0;  ///< round-robin cursor into active_
  std::map<SessionId, SessionResult> results_;
  ServerStats stats_;
};

}  // namespace chipalign
