#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "nn/decode.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

/// Per-session bookkeeping. The KV-bearing SessionState is allocated at
/// admission (not submission) so queued sessions cost no cache memory.
struct Server::Session {
  SessionId id = 0;
  Request request;
  std::int64_t max_new = 0;        ///< effective budget (context-clamped)
  std::int64_t capacity = 0;       ///< KV rows this session needs
  std::int64_t cached_tokens = 0;  ///< prefix-cache hit length
  std::int64_t feed_index = 0;     ///< next prompt token to feed
  TokenId pending = -1;            ///< sampled token awaiting its feed
  bool inserted = false;           ///< prompt published to the prefix cache
  std::vector<TokenId> emitted;
  std::unique_ptr<SessionState> state;  ///< live while resident
  RadixKvCache::Ref cache_ref;

  std::int64_t prompt_len() const {
    return static_cast<std::int64_t>(request.prompt.size());
  }
};

namespace {
std::int64_t scratch_rows(const ServeConfig& config) {
  // The speculative verify block (pending + draft_k drafts) shares the
  // batched-decode scratch arena, so size it for whichever is wider.
  return config.speculative
             ? std::max<std::int64_t>(config.max_batch, config.draft_k + 1)
             : config.max_batch;
}
}  // namespace

Server::Server(const TransformerModel& model, ServeConfig config)
    : model_(model),
      config_(config),
      cache_(model.config(), config.prefix_cache_bytes, config.kv_dtype),
      scratch_(model.config(), scratch_rows(config)),
      drafter_(config.ngram_min, config.ngram_max) {
  CA_CHECK(config_.max_sessions > 0, "ServeConfig.max_sessions must be > 0");
  CA_CHECK(config_.draft_k >= 0,
           "ServeConfig.draft_k must be >= 0, got " << config_.draft_k);
  logits_.resize(static_cast<std::size_t>(config_.max_batch *
                                          model_.config().vocab_size));
  newline_id_ = tokenizer().char_to_id('\n');
  if (config_.speculative) {
    spec_logits_.resize(static_cast<std::size_t>(
        (config_.draft_k + 1) * model_.config().vocab_size));
    spec_block_.resize(static_cast<std::size_t>(config_.draft_k + 1));
  }
}

Server::~Server() = default;

Request Server::text_request(std::string_view prompt,
                             const GenerateOptions& options,
                             bool stop_at_newline) const {
  Request request;
  request.prompt = tokenizer().encode(prompt, /*add_bos=*/true);
  request.max_new_tokens = options.max_new_tokens;
  request.temperature = options.temperature;
  request.seed = options.seed;
  request.stop_at_newline = stop_at_newline;
  return request;
}

SessionId Server::submit(Request request) {
  const auto& config = model_.config();
  const auto prompt_len = static_cast<std::int64_t>(request.prompt.size());
  CA_CHECK(prompt_len > 0, "submit with empty prompt");
  CA_CHECK(prompt_len < config.max_seq_len,
           "prompt of " << prompt_len
                        << " tokens fills the whole context window ("
                        << config.max_seq_len << ")");
  for (const TokenId token : request.prompt) {
    CA_CHECK(token >= 0 && token < config.vocab_size,
             "prompt token id " << token << " out of vocab");
  }
  CA_CHECK(request.max_new_tokens > 0,
           "submit with non-positive max_new_tokens "
               << request.max_new_tokens);

  auto session = std::make_unique<Session>();
  session->request = std::move(request);
  session->max_new = std::min<std::int64_t>(session->request.max_new_tokens,
                                            config.max_seq_len - prompt_len);
  // The final emitted token is never fed back (generate() feeds it only to
  // throw the logits away), so the cache needs one row fewer than
  // prompt + budget.
  session->capacity = prompt_len + session->max_new - 1;
  if (session->capacity < 1) session->capacity = 1;
  const std::size_t bytes =
      SessionState::kv_bytes_for(config, session->capacity,
                                 config_.kv_dtype);
  CA_CHECK(config_.max_kv_bytes == 0 || bytes <= config_.max_kv_bytes,
           "session needs " << bytes << " KV bytes, over the server budget "
                            << config_.max_kv_bytes
                            << " — no admission order can ever run it");

  std::lock_guard<std::mutex> lock(mutex_);
  session->id = next_id_++;
  const SessionId id = session->id;
  ++stats_.submitted;
  waiting_.push_back(std::move(session));
  return id;
}

void Server::admit_locked() {
  const auto& config = model_.config();
  while (!waiting_.empty() && active_.size() < config_.max_sessions) {
    Session& session = *waiting_.front();
    const std::size_t bytes =
        SessionState::kv_bytes_for(config, session.capacity,
                                   config_.kv_dtype);
    if (config_.max_kv_bytes > 0 &&
        resident_kv_bytes_ + bytes > config_.max_kv_bytes) {
      break;  // FIFO: later (smaller) sessions wait their turn too
    }
    session.state = std::make_unique<SessionState>(config, session.capacity,
                                                   session.request.seed,
                                                   config_.kv_dtype);
    // Reuse cached prefill for all but the last prompt token — that one
    // must be fed live to produce the logits the first sample needs.
    if (config_.prefix_cache_bytes > 0 && session.prompt_len() > 1) {
      session.cache_ref = cache_.acquire(
          std::span<const TokenId>(session.request.prompt.data(),
                                   session.request.prompt.size() - 1),
          *session.state);
      session.cached_tokens = session.cache_ref.matched();
      session.feed_index = session.cached_tokens;
    }
    resident_kv_bytes_ += bytes;
    active_.push_back(std::move(waiting_.front()));
    waiting_.erase(waiting_.begin());
    stats_.peak_resident =
        std::max(stats_.peak_resident,
                 static_cast<std::int64_t>(active_.size()));
  }
}

TokenId Server::sample_next(Session& session, std::span<const float> row) {
  if (session.request.temperature <= 0.0) {
    return static_cast<TokenId>(ops::argmax(row));
  }
  std::vector<float> probs(row.begin(), row.end());
  const auto inv_temp =
      static_cast<float>(1.0 / session.request.temperature);
  for (float& v : probs) v *= inv_temp;
  ops::softmax_inplace(std::span<float>(probs.data(), probs.size()));
  return static_cast<TokenId>(sample_from_probs(
      std::span<const float>(probs.data(), probs.size()),
      session.state->rng.uniform()));
}

bool Server::speculative_eligible(const Session& session) const {
  // Greedy acceptance needs argmax decoding, and drafting needs the prompt
  // fully consumed (prefill rows advance exactly one position per step).
  return config_.speculative && session.request.temperature <= 0.0 &&
         session.feed_index >= session.prompt_len();
}

bool Server::spec_advance(Session& session, SpecDecodeStats& pass_stats,
                          ThreadPool* pool) {
  const auto& config = model_.config();
  SessionState& state = *session.state;
  const std::int64_t pos0 = state.position;
  // One row is the pending feed; drafts fill whatever KV headroom remains
  // (the final emitted token is never fed, hence the -1).
  const std::int64_t k = std::min<std::int64_t>(
      config_.draft_k, session.capacity - pos0 - 1);
  std::size_t drafted = 0;
  if (k > 0) {
    spec_context_.assign(session.request.prompt.begin(),
                         session.request.prompt.end());
    spec_context_.insert(spec_context_.end(), session.emitted.begin(),
                         session.emitted.end());
    drafted = drafter_.draft(
        std::span<const TokenId>(spec_context_.data(), spec_context_.size()),
        static_cast<std::size_t>(k),
        std::span<TokenId>(spec_block_.data() + 1,
                           static_cast<std::size_t>(config_.draft_k)));
  }
  spec_block_[0] = session.pending;
  const std::size_t block_len = 1 + drafted;
  const std::span<float> rows(
      spec_logits_.data(),
      block_len * static_cast<std::size_t>(config.vocab_size));
  verify_step(model_, state, scratch_,
              std::span<const TokenId>(spec_block_.data(), block_len), rows,
              pool);

  const SpecWalkResult walk = spec_accept_walk(
      rows, config.vocab_size,
      std::span<const TokenId>(spec_block_.data() + 1, drafted),
      [&](TokenId t) {
        return t == CharTokenizer::kEos ||
               (session.request.stop_at_newline && t == newline_id_);
      },
      [&](TokenId t) {
        session.emitted.push_back(t);
        if (session.request.on_token) {
          session.request.on_token(session.id, t);
        }
        return static_cast<std::int64_t>(session.emitted.size()) <
               session.max_new;
      });
  state.truncate(pos0 + walk.consumed);
  ++pass_stats.verify_passes;
  pass_stats.drafted += static_cast<std::int64_t>(drafted);
  pass_stats.accepted += walk.accepted;
  pass_stats.emitted += walk.emitted;

  if (walk.stopped) return true;
  if (static_cast<std::int64_t>(session.emitted.size()) >= session.max_new) {
    return true;  // budget spent; the last token is never fed back
  }
  session.pending = walk.last;
  return false;
}

void Server::finish_locked(std::unique_ptr<Session> session) {
  SessionResult result;
  result.tokens = std::move(session->emitted);
  result.text = tokenizer().decode(result.tokens);
  result.prompt_tokens = session->prompt_len();
  result.cached_tokens = session->cached_tokens;
  session->cache_ref.release();
  resident_kv_bytes_ -= session->state->kv_bytes();
  results_.emplace(session->id, std::move(result));
  ++stats_.completed;
  finished_cv_.notify_all();
}

bool Server::step() {
  const auto& config = model_.config();
  std::vector<Session*> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    admit_locked();
    if (active_.empty()) return false;
    const auto width = std::min<std::size_t>(
        static_cast<std::size_t>(config_.max_batch), active_.size());
    batch.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      batch.push_back(active_[i].get());
    }
  }
  const auto width = static_cast<std::int64_t>(batch.size());
  ThreadPool* pool =
      config_.pool != nullptr ? config_.pool : &global_thread_pool();

  // Partition: greedy sessions past prefill take one draft+verify pass
  // each (advancing up to draft_k + 1 tokens); everyone else — prefilling
  // rows and temperature-sampled sessions — advances one token through the
  // shared batched step.
  std::vector<std::size_t> plain_rows;
  std::vector<std::size_t> spec_rows;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    (speculative_eligible(*batch[i]) ? spec_rows : plain_rows).push_back(i);
  }

  std::vector<bool> done(batch.size(), false);
  if (!plain_rows.empty()) {
    std::vector<SessionState*> states;
    std::vector<TokenId> tokens;
    states.reserve(plain_rows.size());
    tokens.reserve(plain_rows.size());
    for (const std::size_t i : plain_rows) {
      Session* session = batch[i];
      states.push_back(session->state.get());
      tokens.push_back(session->feed_index < session->prompt_len()
                           ? session->request.prompt[static_cast<std::size_t>(
                                 session->feed_index)]
                           : session->pending);
    }
    const std::span<float> logits(
        logits_.data(),
        plain_rows.size() * static_cast<std::size_t>(config.vocab_size));
    batched_decode_step(
        model_, std::span<SessionState* const>(states.data(), states.size()),
        std::span<const TokenId>(tokens.data(), tokens.size()), scratch_,
        logits, pool);

    for (std::size_t r = 0; r < plain_rows.size(); ++r) {
      const std::size_t i = plain_rows[r];
      Session& session = *batch[i];
      if (session.feed_index < session.prompt_len()) {
        ++session.feed_index;
        if (session.feed_index < session.prompt_len()) {
          continue;  // still prefilling; this row's logits are discarded
        }
        // Prompt fully consumed: publish its KV for future prefix sharing.
        // Only ever sees accepted tokens — drafts are never fed before the
        // prompt completes, and the cache is not touched afterwards.
        if (config_.prefix_cache_bytes > 0 && !session.inserted) {
          cache_.insert(
              std::span<const TokenId>(session.request.prompt.data(),
                                       session.request.prompt.size()),
              *session.state);
          session.inserted = true;
        }
      }
      const std::span<const float> row(
          logits.data() + r * static_cast<std::size_t>(config.vocab_size),
          static_cast<std::size_t>(config.vocab_size));
      const TokenId next = sample_next(session, row);
      if (next == CharTokenizer::kEos ||
          (session.request.stop_at_newline && next == newline_id_)) {
        done[i] = true;
        continue;
      }
      session.emitted.push_back(next);
      if (session.request.on_token) {
        session.request.on_token(session.id, next);
      }
      if (static_cast<std::int64_t>(session.emitted.size()) >=
          session.max_new) {
        done[i] = true;  // budget spent; the last token is never fed back
        continue;
      }
      session.pending = next;
    }
  }

  SpecDecodeStats pass_stats;
  for (const std::size_t i : spec_rows) {
    done[i] = spec_advance(*batch[i], pass_stats, pool);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.steps;
  // Plain rows advance one position each; a speculative pass keeps one row
  // per verify plus every accepted draft row.
  stats_.step_tokens += static_cast<std::int64_t>(plain_rows.size()) +
                        pass_stats.verify_passes + pass_stats.accepted;
  stats_.spec.merge(pass_stats);
  stats_.peak_batch = std::max(stats_.peak_batch, width);
  stats_.cache = cache_.stats();
  // Round-robin: surviving batch members rotate to the back so sessions
  // beyond max_batch get the next steps.
  std::vector<std::unique_ptr<Session>> stepped;
  stepped.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    stepped.push_back(std::move(active_[i]));
  }
  active_.erase(active_.begin(),
                active_.begin() + static_cast<std::ptrdiff_t>(batch.size()));
  for (std::size_t i = 0; i < stepped.size(); ++i) {
    if (done[i]) {
      finish_locked(std::move(stepped[i]));
    } else {
      active_.push_back(std::move(stepped[i]));
    }
  }
  return !active_.empty() || !waiting_.empty();
}

void Server::run() {
  while (step()) {
  }
}

bool Server::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !waiting_.empty() || !active_.empty();
}

SessionResult Server::wait_result(SessionId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  CA_CHECK(id >= 1 && id < next_id_, "unknown session id " << id);
  finished_cv_.wait(lock, [&] { return results_.count(id) > 0; });
  return results_.at(id);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace chipalign
