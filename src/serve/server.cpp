#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "nn/decode.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace chipalign {

/// Per-session bookkeeping. The KV-bearing SessionState is allocated at
/// admission (not submission) so queued sessions cost no cache memory.
///
/// Field access discipline: during the unlocked decode phase the driver
/// thread freely mutates the decode fields (feed_index, pending, emitted,
/// callback_failed, error). Client threads touch only `cancelled` — and
/// only under mutex_ — which the driver also reads only under mutex_ (in
/// reap_locked), so there is no field both sides access without the lock.
struct Server::Session {
  SessionId id = 0;
  Request request;
  std::int64_t max_new = 0;        ///< effective budget (context-clamped)
  std::int64_t capacity = 0;       ///< KV rows this session needs
  std::int64_t cached_tokens = 0;  ///< prefix-cache hit length
  std::int64_t feed_index = 0;     ///< next prompt token to feed
  std::int64_t submit_ms = 0;      ///< clock reading at submit()
  TokenId pending = -1;            ///< sampled token awaiting its feed
  bool inserted = false;           ///< prompt published to the prefix cache
  bool cancelled = false;          ///< cancel() flag (mutex_-guarded)
  bool callback_failed = false;    ///< on_token threw (driver thread only)
  std::string error;               ///< diagnostic for non-completed endings
  std::vector<TokenId> emitted;
  std::unique_ptr<SessionState> state;  ///< live while resident
  RadixKvCache::Ref cache_ref;

  std::int64_t prompt_len() const {
    return static_cast<std::int64_t>(request.prompt.size());
  }
};

namespace {
std::int64_t scratch_rows(const ServeConfig& config) {
  // The speculative verify block (pending + draft_k drafts) shares the
  // batched-decode scratch arena, so size it for whichever is wider.
  return config.speculative
             ? std::max<std::int64_t>(config.max_batch, config.draft_k + 1)
             : config.max_batch;
}
}  // namespace

const char* session_status_name(SessionStatus status) {
  switch (status) {
    case SessionStatus::kCompleted: return "completed";
    case SessionStatus::kCancelled: return "cancelled";
    case SessionStatus::kDeadlineExceeded: return "deadline_exceeded";
    case SessionStatus::kShedOverload: return "shed_overload";
    case SessionStatus::kShuttingDown: return "shutting_down";
    case SessionStatus::kFailed: return "failed";
  }
  return "?";
}

Server::Server(const TransformerModel& model, ServeConfig config)
    : model_(model),
      config_(std::move(config)),
      cache_(model.config(), config_.prefix_cache_bytes, config_.kv_dtype),
      scratch_(model.config(), scratch_rows(config_)),
      drafter_(config_.ngram_min, config_.ngram_max) {
  CA_CHECK(config_.max_sessions > 0, "ServeConfig.max_sessions must be > 0");
  CA_CHECK(config_.draft_k >= 0,
           "ServeConfig.draft_k must be >= 0, got " << config_.draft_k);
  logits_.resize(static_cast<std::size_t>(config_.max_batch *
                                          model_.config().vocab_size));
  newline_id_ = tokenizer().char_to_id('\n');
  if (config_.speculative) {
    spec_logits_.resize(static_cast<std::size_t>(
        (config_.draft_k + 1) * model_.config().vocab_size));
    spec_block_.resize(static_cast<std::size_t>(config_.draft_k + 1));
  }
  last_progress_ms_ = now_ms();
}

Server::~Server() { stop_watchdog(); }

std::int64_t Server::now_ms() const {
  if (config_.now_ms) return config_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Request Server::text_request(std::string_view prompt,
                             const GenerateOptions& options,
                             bool stop_at_newline) const {
  Request request;
  request.prompt = tokenizer().encode(prompt, /*add_bos=*/true);
  request.max_new_tokens = options.max_new_tokens;
  request.temperature = options.temperature;
  request.seed = options.seed;
  request.stop_at_newline = stop_at_newline;
  return request;
}

SessionId Server::submit(Request request) {
  const auto& config = model_.config();
  auto session = std::make_unique<Session>();
  try {
    const auto prompt_len = static_cast<std::int64_t>(request.prompt.size());
    if (prompt_len <= 0) {
      CA_THROW_AS(UnservableError, "submit with empty prompt");
    }
    if (prompt_len >= config.max_seq_len) {
      CA_THROW_AS(UnservableError,
                  "prompt of " << prompt_len
                               << " tokens fills the whole context window ("
                               << config.max_seq_len << ")");
    }
    for (const TokenId token : request.prompt) {
      if (token < 0 || token >= config.vocab_size) {
        CA_THROW_AS(UnservableError,
                    "prompt token id " << token << " out of vocab");
      }
    }
    if (request.max_new_tokens <= 0) {
      CA_THROW_AS(UnservableError, "submit with non-positive max_new_tokens "
                                       << request.max_new_tokens);
    }
    if (request.deadline_ms < 0 || request.max_queue_ms < 0) {
      CA_THROW_AS(UnservableError,
                  "negative deadline (deadline_ms "
                      << request.deadline_ms << ", max_queue_ms "
                      << request.max_queue_ms << ")");
    }
    session->request = std::move(request);
    session->max_new =
        std::min<std::int64_t>(session->request.max_new_tokens,
                               config.max_seq_len - prompt_len);
    // The final emitted token is never fed back (generate() feeds it only
    // to throw the logits away), so the cache needs one row fewer than
    // prompt + budget.
    session->capacity = prompt_len + session->max_new - 1;
    if (session->capacity < 1) session->capacity = 1;
    const std::size_t bytes =
        SessionState::kv_bytes_for(config, session->capacity,
                                   config_.kv_dtype);
    if (config_.max_kv_bytes != 0 && bytes > config_.max_kv_bytes) {
      CA_THROW_AS(UnservableError,
                  "session needs " << bytes
                                   << " KV bytes, over the server budget "
                                   << config_.max_kv_bytes
                                   << " — no admission order can ever run "
                                      "it");
    }
  } catch (const UnservableError&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected_unservable;
    throw;
  }
  session->submit_ms = now_ms();

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    ++stats_.rejected_shutdown;
    CA_THROW_AS(ShuttingDownError,
                "server is draining — admission is closed");
  }
  if (config_.max_queue > 0 && waiting_.size() >= config_.max_queue) {
    if (!config_.shed_oldest_on_full) {
      ++stats_.rejected_full;
      CA_THROW_AS(QueueFullError,
                  "admission queue full (" << waiting_.size()
                                           << " waiting, max_queue "
                                           << config_.max_queue << ")");
    }
    // Shed-oldest: the stalest queued request makes room for the newest.
    // Explicit terminal status, never a silent drop.
    auto victim = std::move(waiting_.front());
    waiting_.erase(waiting_.begin());
    victim->error = "shed from a full admission queue to admit newer work";
    finish_locked(std::move(victim), SessionStatus::kShedOverload);
  }
  session->id = next_id_++;
  const SessionId id = session->id;
  ++stats_.submitted;
  waiting_.push_back(std::move(session));
  work_cv_.notify_all();
  return id;
}

bool Server::queue_expired_locked(const Session& session,
                                  std::int64_t now) const {
  if (session.request.max_queue_ms > 0 &&
      now - session.submit_ms >= session.request.max_queue_ms) {
    return true;
  }
  return lifetime_expired_locked(session, now);
}

bool Server::lifetime_expired_locked(const Session& session,
                                     std::int64_t now) const {
  return session.request.deadline_ms > 0 &&
         now - session.submit_ms >= session.request.deadline_ms;
}

void Server::reap_locked() {
  const std::int64_t now = now_ms();
  // Queue sweep: cancelled, drained, or expired-before-admission sessions
  // terminalize without ever holding KV.
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    Session& session = **it;
    SessionStatus status;
    if (session.cancelled) {
      status = SessionStatus::kCancelled;
    } else if (draining_) {
      status = SessionStatus::kShuttingDown;
      session.error = "server drained before the session was admitted";
    } else if (queue_expired_locked(session, now)) {
      status = SessionStatus::kDeadlineExceeded;
      session.error = "deadline expired in the admission queue";
    } else {
      ++it;
      continue;
    }
    auto owned = std::move(*it);
    it = waiting_.erase(it);
    finish_locked(std::move(owned), status);
  }
  // Resident sweep — the token-granularity eviction point: runs between
  // batched steps (never while the driver holds raw batch pointers), so
  // removing a session here just re-forms the next batch without it. The
  // batched==serial bit-identity makes survivors' outputs independent of
  // who left.
  for (auto it = active_.begin(); it != active_.end();) {
    Session& session = **it;
    SessionStatus status;
    if (session.cancelled) {
      status = SessionStatus::kCancelled;
      if (session.error.empty()) session.error = "cancelled by client";
    } else if (hard_stop_) {
      status = SessionStatus::kShuttingDown;
      session.error = "hard stop (shutdown_now) evicted the session";
    } else if (lifetime_expired_locked(session, now)) {
      status = SessionStatus::kDeadlineExceeded;
      session.error = "deadline expired mid-decode";
    } else {
      ++it;
      continue;
    }
    auto owned = std::move(*it);
    it = active_.erase(it);
    finish_locked(std::move(owned), status);
  }
}

void Server::admit_locked() {
  const auto& config = model_.config();
  while (!waiting_.empty() && active_.size() < config_.max_sessions) {
    Session& session = *waiting_.front();
    const std::size_t bytes =
        SessionState::kv_bytes_for(config, session.capacity,
                                   config_.kv_dtype);
    if (config_.max_kv_bytes > 0 &&
        resident_kv_bytes_ + bytes > config_.max_kv_bytes) {
      break;  // FIFO: later (smaller) sessions wait their turn too
    }
    try {
      CA_FAILPOINT("serve.admit");
      session.state = std::make_unique<SessionState>(config,
                                                     session.capacity,
                                                     session.request.seed,
                                                     config_.kv_dtype);
    } catch (const Error& error) {
      // Admission fault: this session terminalizes as kFailed; the queue
      // behind it keeps admitting.
      ++stats_.admit_faults;
      session.error = error.what();
      auto owned = std::move(waiting_.front());
      waiting_.erase(waiting_.begin());
      finish_locked(std::move(owned), SessionStatus::kFailed);
      continue;
    }
    // Reuse cached prefill for all but the last prompt token — that one
    // must be fed live to produce the logits the first sample needs.
    if (config_.prefix_cache_bytes > 0 && session.prompt_len() > 1) {
      try {
        CA_FAILPOINT("serve.prefix_acquire");
        session.cache_ref = cache_.acquire(
            std::span<const TokenId>(session.request.prompt.data(),
                                     session.request.prompt.size() - 1),
            *session.state);
        session.cached_tokens = session.cache_ref.matched();
        session.feed_index = session.cached_tokens;
      } catch (const Error&) {
        // Degrade to a cold prefill: a miss is always a valid execution
        // (bit-identity holds), so an acquire fault costs latency, never
        // correctness.
        ++stats_.prefix_faults;
        session.cache_ref = RadixKvCache::Ref();
        session.state->position = 0;
        session.cached_tokens = 0;
        session.feed_index = 0;
      }
    }
    resident_kv_bytes_ += bytes;
    active_.push_back(std::move(waiting_.front()));
    waiting_.erase(waiting_.begin());
    stats_.peak_resident =
        std::max(stats_.peak_resident,
                 static_cast<std::int64_t>(active_.size()));
  }
}

TokenId Server::sample_next(Session& session, std::span<const float> row) {
  if (session.request.temperature <= 0.0) {
    return static_cast<TokenId>(ops::argmax(row));
  }
  std::vector<float> probs(row.begin(), row.end());
  const auto inv_temp =
      static_cast<float>(1.0 / session.request.temperature);
  for (float& v : probs) v *= inv_temp;
  ops::softmax_inplace(std::span<float>(probs.data(), probs.size()));
  return static_cast<TokenId>(sample_from_probs(
      std::span<const float>(probs.data(), probs.size()),
      session.state->rng.uniform()));
}

bool Server::emit_token(Session& session, TokenId token) {
  session.emitted.push_back(token);
  if (!session.request.on_token) return true;
  try {
    CA_FAILPOINT("serve.callback");
    session.request.on_token(session.id, token);
    return true;
  } catch (const std::exception& error) {
    // A misbehaving client callback terminates its own session only; the
    // already-emitted token stays in the result.
    session.callback_failed = true;
    session.error =
        std::string("streaming callback failed: ") + error.what();
    return false;
  }
}

bool Server::speculative_eligible(const Session& session) const {
  // Greedy acceptance needs argmax decoding, and drafting needs the prompt
  // fully consumed (prefill rows advance exactly one position per step).
  return config_.speculative && session.request.temperature <= 0.0 &&
         session.feed_index >= session.prompt_len();
}

bool Server::spec_advance(Session& session, SpecDecodeStats& pass_stats,
                          ThreadPool* pool) {
  const auto& config = model_.config();
  SessionState& state = *session.state;
  const std::int64_t pos0 = state.position;
  // One row is the pending feed; drafts fill whatever KV headroom remains
  // (the final emitted token is never fed, hence the -1).
  const std::int64_t k = std::min<std::int64_t>(
      config_.draft_k, session.capacity - pos0 - 1);
  std::size_t drafted = 0;
  if (k > 0) {
    spec_context_.assign(session.request.prompt.begin(),
                         session.request.prompt.end());
    spec_context_.insert(spec_context_.end(), session.emitted.begin(),
                         session.emitted.end());
    drafted = drafter_.draft(
        std::span<const TokenId>(spec_context_.data(), spec_context_.size()),
        static_cast<std::size_t>(k),
        std::span<TokenId>(spec_block_.data() + 1,
                           static_cast<std::size_t>(config_.draft_k)));
  }
  spec_block_[0] = session.pending;
  const std::size_t block_len = 1 + drafted;
  const std::span<float> rows(
      spec_logits_.data(),
      block_len * static_cast<std::size_t>(config.vocab_size));
  verify_step(model_, state, scratch_,
              std::span<const TokenId>(spec_block_.data(), block_len), rows,
              pool);

  const SpecWalkResult walk = spec_accept_walk(
      rows, config.vocab_size,
      std::span<const TokenId>(spec_block_.data() + 1, drafted),
      [&](TokenId t) {
        return t == CharTokenizer::kEos ||
               (session.request.stop_at_newline && t == newline_id_);
      },
      [&](TokenId t) {
        if (!emit_token(session, t)) return false;  // callback failed
        return static_cast<std::int64_t>(session.emitted.size()) <
               session.max_new;
      });
  state.truncate(pos0 + walk.consumed);
  ++pass_stats.verify_passes;
  pass_stats.drafted += static_cast<std::int64_t>(drafted);
  pass_stats.accepted += walk.accepted;
  pass_stats.emitted += walk.emitted;

  if (session.callback_failed) return true;
  if (walk.stopped) return true;
  if (static_cast<std::int64_t>(session.emitted.size()) >= session.max_new) {
    return true;  // budget spent; the last token is never fed back
  }
  session.pending = walk.last;
  return false;
}

void Server::finish_locked(std::unique_ptr<Session> session,
                           SessionStatus status) {
  SessionResult result;
  result.status = status;
  result.tokens = std::move(session->emitted);
  result.text = tokenizer().decode(result.tokens);
  result.error = std::move(session->error);
  result.prompt_tokens = session->prompt_len();
  result.cached_tokens = session->cached_tokens;
  // Release the KV bytes and prefix pins this session held. Resident
  // sessions are only ever finished by the driver thread (reap/merge), so
  // this Ref release never races the driver's unlocked cache_ inserts;
  // queued sessions — the only ones finished from client threads, by
  // cancel()/drain()/shed — hold no state and no pins.
  session->cache_ref.release();
  if (session->state != nullptr) {
    resident_kv_bytes_ -= session->state->kv_bytes();
  }
  switch (status) {
    case SessionStatus::kCompleted: ++stats_.completed; break;
    case SessionStatus::kCancelled: ++stats_.cancelled; break;
    case SessionStatus::kDeadlineExceeded: ++stats_.expired; break;
    case SessionStatus::kShedOverload: ++stats_.shed; break;
    case SessionStatus::kShuttingDown: ++stats_.shutdown_terminated; break;
    case SessionStatus::kFailed: ++stats_.failed; break;
  }
  results_.emplace(session->id, std::move(result));
  finished_cv_.notify_all();
}

bool Server::step() {
  try {
    CA_FAILPOINT("serve.step");
  } catch (const Error&) {
    // The site sits before any state mutation, so an injected step fault
    // is absorbed by simply retrying: nothing to roll back, determinism
    // untouched.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.step_faults;
    touch_progress_locked();
    return !active_.empty() || !waiting_.empty();
  }
  const auto& config = model_.config();
  std::vector<Session*> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reap_locked();
    admit_locked();
    if (active_.empty()) {
      touch_progress_locked();
      return !waiting_.empty();
    }
    const auto width = std::min<std::size_t>(
        static_cast<std::size_t>(config_.max_batch), active_.size());
    batch.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      batch.push_back(active_[i].get());
    }
  }
  const auto width = static_cast<std::int64_t>(batch.size());
  ThreadPool* pool =
      config_.pool != nullptr ? config_.pool : &global_thread_pool();

  // Partition: greedy sessions past prefill take one draft+verify pass
  // each (advancing up to draft_k + 1 tokens); everyone else — prefilling
  // rows and temperature-sampled sessions — advances one token through the
  // shared batched step.
  std::vector<std::size_t> plain_rows;
  std::vector<std::size_t> spec_rows;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    (speculative_eligible(*batch[i]) ? spec_rows : plain_rows).push_back(i);
  }

  std::vector<bool> done(batch.size(), false);
  if (!plain_rows.empty()) {
    std::vector<SessionState*> states;
    std::vector<TokenId> tokens;
    states.reserve(plain_rows.size());
    tokens.reserve(plain_rows.size());
    for (const std::size_t i : plain_rows) {
      Session* session = batch[i];
      states.push_back(session->state.get());
      tokens.push_back(session->feed_index < session->prompt_len()
                           ? session->request.prompt[static_cast<std::size_t>(
                                 session->feed_index)]
                           : session->pending);
    }
    const std::span<float> logits(
        logits_.data(),
        plain_rows.size() * static_cast<std::size_t>(config.vocab_size));
    batched_decode_step(
        model_, std::span<SessionState* const>(states.data(), states.size()),
        std::span<const TokenId>(tokens.data(), tokens.size()), scratch_,
        logits, pool);

    for (std::size_t r = 0; r < plain_rows.size(); ++r) {
      const std::size_t i = plain_rows[r];
      Session& session = *batch[i];
      if (session.feed_index < session.prompt_len()) {
        ++session.feed_index;
        if (session.feed_index < session.prompt_len()) {
          continue;  // still prefilling; this row's logits are discarded
        }
        // Prompt fully consumed: publish its KV for future prefix sharing.
        // Only ever sees accepted tokens — drafts are never fed before the
        // prompt completes, and the cache is not touched afterwards.
        if (config_.prefix_cache_bytes > 0 && !session.inserted) {
          cache_.insert(
              std::span<const TokenId>(session.request.prompt.data(),
                                       session.request.prompt.size()),
              *session.state);
          session.inserted = true;
        }
      }
      const std::span<const float> row(
          logits.data() + r * static_cast<std::size_t>(config.vocab_size),
          static_cast<std::size_t>(config.vocab_size));
      const TokenId next = sample_next(session, row);
      if (next == CharTokenizer::kEos ||
          (session.request.stop_at_newline && next == newline_id_)) {
        done[i] = true;
        continue;
      }
      if (!emit_token(session, next)) {
        done[i] = true;  // callback failed; terminalizes as kCancelled
        continue;
      }
      if (static_cast<std::int64_t>(session.emitted.size()) >=
          session.max_new) {
        done[i] = true;  // budget spent; the last token is never fed back
        continue;
      }
      session.pending = next;
    }
  }

  SpecDecodeStats pass_stats;
  for (const std::size_t i : spec_rows) {
    done[i] = spec_advance(*batch[i], pass_stats, pool);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.steps;
  // Plain rows advance one position each; a speculative pass keeps one row
  // per verify plus every accepted draft row.
  stats_.step_tokens += static_cast<std::int64_t>(plain_rows.size()) +
                        pass_stats.verify_passes + pass_stats.accepted;
  stats_.spec.merge(pass_stats);
  stats_.peak_batch = std::max(stats_.peak_batch, width);
  // Round-robin: surviving batch members rotate to the back so sessions
  // beyond max_batch get the next steps.
  std::vector<std::unique_ptr<Session>> stepped;
  stepped.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    stepped.push_back(std::move(active_[i]));
  }
  active_.erase(active_.begin(),
                active_.begin() + static_cast<std::ptrdiff_t>(batch.size()));
  for (std::size_t i = 0; i < stepped.size(); ++i) {
    if (!done[i]) {
      active_.push_back(std::move(stepped[i]));
      continue;
    }
    SessionStatus status = SessionStatus::kCompleted;
    if (stepped[i]->callback_failed) {
      status = SessionStatus::kCancelled;
      ++stats_.callback_faults;
    }
    finish_locked(std::move(stepped[i]), status);
  }
  // Snapshot cache stats after the finishes above so released pins show.
  stats_.cache = cache_.stats();
  touch_progress_locked();
  return !active_.empty() || !waiting_.empty();
}

void Server::run() {
  while (step()) {
  }
}

void Server::serve() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return draining_ || !waiting_.empty() || !active_.empty();
      });
      if (draining_ && waiting_.empty() && active_.empty()) return;
    }
    while (step()) {
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && waiting_.empty() && active_.empty()) return;
  }
}

bool Server::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !waiting_.empty() || !active_.empty();
}

bool Server::cancel(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_known_locked(id);
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if ((*it)->id != id) continue;
    // Queued: terminalize right here — no driver round trip needed, and
    // the driver never holds pointers into waiting_.
    auto session = std::move(*it);
    waiting_.erase(it);
    session->error = "cancelled by client";
    finish_locked(std::move(session), SessionStatus::kCancelled);
    return true;
  }
  for (const auto& session : active_) {
    if (session->id != id) continue;
    // Resident: flag only (the driver may be mid-decode on this session);
    // reap_locked() terminalizes it at the next step boundary — effective
    // within one step. The diagnostic is set there too: `error` belongs
    // to the driver while the session is resident.
    session->cancelled = true;
    return true;
  }
  return false;  // already terminal
}

void Server::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  // Queued sessions terminalize right here: only the driver ever holds
  // pointers into active_, never into waiting_, so flushing the queue from
  // a client thread is safe — and it delivers results even when no driver
  // is running. Residents keep decoding; run()/serve() return once they
  // terminalize.
  while (!waiting_.empty()) {
    auto session = std::move(waiting_.front());
    waiting_.erase(waiting_.begin());
    session->error = "server drained before the session was admitted";
    finish_locked(std::move(session), SessionStatus::kShuttingDown);
  }
  work_cv_.notify_all();
}

void Server::shutdown_now() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hard_stop_ = true;
  }
  drain();
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void Server::check_known_locked(SessionId id) const {
  if (id < 1 || id >= next_id_) {
    CA_THROW_AS(UnknownSessionError,
                "unknown session id " << id
                                      << " — submit() never issued it");
  }
}

SessionResult Server::wait_result(SessionId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  check_known_locked(id);
  finished_cv_.wait(lock, [&] { return results_.count(id) > 0; });
  return results_.at(id);
}

std::optional<SessionResult> Server::wait_result_for(SessionId id,
                                                     std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  check_known_locked(id);
  const auto ready = [&] { return results_.count(id) > 0; };
  if (timeout_ms <= 0) {
    if (!ready()) return std::nullopt;
  } else if (!finished_cv_.wait_for(
                 lock, std::chrono::milliseconds(timeout_ms), ready)) {
    return std::nullopt;
  }
  return results_.at(id);
}

void Server::touch_progress_locked() { last_progress_ms_ = now_ms(); }

void Server::start_watchdog(std::int64_t stall_ms,
                            std::function<void(std::int64_t)> on_stall) {
  CA_CHECK(stall_ms > 0, "watchdog stall_ms must be > 0, got " << stall_ms);
  stop_watchdog();
  std::lock_guard<std::mutex> watchdog_lock(watchdog_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_progress_ms_ = now_ms();
  }
  watchdog_stop_.store(false);
  // Poll in real time (the configured clock may be a test fake that only
  // moves when the test advances it); compare stalls in clock time.
  const auto poll = std::chrono::milliseconds(
      std::clamp<std::int64_t>(stall_ms / 4, 1, 100));
  watchdog_ = std::thread([this, stall_ms, poll,
                           on_stall = std::move(on_stall)] {
    while (!watchdog_stop_.load()) {
      std::this_thread::sleep_for(poll);
      std::int64_t stalled = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (waiting_.empty() && active_.empty()) {
          last_progress_ms_ = now_ms();  // idle is not a stall
          continue;
        }
        stalled = now_ms() - last_progress_ms_;
        if (stalled < stall_ms) continue;
        ++stats_.watchdog_alarms;
        last_progress_ms_ = now_ms();  // re-arm: one alarm per stall_ms
      }
      if (on_stall) {
        on_stall(stalled);
      } else {
        CA_LOG_WARN("serve watchdog: driver made no progress for "
                    << stalled << " ms with work pending");
      }
    }
  });
}

void Server::stop_watchdog() {
  std::lock_guard<std::mutex> watchdog_lock(watchdog_mutex_);
  watchdog_stop_.store(true);
  if (watchdog_.joinable()) watchdog_.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = stats_;
  out.waiting = static_cast<std::int64_t>(waiting_.size());
  out.resident = static_cast<std::int64_t>(active_.size());
  out.resident_kv_bytes = resident_kv_bytes_;
  return out;
}

}  // namespace chipalign
