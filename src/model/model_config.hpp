#pragma once
/// \file model_config.hpp
/// \brief Hyperparameters of the LLaMA-style decoder-only transformer.
///
/// The same config struct describes every model family in this repo (the
/// tiny analogues of LLaMA3-8B, Qwen1.5-14B, LLaMA2-70B). It round-trips
/// through JSON so checkpoints are self-describing.

#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace chipalign {

/// Architecture hyperparameters. Plain data; validate() checks coherence.
struct ModelConfig {
  std::string name = "tiny";  ///< family tag, e.g. "llama3-8b-analog"
  std::int64_t vocab_size = 0;
  std::int64_t d_model = 0;       ///< embedding width
  std::int64_t n_layers = 0;      ///< transformer blocks
  std::int64_t n_heads = 0;       ///< query heads
  std::int64_t n_kv_heads = 0;    ///< key/value heads (GQA when < n_heads)
  std::int64_t d_ff = 0;          ///< SwiGLU hidden width
  std::int64_t max_seq_len = 0;   ///< context length (RoPE table size)
  double rope_theta = 10000.0;    ///< RoPE base frequency
  double norm_eps = 1e-5;         ///< RMSNorm epsilon
  bool tied_embeddings = true;    ///< LM head shares the embedding matrix

  std::int64_t head_dim() const { return d_model / n_heads; }

  /// Throws Error when any field is incoherent (e.g. d_model % n_heads != 0).
  void validate() const;

  /// Approximate trainable parameter count implied by the architecture.
  std::int64_t parameter_count() const;

  Json to_json() const;
  static ModelConfig from_json(const Json& json);

  bool operator==(const ModelConfig& other) const = default;
};

}  // namespace chipalign
