#include "model/checkpoint.hpp"

#include <cmath>

#include "io/safetensors.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

const Tensor& Checkpoint::at(const std::string& name) const {
  const auto it = tensors_.find(name);
  CA_CHECK(it != tensors_.end(), "checkpoint has no tensor '" << name << "'");
  return it->second;
}

Tensor& Checkpoint::at(const std::string& name) {
  const auto it = tensors_.find(name);
  CA_CHECK(it != tensors_.end(), "checkpoint has no tensor '" << name << "'");
  return it->second;
}

void Checkpoint::put(const std::string& name, Tensor tensor) {
  tensors_[name] = std::move(tensor);
}

std::vector<std::string> Checkpoint::names() const {
  std::vector<std::string> out;
  out.reserve(tensors_.size());
  for (const auto& [name, tensor] : tensors_) out.push_back(name);
  return out;
}

std::int64_t Checkpoint::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& [name, tensor] : tensors_) total += tensor.numel();
  return total;
}

std::vector<TensorStats> Checkpoint::stats() const {
  std::vector<TensorStats> out;
  out.reserve(tensors_.size());
  for (const auto& [name, tensor] : tensors_) {
    TensorStats s;
    s.name = name;
    s.shape = tensor.shape();
    s.frobenius_norm = ops::frobenius_norm(tensor);
    double sum = 0.0;
    double abs_max = 0.0;
    for (float v : tensor.values()) {
      sum += v;
      abs_max = std::max(abs_max, std::abs(static_cast<double>(v)));
    }
    s.mean = tensor.numel() > 0 ? sum / static_cast<double>(tensor.numel())
        : 0.0;
    s.abs_max = abs_max;
    out.push_back(std::move(s));
  }
  return out;
}

bool Checkpoint::all_finite() const {
  for (const auto& [name, tensor] : tensors_) {
    if (!tensor.all_finite()) return false;
  }
  return true;
}

std::map<std::string,
    std::string> checkpoint_metadata(const ModelConfig& config) {
  std::map<std::string, std::string> metadata;
  metadata["chipalign.config"] = config.to_json().dump();
  metadata["format"] = "chipalign-checkpoint-v1";
  return metadata;
}

ModelConfig config_from_metadata(
    const std::map<std::string, std::string>& metadata,
    const std::string& origin) {
  const auto it = metadata.find("chipalign.config");
  CA_CHECK(it != metadata.end(),
           "'" << origin << "' lacks chipalign.config metadata");
  return ModelConfig::from_json(Json::parse(it->second));
}

void Checkpoint::save(const std::string& path, DType storage) const {
  save_safetensors(path, tensors_, storage, checkpoint_metadata(config_));
}

Checkpoint Checkpoint::load(const std::string& path) {
  SafetensorsFile file = load_safetensors(path);
  Checkpoint ckpt;
  ckpt.config_ = config_from_metadata(file.metadata, path);
  ckpt.tensors_ = std::move(file.tensors);
  return ckpt;
}

void check_mergeable(const Checkpoint& a, const Checkpoint& b) {
  CA_CHECK(a.tensors().size() == b.tensors().size(),
           "checkpoints have different tensor counts: "
               << a.tensors().size() << " vs " << b.tensors().size());
  auto it_a = a.tensors().begin();
  auto it_b = b.tensors().begin();
  for (; it_a != a.tensors().end(); ++it_a, ++it_b) {
    CA_CHECK(it_a->first == it_b->first,
             "tensor name mismatch: '" << it_a->first << "' vs '"
                                       << it_b->first << "'");
    CA_CHECK(it_a->second.same_shape(it_b->second),
             "tensor '" << it_a->first << "' shape mismatch: "
                        << shape_to_string(it_a->second.shape()) << " vs "
                        << shape_to_string(it_b->second.shape()));
  }
}

}  // namespace chipalign
