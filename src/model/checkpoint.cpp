#include "model/checkpoint.hpp"

#include <cmath>
#include <vector>

#include "io/safetensors.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

const char* const kQuantScaleSuffix = ".quant_scale";

const Tensor& Checkpoint::at(const std::string& name) const {
  const auto it = tensors_.find(name);
  CA_CHECK(it != tensors_.end(), "checkpoint has no tensor '" << name << "'");
  return it->second;
}

Tensor& Checkpoint::at(const std::string& name) {
  const auto it = tensors_.find(name);
  CA_CHECK(it != tensors_.end(), "checkpoint has no tensor '" << name << "'");
  return it->second;
}

void Checkpoint::put(const std::string& name, Tensor tensor) {
  tensors_[name] = std::move(tensor);
}

std::vector<std::string> Checkpoint::names() const {
  std::vector<std::string> out;
  out.reserve(tensors_.size());
  for (const auto& [name, tensor] : tensors_) out.push_back(name);
  return out;
}

std::int64_t Checkpoint::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& [name, tensor] : tensors_) total += tensor.numel();
  return total;
}

std::vector<TensorStats> Checkpoint::stats() const {
  std::vector<TensorStats> out;
  out.reserve(tensors_.size());
  for (const auto& [name, tensor] : tensors_) {
    TensorStats s;
    s.name = name;
    s.shape = tensor.shape();
    s.frobenius_norm = ops::frobenius_norm(tensor);
    double sum = 0.0;
    double abs_max = 0.0;
    for (float v : tensor.values()) {
      sum += v;
      abs_max = std::max(abs_max, std::abs(static_cast<double>(v)));
    }
    s.mean = tensor.numel() > 0 ? sum / static_cast<double>(tensor.numel())
        : 0.0;
    s.abs_max = abs_max;
    out.push_back(std::move(s));
  }
  return out;
}

bool Checkpoint::all_finite() const {
  for (const auto& [name, tensor] : tensors_) {
    if (!tensor.all_finite()) return false;
  }
  return true;
}

std::map<std::string,
    std::string> checkpoint_metadata(const ModelConfig& config) {
  std::map<std::string, std::string> metadata;
  metadata["chipalign.config"] = config.to_json().dump();
  metadata["format"] = "chipalign-checkpoint-v1";
  return metadata;
}

ModelConfig config_from_metadata(
    const std::map<std::string, std::string>& metadata,
    const std::string& origin) {
  const auto it = metadata.find("chipalign.config");
  CA_CHECK(it != metadata.end(),
           "'" << origin << "' lacks chipalign.config metadata");
  return ModelConfig::from_json(Json::parse(it->second));
}

void Checkpoint::save(const std::string& path, DType storage) const {
  if (storage != DType::kI8) {
    save_safetensors(path, tensors_, storage, checkpoint_metadata(config_));
    return;
  }
  // int8 storage: each rank-2 tensor ships its codes as I8 plus an F32
  // per-row scale companion "<name>.quant_scale"; other ranks (the tiny
  // rmsnorm vectors) stay F32. load() reconstructs code * scale[row].
  std::map<std::string, Tensor> out;
  std::map<std::string, DType> dtypes;
  for (const auto& [name, tensor] : tensors_) {
    if (tensor.rank() != 2) {
      out.emplace(name, tensor);
      dtypes.emplace(name, DType::kF32);
      continue;
    }
    const QuantTensor qt = quantize_tensor(tensor, DType::kI8);
    std::vector<float> codes(qt.q.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      codes[i] = static_cast<float>(qt.q[i]);
    }
    out.emplace(name, Tensor(tensor.shape(), std::move(codes)));
    dtypes.emplace(name, DType::kI8);
    const std::string scale_name = name + kQuantScaleSuffix;
    out.emplace(scale_name, Tensor({qt.rows}, qt.scales));
    dtypes.emplace(scale_name, DType::kF32);
  }
  save_safetensors_mixed(path, out, dtypes, checkpoint_metadata(config_));
}

Checkpoint Checkpoint::load(const std::string& path) {
  SafetensorsFile file = load_safetensors(path);
  Checkpoint ckpt;
  ckpt.config_ = config_from_metadata(file.metadata, path);

  // Reconstruct int8-quantized tensors: a "<name>.quant_scale" companion
  // marks a code tensor whose fp32 value is code * scale[row] (exactly the
  // dequantize_row arithmetic, so load(save(kI8)) equals
  // dequantize(quantize) bit-for-bit).
  std::vector<std::string> scale_names;
  for (const auto& [name, tensor] : file.tensors) {
    if (name.ends_with(kQuantScaleSuffix)) scale_names.push_back(name);
  }
  for (const std::string& scale_name : scale_names) {
    const std::string base =
        scale_name.substr(0, scale_name.size() -
                                 std::string(kQuantScaleSuffix).size());
    const auto it = file.tensors.find(base);
    CA_CHECK(it != file.tensors.end(),
             "'" << path << "' has companion '" << scale_name
                 << "' without tensor '" << base << "'");
    Tensor& codes = it->second;
    const Tensor& scales = file.tensors.at(scale_name);
    CA_CHECK(codes.rank() == 2 && scales.rank() == 1 &&
                 scales.dim(0) == codes.dim(0),
             "'" << path << "' tensor '" << base << "' ("
                 << shape_to_string(codes.shape())
                 << ") does not match its quant_scale ("
                 << shape_to_string(scales.shape()) << ")");
    const std::int64_t cols = codes.dim(1);
    for (std::int64_t r = 0; r < codes.dim(0); ++r) {
      const float scale = scales[r];
      float* row = codes.data() + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) row[c] *= scale;
    }
  }
  for (const std::string& scale_name : scale_names) {
    file.tensors.erase(scale_name);
  }
  ckpt.tensors_ = std::move(file.tensors);
  return ckpt;
}

void check_mergeable(const Checkpoint& a, const Checkpoint& b) {
  CA_CHECK(a.tensors().size() == b.tensors().size(),
           "checkpoints have different tensor counts: "
               << a.tensors().size() << " vs " << b.tensors().size());
  auto it_a = a.tensors().begin();
  auto it_b = b.tensors().begin();
  for (; it_a != a.tensors().end(); ++it_a, ++it_b) {
    CA_CHECK(it_a->first == it_b->first,
             "tensor name mismatch: '" << it_a->first << "' vs '"
                                       << it_b->first << "'");
    CA_CHECK(it_a->second.same_shape(it_b->second),
             "tensor '" << it_a->first << "' shape mismatch: "
                        << shape_to_string(it_a->second.shape()) << " vs "
                        << shape_to_string(it_b->second.shape()));
  }
}

}  // namespace chipalign
