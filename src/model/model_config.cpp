#include "model/model_config.hpp"

#include "util/error.hpp"

namespace chipalign {

void ModelConfig::validate() const {
  CA_CHECK(vocab_size > 0, "vocab_size must be positive");
  CA_CHECK(d_model > 0, "d_model must be positive");
  CA_CHECK(n_layers > 0, "n_layers must be positive");
  CA_CHECK(n_heads > 0, "n_heads must be positive");
  CA_CHECK(n_kv_heads > 0 && n_kv_heads <= n_heads,
           "n_kv_heads must be in [1, n_heads]");
  CA_CHECK(n_heads % n_kv_heads == 0,
           "n_heads must be divisible by n_kv_heads");
  CA_CHECK(d_model % n_heads == 0, "d_model must be divisible by n_heads");
  CA_CHECK(head_dim() % 2 == 0, "head_dim must be even for RoPE");
  CA_CHECK(d_ff > 0, "d_ff must be positive");
  CA_CHECK(max_seq_len > 0, "max_seq_len must be positive");
  CA_CHECK(rope_theta > 0.0, "rope_theta must be positive");
  CA_CHECK(norm_eps > 0.0, "norm_eps must be positive");
}

std::int64_t ModelConfig::parameter_count() const {
  const std::int64_t kv_dim = n_kv_heads * head_dim();
  const std::int64_t per_layer =
      d_model * d_model          // wq
      + d_model * kv_dim * 2     // wk, wv
      + d_model * d_model        // wo
      + d_model * d_ff * 3       // w_gate, w_up, w_down
      + d_model * 2;             // two RMSNorm gains
  std::int64_t total = vocab_size * d_model  // embedding
                       + n_layers * per_layer
                       + d_model;  // final norm
  if (!tied_embeddings) total += vocab_size * d_model;
  return total;
}

Json ModelConfig::to_json() const {
  Json j = Json::object();
  j.set("name", Json(name));
  j.set("vocab_size", Json(vocab_size));
  j.set("d_model", Json(d_model));
  j.set("n_layers", Json(n_layers));
  j.set("n_heads", Json(n_heads));
  j.set("n_kv_heads", Json(n_kv_heads));
  j.set("d_ff", Json(d_ff));
  j.set("max_seq_len", Json(max_seq_len));
  j.set("rope_theta", Json(rope_theta));
  j.set("norm_eps", Json(norm_eps));
  j.set("tied_embeddings", Json(tied_embeddings));
  return j;
}

ModelConfig ModelConfig::from_json(const Json& json) {
  ModelConfig config;
  config.name = json.at("name").as_string();
  config.vocab_size = json.at("vocab_size").as_int();
  config.d_model = json.at("d_model").as_int();
  config.n_layers = json.at("n_layers").as_int();
  config.n_heads = json.at("n_heads").as_int();
  config.n_kv_heads = json.at("n_kv_heads").as_int();
  config.d_ff = json.at("d_ff").as_int();
  config.max_seq_len = json.at("max_seq_len").as_int();
  config.rope_theta = json.at("rope_theta").as_double();
  config.norm_eps = json.at("norm_eps").as_double();
  config.tied_embeddings = json.at("tied_embeddings").as_bool();
  config.validate();
  return config;
}

}  // namespace chipalign
