#pragma once
/// \file checkpoint.hpp
/// \brief Named-tensor checkpoint: the unit the merge library operates on.
///
/// A Checkpoint is an architecture config plus a name->Tensor map, saved and
/// loaded as a safetensors file whose __metadata__ carries the config JSON.
/// Merging requires two checkpoints to be "conformable": identical tensor
/// names and shapes (the paper's same-architecture assumption, §III).

#include <map>
#include <string>
#include <vector>

#include "model/model_config.hpp"
#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// Suffix of the F32 per-row-scale companion tensor an int8 checkpoint
/// stores next to each I8 code tensor (e.g. "...q_proj.weight.quant_scale").
extern const char* const kQuantScaleSuffix;

/// Summary statistics of one tensor within a checkpoint.
struct TensorStats {
  std::string name;
  Shape shape;
  double frobenius_norm = 0.0;
  double mean = 0.0;
  double abs_max = 0.0;
};

/// Architecture config plus named weights.
class Checkpoint {
 public:
  Checkpoint() = default;
  Checkpoint(ModelConfig config, std::map<std::string, Tensor> tensors)
      : config_(std::move(config)), tensors_(std::move(tensors)) {}

  const ModelConfig& config() const { return config_; }
  ModelConfig& config() { return config_; }

  const std::map<std::string, Tensor>& tensors() const { return tensors_; }
  std::map<std::string, Tensor>& tensors() { return tensors_; }

  bool has(const std::string& name) const { return tensors_.count(name) > 0; }

  /// Tensor lookup; throws if missing.
  const Tensor& at(const std::string& name) const;
  Tensor& at(const std::string& name);

  /// Inserts or replaces a tensor.
  void put(const std::string& name, Tensor tensor);

  /// Sorted tensor names.
  std::vector<std::string> names() const;

  /// Total number of scalar parameters.
  std::int64_t parameter_count() const;

  /// Per-tensor statistics, sorted by name (used by the geometry ablation).
  std::vector<TensorStats> stats() const;

  /// True if every parameter of every tensor is finite.
  bool all_finite() const;

  /// Saves to a safetensors file with the config embedded as metadata.
  /// kI8 stores rank-2 tensors as int8 codes plus F32 ".quant_scale"
  /// per-row companions (other ranks stay F32); the other dtypes store
  /// every tensor uniformly.
  void save(const std::string& path, DType storage = DType::kF32) const;

  /// Loads a checkpoint; throws if the file lacks config metadata. Int8
  /// code tensors are reconstructed to fp32 (code * scale[row]) and their
  /// companions dropped, so callers always see plain named weights.
  static Checkpoint load(const std::string& path);

 private:
  ModelConfig config_;
  std::map<std::string, Tensor> tensors_;
};

/// Throws Error unless a and b have identical tensor names and shapes
/// (configs may differ in the free-form name field only).
void check_mergeable(const Checkpoint& a, const Checkpoint& b);

/// Builds the safetensors metadata map a checkpoint embeds on save: the
/// config JSON under "chipalign.config" plus the format tag. Shared by
/// Checkpoint::save and the streaming shard writer so that both emit
/// identical metadata (a prerequisite for byte-identical outputs).
std::map<std::string,
    std::string> checkpoint_metadata(const ModelConfig& config);

/// Parses the ModelConfig out of checkpoint metadata; throws Error when the
/// "chipalign.config" key is missing. `origin` names the source (a path) for
/// error messages.
ModelConfig config_from_metadata(
    const std::map<std::string, std::string>& metadata,
    const std::string& origin);

}  // namespace chipalign
