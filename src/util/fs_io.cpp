#include "util/fs_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace chipalign::fs_io {

namespace {

/// open(2) retrying EINTR; throws on failure.
int open_checked(const std::string& path, int flags, mode_t mode = 0644) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  CA_CHECK(fd >= 0, "cannot open '" << path << "': " << std::strerror(errno));
  return fd;
}

/// Full write(2) loop: retries EINTR and short writes until every byte of
/// `data` is down (or a real error surfaces).
void write_all(int fd, const std::string& path, std::string_view data) {
  const char* cursor = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ::ssize_t wrote = ::write(fd, cursor, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      CA_THROW("write failed for '" << path << "': "
                                    << std::strerror(errno));
    }
    cursor += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
}

void fsync_checked(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  CA_CHECK(rc == 0, "fsync failed for '" << path << "': "
                                         << std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  return dir.empty() ? std::string(".") : dir;
}

}  // namespace

std::string temp_path_for(const std::string& path) { return path + ".tmp"; }

void fsync_path(const std::string& path) {
  const int fd = open_checked(path, O_RDONLY);
  CA_FAILPOINT("fsio.fsync");
  try {
    fsync_checked(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void fsync_dir(const std::string& dir) {
  const int fd = open_checked(dir, O_RDONLY | O_DIRECTORY);
  CA_FAILPOINT("fsio.dirsync");
  try {
    fsync_checked(fd, dir);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void atomic_write_file(const std::string& path, std::string_view data) {
  const std::string tmp = temp_path_for(path);
  const int fd = open_checked(tmp, O_WRONLY | O_CREAT | O_TRUNC);
  try {
    CA_FAILPOINT("fsio.write");
    write_all(fd, tmp, data);
    fsync_checked(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  try {
    commit_file(tmp, path);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
}

void commit_file(const std::string& tmp, const std::string& path) {
  fsync_path(tmp);
  CA_FAILPOINT("fsio.rename");
  CA_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "rename '" << tmp << "' -> '" << path
                      << "' failed: " << std::strerror(errno));
  fsync_dir(parent_dir(path));
}

AppendFile::AppendFile(const std::string& path)
    : fd_(open_checked(path, O_WRONLY | O_CREAT | O_TRUNC | O_APPEND)),
      path_(path) {}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() { close(); }

void AppendFile::append(std::string_view data) {
  CA_CHECK(is_open(), "append to a closed file");
  write_all(fd_, path_, data);
}

void AppendFile::sync() {
  CA_CHECK(is_open(), "sync of a closed file");
  fsync_checked(fd_, path_);
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace chipalign::fs_io
