#include "util/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace chipalign::failpoint {

namespace {

/// The complete site vocabulary. Each name is compiled into exactly one
/// call site; the soak test arms `<site>=abort` for each in turn. Keep
/// sorted and keep DESIGN.md §4f's table in sync.
const std::vector<std::string> kSites = {
    "fsio.dirsync",     // fs_io: directory fsync after a rename
    "fsio.fsync",       // fs_io: file fsync before a rename
    "fsio.rename",      // fs_io: rename of temp file onto its target
    "fsio.write",       // fs_io: payload write into the temp file
    "index.save",       // shard_layout: manifest serialization entry
    "journal.append",   // streaming_merge: between entry body and newline
    "journal.sync",     // streaming_merge: journal fsync after an append
    "ragindex.read",    // index_store: buffer site on loaded index bytes
    "ragindex.save",    // index_store: retrieval-index save entry
    "safetensors.save", // safetensors: single-file save entry
    "serve.admit",      // serve: admission of a queued session to residency
    "serve.callback",   // serve: before each streaming on_token callback
    "serve.prefix_acquire", // serve: prefix-cache acquire during admission
    "serve.step",       // serve: top of Server::step(), before any mutation
    "shard.create",     // shard_writer: shard file creation / presizing
    "shard.fsync",      // shard_writer: per-shard fsync in finish()
    "shard.write",      // shard_writer: tensor write at its plan offset
    "source.open",      // tensor_source: opening a shard for reading
    "source.read",      // tensor_source: buffer site on freshly read bytes
};

struct ArmedSite {
  Spec spec;
  std::uint64_t hits = 0;   ///< evaluations (skipped + fired)
  std::uint64_t fired = 0;  ///< injections actually performed
  bool exhausted() const {
    return spec.count >= 0 &&
           fired >= static_cast<std::uint64_t>(spec.count);
  }
};

std::mutex g_mutex;
std::map<std::string, ArmedSite> g_armed_sites;
/// Total evaluations per site since the registry was first armed; used by
/// hit_count() so tests can assert "this site is actually on the path".
std::map<std::string, std::uint64_t> g_hit_counts;

bool is_known_site(const std::string& site) {
  return std::binary_search(kSites.begin(), kSites.end(), site);
}

const char* action_name(Action action) {
  switch (action) {
    case Action::kError: return "error";
    case Action::kTransient: return "transient";
    case Action::kEnospc: return "enospc";
    case Action::kAbort: return "abort";
    case Action::kDelay: return "delay";
    case Action::kBitflip: return "bitflip";
    case Action::kShortIo: return "short";
  }
  return "?";
}

/// Parses one `action[:arg][@skip][xCOUNT]` spec body.
Spec parse_spec(const std::string& site, std::string text) {
  Spec spec;
  const auto take_int = [&](char marker) -> int {
    const std::size_t pos = text.rfind(marker);
    if (pos == std::string::npos) return -1;
    const std::string digits = text.substr(pos + 1);
    CA_CHECK(!digits.empty() &&
                 digits.find_first_not_of("0123456789") == std::string::npos,
             "failpoint '" << site << "': '" << marker << "' needs a number, "
                           << "got '" << digits << "'");
    text = text.substr(0, pos);
    return std::stoi(digits);
  };
  // Suffixes first (rightmost markers), so `delay:50@1x2` parses.
  const int count = take_int('x');
  if (count >= 0) spec.count = count;
  const int skip = take_int('@');
  if (skip >= 0) spec.skip = skip;
  const int arg = take_int(':');
  if (arg >= 0) spec.arg = arg;

  if (text == "error") {
    spec.action = Action::kError;
  } else if (text == "transient") {
    spec.action = Action::kTransient;
  } else if (text == "enospc") {
    spec.action = Action::kEnospc;
  } else if (text == "abort") {
    spec.action = Action::kAbort;
  } else if (text == "delay") {
    spec.action = Action::kDelay;
  } else if (text == "bitflip") {
    spec.action = Action::kBitflip;
  } else if (text == "short") {
    spec.action = Action::kShortIo;
  } else {
    CA_THROW("failpoint '" << site << "': unknown action '" << text
                           << "' (error|transient|enospc|abort|delay|"
                              "bitflip|short)");
  }
  return spec;
}

/// Decides what (if anything) to inject for this evaluation. Returns the
/// action to perform, or no value to pass through. Runs under g_mutex;
/// the injection itself happens outside the lock.
struct Injection {
  bool fire = false;
  Spec spec;
};

Injection evaluate(const char* site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  ++g_hit_counts[site];
  const auto it = g_armed_sites.find(site);
  Injection injection;
  if (it == g_armed_sites.end()) return injection;
  ArmedSite& armed = it->second;
  ++armed.hits;
  if (armed.hits <= static_cast<std::uint64_t>(armed.spec.skip)) {
    return injection;
  }
  if (armed.exhausted()) return injection;
  ++armed.fired;
  injection.fire = true;
  injection.spec = armed.spec;
  return injection;
}

[[noreturn]] void inject_throw(const char* site, const Spec& spec) {
  switch (spec.action) {
    case Action::kTransient:
      CA_THROW_AS(TransientIoError,
                  "failpoint '" << site << "' injected a transient I/O "
                                   "failure");
    case Action::kEnospc:
      CA_THROW("failpoint '" << site
                             << "' injected ENOSPC (no space left on device)");
    default:
      CA_THROW("failpoint '" << site << "' injected an error");
  }
}

}  // namespace

const std::vector<std::string>& all_sites() { return kSites; }

void arm(const std::string& site, const Spec& spec) {
  CA_CHECK(is_known_site(site),
           "unknown failpoint '" << site << "' (see failpoint::all_sites())");
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_sites[site] = ArmedSite{spec};
  detail::g_armed.store(static_cast<int>(g_armed_sites.size()),
                        std::memory_order_relaxed);
  CA_LOG_DEBUG("failpoint armed: " << site << "=" << action_name(spec.action)
                                   << " skip=" << spec.skip
                                   << " count=" << spec.count);
}

void arm_from_text(const std::string& text) {
  for (const std::string& raw : split(text, ';')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    CA_CHECK(eq != std::string::npos && eq > 0,
             "failpoint entry '" << entry << "' is not site=action[...]");
    const std::string site = trim(entry.substr(0, eq));
    arm(site, parse_spec(site, trim(entry.substr(eq + 1))));
  }
}

void arm_from_env() {
  const char* env = std::getenv("CHIPALIGN_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  arm_from_text(env);
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_sites.erase(site);
  detail::g_armed.store(static_cast<int>(g_armed_sites.size()),
                        std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_sites.clear();
  detail::g_armed.store(0, std::memory_order_relaxed);
}

std::uint64_t hit_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_hit_counts.find(site);
  return it != g_hit_counts.end() ? it->second : 0;
}

namespace detail {

std::atomic<int> g_armed{0};

void hit(const char* site) {
  const Injection injection = evaluate(site);
  if (!injection.fire) return;
  switch (injection.spec.action) {
    case Action::kAbort:
      // Simulated SIGKILL: no destructors, no stream flushes, no atexit.
      std::_Exit(kAbortExitCode);
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injection.spec.arg));
      return;
    case Action::kBitflip:
    case Action::kShortIo:
      CA_THROW("failpoint '" << site << "': "
                             << action_name(injection.spec.action)
                             << " applies only to buffer sites");
    default:
      inject_throw(site, injection.spec);
  }
}

std::size_t on_io(const char* site, void* data, std::size_t size) {
  const Injection injection = evaluate(site);
  if (!injection.fire) return size;
  switch (injection.spec.action) {
    case Action::kAbort:
      std::_Exit(kAbortExitCode);
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injection.spec.arg));
      return size;
    case Action::kBitflip: {
      if (size > 0 && data != nullptr) {
        static_cast<std::uint8_t*>(data)[size / 2] ^= 0x10;
      }
      return size;
    }
    case Action::kShortIo:
      return std::min(size, static_cast<std::size_t>(
                                std::max(injection.spec.arg, 0)));
    default:
      inject_throw(site, injection.spec);
  }
}

}  // namespace detail

}  // namespace chipalign::failpoint
