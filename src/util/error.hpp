#pragma once
/// \file error.hpp
/// \brief Error type and checking macros used across the ChipAlign library.
///
/// All invariant violations and recoverable failures in the library throw
/// chipalign::Error, which carries the source location of the failing check.

#include <sstream>
#include <stdexcept>
#include <string>

namespace chipalign {

/// Exception thrown by all ChipAlign components on contract violations,
/// malformed inputs, or I/O failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An I/O failure worth retrying: EINTR, a short read, or a checksum
/// mismatch on a re-readable medium. The streaming merge's RetryPolicy
/// re-reads (and re-verifies) on these; everything else fails fast.
class TransientIoError : public Error {
 public:
  explicit TransientIoError(const std::string& what) : Error(what) {}
};

/// A transient failure that survived every RetryPolicy attempt. Callers
/// (merge_cli) map this to its own exit code so supervisors can tell
/// "retry budget too small / medium flaky" from a permanent failure.
class RetriesExhaustedError : public Error {
 public:
  explicit RetriesExhaustedError(const std::string& what) : Error(what) {}
};

// ---- Serving-path taxonomy (src/serve) -------------------------------------
//
// submit() rejections are typed so a front end can map each to the right
// client response (429 / 400 / 503) without string-matching, and so load
// shedding is always an *explicit* outcome — a request is either accepted
// (and later delivers a terminal SessionResult) or its submit() throws one
// of these; it is never silently dropped.

/// Base class for requests the serving engine refused to accept.
class RejectedError : public Error {
 public:
  explicit RejectedError(const std::string& what) : Error(what) {}
};

/// The bounded admission queue is full (ServeConfig::max_queue) and the
/// shed-oldest policy is off: backpressure, try again later (HTTP 429).
class QueueFullError : public RejectedError {
 public:
  explicit QueueFullError(const std::string& what) : RejectedError(what) {}
};

/// The request can never be served: empty/over-context prompt,
/// out-of-vocab tokens, non-positive budget, or a KV footprint no
/// admission order could ever fit (HTTP 400).
class UnservableError : public RejectedError {
 public:
  explicit UnservableError(const std::string& what) : RejectedError(what) {}
};

/// The server is draining: admission is closed for good (HTTP 503).
class ShuttingDownError : public RejectedError {
 public:
  explicit ShuttingDownError(const std::string& what) : RejectedError(what) {}
};

/// wait_result()/cancel() addressed a SessionId submit() never issued —
/// fail fast instead of blocking forever on a result that cannot arrive.
class UnknownSessionError : public Error {
 public:
  explicit UnknownSessionError(const std::string& what) : Error(what) {}
};

namespace detail {
/// Appends the source location to a message ("msg [file:line]").
std::string locate(const char* file, int line, const std::string& msg);
/// Builds the final exception message including source location.
[[noreturn]] void throw_error(const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace chipalign

/// Throws chipalign::Error with a streamed message, e.g.
///   CA_THROW("bad rank " << rank);
#define CA_THROW(msg_stream)                                          \
  do {                                                                \
    std::ostringstream ca_throw_oss_;                                 \
    ca_throw_oss_ << msg_stream; /* NOLINT */                         \
    ::chipalign::detail::throw_error(__FILE__, __LINE__,              \
                                     ca_throw_oss_.str());            \
  } while (false)

/// Checks a condition; throws chipalign::Error with the streamed message on
/// failure. Used for argument validation and internal invariants alike —
/// the library is small enough that we keep checks on in release builds.
#define CA_CHECK(cond, msg_stream)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      CA_THROW("check failed: " #cond " — " << msg_stream);           \
    }                                                                 \
  } while (false)

/// Throws a specific Error subclass (TransientIoError, ...) with a streamed
/// message and source location, e.g.
///   CA_THROW_AS(TransientIoError, "short read of '" << path << "'");
#define CA_THROW_AS(error_type, msg_stream)                           \
  do {                                                                \
    std::ostringstream ca_throw_oss_;                                 \
    ca_throw_oss_ << msg_stream; /* NOLINT */                         \
    throw error_type(::chipalign::detail::locate(__FILE__, __LINE__,  \
                                                 ca_throw_oss_.str())); \
  } while (false)
