#pragma once
/// \file rng.hpp
/// \brief Deterministic random number generation for reproducible experiments.
///
/// Every stochastic component in the library (weight init, data generation,
/// DELLA/DARE drop masks) takes an explicit Rng so that experiments are
/// bit-reproducible across runs. The generator is xoshiro256**, seeded via
/// splitmix64 as recommended by its authors.

#include <cstdint>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace chipalign {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    CA_CHECK(n > 0, "uniform_index requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    std::uint64_t r = next_u64();
    while (r < threshold) r = next_u64();
    return r % n;
  }

  /// Standard normal via Box–Muller.
  double gaussian() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return radius * std::cos(kTwoPi * u2);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Picks one element uniformly; requires non-empty input.
  template <typename T>
  const T& pick(const std::vector<T>& values) {
    CA_CHECK(!values.empty(), "pick from empty vector");
    return values[static_cast<std::size_t>(uniform_index(values.size()))];
  }

  /// Derives an independent child generator (for per-tensor streams).
  Rng split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace chipalign
