#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size thread pool with a parallel_for helper.
///
/// The merge library fans per-tensor work across the pool; on single-core
/// machines the pool degrades gracefully to inline execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace chipalign {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions thrown
/// by tasks propagate out of wait_all()/parallel_for (first one wins).
class ThreadPool {
 public:
  /// \param num_threads 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished; rethrows the first task
  /// exception if any occurred since the last wait.
  void wait_all();

  /// Runs fn(i) for i in [0, count) across the pool and waits. With a pool of
  /// size 1 the work runs inline on the calling pattern (still via workers).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Returns the process-wide shared pool (sized to hardware concurrency).
ThreadPool& global_thread_pool();

}  // namespace chipalign
