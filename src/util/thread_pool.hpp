#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size thread pool with per-batch completion tracking.
///
/// The merge library fans per-tensor work across the pool; the kernel layer
/// fans row blocks of large matmuls. Completion and error state live in a
/// per-caller Batch token, so concurrent callers never consume each other's
/// completion signals or exceptions, and a parallel_for issued from inside a
/// worker task runs inline instead of deadlocking on the pool's own queue.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace chipalign {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions thrown
/// by tasks are captured in the submitting Batch and rethrown from its wait()
/// (first one wins, per batch).
class ThreadPool {
 public:
  /// Completion token for one group of submitted tasks. Each caller owns its
  /// own Batch, which makes submit/wait safe for any number of concurrent
  /// callers on the same pool. The Batch must outlive its tasks: call wait()
  /// before destroying it.
  class Batch {
   public:
    Batch() = default;
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    /// Blocks until every task submitted against this batch has finished;
    /// rethrows the first task exception if any occurred.
    void wait();

    /// Marks the batch cancelled: tasks submitted against it that have not
    /// started yet are skipped (their completion is still signalled, so
    /// wait() does not hang). Tasks already running are not interrupted.
    /// Used by the streaming-merge pipeline to cut queued work short after
    /// the first stage failure, and by the serving engine when a request
    /// is cancelled mid-flight.
    ///
    /// Ordering: the flag itself is advisory — task *visibility* rides the
    /// pool's queue mutex, which already sequences submit() against the
    /// worker's dequeue, so relaxed ordering could never lose or duplicate
    /// a task. The release store / acquire load pair exists for the data
    /// *around* the flag: a worker that observes cancelled() == true is
    /// guaranteed to also observe every write the cancelling thread made
    /// before cancel() (e.g. the failure state that motivated it), so skip
    /// decisions never act on a half-visible cause. On x86 this costs
    /// nothing over relaxed; on ARM it is a cheap ld.acq/st.rel.
    void cancel() { cancelled_.store(true, std::memory_order_release); }

    /// True once cancel() has been called.
    bool cancelled() const {
      return cancelled_.load(std::memory_order_acquire);
    }

   private:
    friend class ThreadPool;
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;
    std::exception_ptr first_error_;
    std::atomic<bool> cancelled_{false};
  };

  /// \param num_threads 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; its completion and any exception are recorded in
  /// `batch`. The caller must keep `batch` alive until batch.wait() returns.
  void submit(Batch& batch, std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool and waits. Runs inline
  /// (on the calling thread, in index order) when the pool has one worker,
  /// count == 1, or the caller is itself a pool worker — nesting therefore
  /// cannot deadlock.
  ///
  /// Dispatch is work-sharing: at most one helper task is enqueued per
  /// worker and the calling thread participates, with helpers and caller
  /// pulling indices from a shared atomic counter. Compared with one queued
  /// task per index this removes the per-index std::function allocation,
  /// queue-mutex round trip and condition-variable notify — the wake-up
  /// overhead that made sub-millisecond matvec dispatch lose to serial —
  /// and the caller's share of indices starts with zero wake-up latency.
  /// Every index still runs exactly once (on some thread), so callers that
  /// write disjoint slots per index stay bitwise deterministic at any pool
  /// size. Inline exceptions propagate immediately; pooled exceptions
  /// rethrow from the wait (first one wins); a thread whose fn throws stops
  /// pulling further indices while the remaining threads finish the range.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is a worker of *any* ThreadPool. Used to
  /// run nested parallel work inline.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  bool stopping_ = false;
};

/// Returns the process-wide shared pool (sized to hardware concurrency).
ThreadPool& global_thread_pool();

}  // namespace chipalign
