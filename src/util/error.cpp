#include "util/error.hpp"

namespace chipalign::detail {

std::string locate(const char* file, int line, const std::string& msg) {
  std::ostringstream oss;
  oss << msg << " [" << file << ":" << line << "]";
  return oss.str();
}

void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(locate(file, line, msg));
}

}  // namespace chipalign::detail
