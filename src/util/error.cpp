#include "util/error.hpp"

namespace chipalign::detail {

void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream oss;
  oss << msg << " [" << file << ":" << line << "]";
  throw Error(oss.str());
}

}  // namespace chipalign::detail
