#pragma once
/// \file hash.hpp
/// \brief Fast non-cryptographic hashing (XXH64) for checksums.
///
/// The streaming merge engine records a per-tensor checksum in the output
/// shard manifest so that corrupted or truncated shards are detected on
/// verify/resume. XXH64 is the de-facto checkpoint checksum in LLM tooling
/// (fast enough to run inline with disk writes); this is a from-scratch
/// implementation of the published algorithm, bit-compatible with the
/// reference.

#include <cstddef>
#include <cstdint>
#include <string>

namespace chipalign {

/// XXH64 of a byte buffer with the given seed (default 0, as in the
/// reference tooling).
std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed = 0);

/// Convenience overload for strings.
std::uint64_t xxh64(const std::string& text, std::uint64_t seed = 0);

/// Incremental XXH64 for data that arrives in chunks (e.g. hashing a plan
/// fingerprint from heterogeneous fields). Not streaming-block-exact with
/// the one-shot API unless fed identical bytes.
class Xxh64Stream {
 public:
  explicit Xxh64Stream(std::uint64_t seed = 0) : seed_(seed) {}

  /// Appends raw bytes to the hashed stream.
  void update(const void* data, std::size_t len);
  void update(const std::string& text) { update(text.data(), text.size()); }
  /// Appends an integer's little-endian bytes (for struct-ish fingerprints).
  void update_u64(std::uint64_t value);

  /// Digest of everything appended so far.
  std::uint64_t digest() const;

 private:
  std::uint64_t seed_ = 0;
  std::string buffer_;  // simple accumulate-then-hash; inputs here are small
};

/// Formats a 64-bit hash as a fixed-width lowercase hex string.
std::string hash_to_hex(std::uint64_t hash);

/// Parses a hash_to_hex()-formatted string; throws Error on malformed input.
std::uint64_t hash_from_hex(const std::string& hex);

}  // namespace chipalign
