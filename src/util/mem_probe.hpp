#pragma once
/// \file mem_probe.hpp
/// \brief Process memory probes (current and peak RSS).
///
/// Backs the streaming-merge acceptance check "peak RSS stays under the
/// in-flight budget plus a constant": benches sample VmHWM/VmRSS from
/// /proc/self/status on Linux. On platforms without procfs the probes
/// return 0 and callers degrade to reporting "unavailable".

#include <cstdint>
#include <string>

namespace chipalign {

/// Peak resident set size (high-water mark) of this process in bytes.
/// Monotonic over the process lifetime. Returns 0 when unavailable.
std::uint64_t peak_rss_bytes();

/// Current resident set size of this process in bytes. Returns 0 when
/// unavailable.
std::uint64_t current_rss_bytes();

/// Formats a byte count as a human-readable "123.4 MB" style string.
std::string format_bytes(std::uint64_t bytes);

}  // namespace chipalign
