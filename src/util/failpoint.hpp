#pragma once
/// \file failpoint.hpp
/// \brief Deterministic fault injection at named sites.
///
/// A failpoint is a named hook compiled into the persistence path (shard
/// reads and writes, journal appends, fsyncs, manifest renames) and the
/// serving hot path (`serve.*`: admission, per-step entry, prefix-cache
/// acquire, streaming callbacks). Disarmed —
/// the production state — a site costs one relaxed atomic load. Armed, via
/// the API or the `CHIPALIGN_FAILPOINTS` environment variable, a site can
/// inject:
///
///   * `error`      — throw a permanent chipalign::Error
///   * `transient`  — throw chipalign::TransientIoError (retryable)
///   * `enospc`     — throw an Error phrased as a no-space failure
///   * `abort`      — `_Exit(kAbortExitCode)`: no destructors, no flushes —
///                    a deterministic stand-in for SIGKILL / power loss
///   * `delay:MS`   — sleep MS milliseconds, then continue
///   * `bitflip`    — flip one bit of the I/O buffer (buffer sites only)
///   * `short:N`    — truncate the I/O to N bytes (buffer sites only)
///
/// `CHIPALIGN_FAILPOINTS` holds `;`-separated entries of the form
/// `site=action[:arg][@skip][xCOUNT]`: skip the first `skip` hits, then
/// fire `COUNT` times (default: every hit). Example — flip a bit in the
/// third source read, twice: `source.read=bitflip@2x2`.
///
/// The site-name vocabulary is fixed at compile time (all_sites()), so the
/// crash-recovery soak test can enumerate every registered site and kill a
/// merge at each in turn. arm() rejects unknown names.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace chipalign::failpoint {

/// Exit code of the `abort` action, distinguishable from every normal exit
/// path so a supervising test can assert the simulated kill happened.
inline constexpr int kAbortExitCode = 87;

/// What an armed site injects.
enum class Action {
  kError,      ///< throw chipalign::Error (permanent failure)
  kTransient,  ///< throw chipalign::TransientIoError (retryable)
  kEnospc,     ///< throw Error phrased as an out-of-space failure
  kAbort,      ///< _Exit(kAbortExitCode): simulated SIGKILL
  kDelay,      ///< sleep `arg` milliseconds, then continue
  kBitflip,    ///< flip one bit in the I/O buffer (buffer sites only)
  kShortIo,    ///< truncate the I/O to `arg` bytes (buffer sites only)
};

/// One armed failpoint: fires `count` times after skipping `skip` hits.
struct Spec {
  Action action = Action::kError;
  int arg = 0;     ///< delay ms (kDelay) or byte cap (kShortIo)
  int skip = 0;    ///< hits to pass through before firing
  int count = -1;  ///< firings before auto-disarm; -1 = unlimited
};

/// Every compiled-in site name, sorted — the enumeration surface for the
/// kill-at-every-failpoint soak.
const std::vector<std::string>& all_sites();

/// Arms one site. Throws Error for names outside all_sites().
void arm(const std::string& site, const Spec& spec);

/// Parses and arms `site=action[:arg][@skip][xCOUNT];...` (the
/// CHIPALIGN_FAILPOINTS grammar). Throws Error on malformed text.
void arm_from_text(const std::string& text);

/// Arms from the CHIPALIGN_FAILPOINTS environment variable; no-op when it
/// is unset or empty. Entry points (merge_cli, benches) call this once.
void arm_from_env();

void disarm(const std::string& site);
void disarm_all();

/// Times the site was evaluated while anything was armed (skip + fired);
/// 0 when the registry has never been armed — the zero-cost-disarmed check.
std::uint64_t hit_count(const std::string& site);

namespace detail {
extern std::atomic<int> g_armed;  ///< number of currently armed sites
void hit(const char* site);
std::size_t on_io(const char* site, void* data, std::size_t size);
}  // namespace detail

/// Evaluates a buffer site guarding a read/write of `size` bytes at `data`:
/// may flip a bit, return a truncated size, throw, delay, or abort. Returns
/// `size` unchanged when disarmed (one relaxed load).
inline std::size_t eval_io(const char* site, void* data, std::size_t size) {
  if (detail::g_armed.load(std::memory_order_relaxed) > 0) {
    return detail::on_io(site, data, size);
  }
  return size;
}

}  // namespace chipalign::failpoint

/// Evaluates a non-buffer failpoint site: may throw, delay, or abort per
/// the armed spec; a single relaxed atomic load when disarmed.
#define CA_FAILPOINT(site)                                              \
  do {                                                                  \
    if (::chipalign::failpoint::detail::g_armed.load(                   \
            std::memory_order_relaxed) > 0) {                           \
      ::chipalign::failpoint::detail::hit(site);                        \
    }                                                                   \
  } while (false)
