#include "util/string_utils.hpp"

#include <cctype>

namespace chipalign {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c =
      static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c =
      static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end
         && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin
         && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0,
                                                     prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::vector<std::string> word_tokens(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::size_t count_words(std::string_view text) {
  return word_tokens(text).size();
}

}  // namespace chipalign
