#pragma once
/// \file fs_io.hpp
/// \brief Durable, crash-safe file I/O primitives (POSIX).
///
/// The persistence path writes three kinds of files, each with a different
/// durability need, and this header covers all of them:
///
///   * atomic_write_file() — whole-file replace for small metadata
///     (`index.json`): write a temp file in the target's directory, flush,
///     fsync, rename over the target, fsync the directory. A crash at any
///     point leaves either the old complete file or the new complete file,
///     never a torn mix.
///   * commit_file() — the same fsync → rename → dir-fsync tail for
///     writers that stream a large payload into a temp file themselves
///     (`save_safetensors`).
///   * AppendFile — an fd-backed append-only file with explicit sync(),
///     for the merge journal: an append is a single write() so a crash
///     tears at most the final entry, and sync() makes committed entries
///     survive power loss.
///
/// All helpers retry EINTR and throw chipalign::Error on real failures.
/// Fault-injection sites (`fsio.*`) are compiled into each step.

#include <cstddef>
#include <string>
#include <string_view>

namespace chipalign::fs_io {

/// `<path>.tmp` — the temp name atomic_write_file() uses, exposed so tests
/// can assert no temp litter survives a successful commit.
std::string temp_path_for(const std::string& path);

/// fsyncs an existing file by path (open O_RDONLY + fsync + close).
void fsync_path(const std::string& path);

/// fsyncs a directory, making completed renames inside it durable.
void fsync_dir(const std::string& dir);

/// Durably replaces `path` with `data`: temp write → fsync → rename →
/// directory fsync. The temp file is removed on failure.
void atomic_write_file(const std::string& path, std::string_view data);

/// Durably moves a fully written temp file onto its target: fsync(tmp) →
/// rename(tmp, path) → fsync(dir). For payloads too large to buffer
/// through atomic_write_file().
void commit_file(const std::string& tmp, const std::string& path);

/// Append-only file over a POSIX fd. Movable, not copyable. Every append
/// is one write() call (retrying EINTR/short writes), so an interrupted
/// process tears at most the entry being appended.
class AppendFile {
 public:
  AppendFile() = default;
  /// Opens (creating, truncating) `path` for appending.
  explicit AppendFile(const std::string& path);
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends all of `data`; throws Error on failure.
  void append(std::string_view data);

  /// fsync — committed appends survive a crash after this returns.
  void sync();

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace chipalign::fs_io
