#include "util/hash.hpp"

#include <cstring>

#include "util/error.hpp"

namespace chipalign {

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (matches the rest of the io layer)
}

inline std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
  val = round_step(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint8_t* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* const limit = end - 32;
    do {
      v1 = round_step(v1, read_u64(p));
      v2 = round_step(v2, read_u64(p + 8));
      v3 = round_step(v3, read_u64(p + 16));
      v4 = round_step(v4, read_u64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h ^= round_step(0, read_u64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_u32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

std::uint64_t xxh64(const std::string& text, std::uint64_t seed) {
  return xxh64(text.data(), text.size(), seed);
}

void Xxh64Stream::update(const void* data, std::size_t len) {
  buffer_.append(static_cast<const char*>(data), len);
}

void Xxh64Stream::update_u64(std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  buffer_.append(bytes, 8);
}

std::uint64_t Xxh64Stream::digest() const { return xxh64(buffer_, seed_); }

std::string hash_to_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::uint64_t hash_from_hex(const std::string& hex) {
  CA_CHECK(hex.size() == 16, "hash hex string must be 16 chars, got '" << hex
           << "'");
  std::uint64_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      CA_THROW("invalid hex digit '" << c << "' in hash '" << hex << "'");
    }
  }
  return value;
}

}  // namespace chipalign
