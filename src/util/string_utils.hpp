#pragma once
/// \file string_utils.hpp
/// \brief Small string helpers shared by tokenization, data generation and
/// evaluation metrics.

#include <string>
#include <string_view>
#include <vector>

namespace chipalign {

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII-only case transforms (the library's corpora are ASCII).
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Lowercased word tokens: maximal runs of [a-z0-9]; punctuation is dropped.
/// This is the tokenization used by the ROUGE/BLEU metrics and BM25.
std::vector<std::string> word_tokens(std::string_view text);

/// Number of word tokens (convenience for instruction checkers).
std::size_t count_words(std::string_view text);

}  // namespace chipalign
