#include "util/mem_probe.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

namespace chipalign {

namespace {

/// Parses a "Vm...:   1234 kB" line value from /proc/self/status.
/// Returns 0 when the file or the key is unavailable (non-Linux).
std::uint64_t proc_status_kb(const std::string& key) {
  std::ifstream status("/proc/self/status");
  if (!status.good()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::istringstream fields(line.substr(key.size()));
    std::uint64_t kb = 0;
    fields >> kb;
    return kb;
  }
  return 0;
}

}  // namespace

std::uint64_t peak_rss_bytes() { return proc_status_kb("VmHWM:") * 1024; }

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS:") * 1024; }

std::string format_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(units)) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), unit == 0 ? "%.0f %s" : "%.1f %s",
                value, units[unit]);
  return buffer;
}

}  // namespace chipalign
