#pragma once
/// \file logging.hpp
/// \brief Minimal leveled logger writing to stderr.
///
/// The library itself logs sparingly (merge progress, training checkpoints);
/// benches and examples raise the level for narration. Thread-safe.

#include <sstream>
#include <string>

namespace chipalign {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace chipalign

#define CA_LOG(level, msg_stream)                                       \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::chipalign::log_level())) {                   \
      std::ostringstream ca_log_oss_;                                   \
      ca_log_oss_ << msg_stream; /* NOLINT */                           \
      ::chipalign::detail::log_emit(level, ca_log_oss_.str());          \
    }                                                                   \
  } while (false)

#define CA_LOG_DEBUG(msg) CA_LOG(::chipalign::LogLevel::kDebug, msg)
#define CA_LOG_INFO(msg) CA_LOG(::chipalign::LogLevel::kInfo, msg)
#define CA_LOG_WARN(msg) CA_LOG(::chipalign::LogLevel::kWarn, msg)
#define CA_LOG_ERROR(msg) CA_LOG(::chipalign::LogLevel::kError, msg)
