#include "util/thread_pool.hpp"

#include <algorithm>

namespace chipalign {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_all();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace chipalign
