#include "util/thread_pool.hpp"

#include <algorithm>

namespace chipalign {

namespace {
thread_local bool tl_on_worker_thread = false;
}  // namespace

void ThreadPool::Batch::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() { return tl_on_worker_thread; }

void ThreadPool::submit(Batch& batch, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(batch.mutex_);
    ++batch.pending_;
  }
  // The wrapper owns all batch bookkeeping, so the worker loop itself needs
  // no per-batch knowledge and the queue stays a plain function queue.
  auto wrapped = [&batch, task = std::move(task)] {
    try {
      if (!batch.cancelled()) task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.mutex_);
      if (!batch.first_error_) batch.first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(batch.mutex_);
      if (--batch.pending_ == 0) batch.done_.notify_all();
    }
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(wrapped));
  }
  task_available_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1 || on_worker_thread()) {
    // Inline path: trivial fan-out, single-worker pool, or a nested call
    // from inside a worker task (queueing would deadlock once every worker
    // blocks waiting for queued subtasks that no thread is free to run).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Work-sharing dispatch: helpers and the calling thread pull indices from
  // a shared counter, so the queue sees at most workers_.size() entries (one
  // lock + one notify each) instead of `count` — and the caller's share of
  // indices runs immediately, before any worker has even woken up. Index →
  // thread assignment becomes scheduling-dependent, but each index runs
  // exactly once, which is all the deterministic kernels require.
  std::atomic<std::size_t> next{0};
  const auto drain = [&fn, &next, count] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  Batch batch;
  const std::size_t helpers = std::min(workers_.size(), count - 1);
  const auto helper = [&batch, &drain] {
    try {
      if (!batch.cancelled()) drain();
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.mutex_);
      if (!batch.first_error_) batch.first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(batch.mutex_);
    if (--batch.pending_ == 0) batch.done_.notify_all();
  };
  {
    std::lock_guard<std::mutex> lock(batch.mutex_);
    batch.pending_ = helpers;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) tasks_.push(helper);
  }
  if (helpers > 1) {
    task_available_.notify_all();
  } else {
    task_available_.notify_one();
  }
  std::exception_ptr caller_error;
  try {
    drain();
  } catch (...) {
    caller_error = std::current_exception();
  }
  batch.wait();  // rethrows the first helper error, if any
  if (caller_error) std::rethrow_exception(caller_error);
}

void ThreadPool::worker_loop() {
  tl_on_worker_thread = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_
                                         || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured by the Batch wrapper
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace chipalign
