#pragma once
/// \file corpus.hpp
/// \brief Prompt formats and training-set builders for every model role.
///
/// Three model roles mirror the paper's Figure 4:
///  * base model      — pretrained on a mixed corpus (generic text + chip
///                      documentation + QA-format exposure); the common
///                      ancestor required by task-vector merge methods.
///  * instruct model  — base + full finetune on verifiable-instruction tasks
///                      over *generic* content (the LLaMA-Chat analogue).
///  * chip/EDA model  — instruct (or base) + LoRA DAFT on chip QA triplets
///                      (the ChipNeMo / EDA-model analogue).
///
/// Prompt layout used across the whole repo:
///
///   do: [UP] [BR]          <- optional instruction header
///   ctx: <doc sentence>    <- zero or more context chunks
///   q: <question>
///   out: <answer>
///
/// and for pure format tasks:  do: <tags> / txt: <text> / out: <answer>.

#include <cstdint>
#include <string>
#include <vector>

#include "data/fact_base.hpp"
#include "data/instructions.hpp"
#include "train/trainer.hpp"

namespace chipalign {

// -- prompt assembly
// -----------------------------------------------------------

/// Builds a QA prompt. `header` (e.g. "[UP] [BR]") may be empty; `chunks`
/// may be empty for closed-book questions. Ends with "out: ".
std::string qa_prompt(const std::string& header,
                      const std::vector<std::string>& chunks,
                      const std::string& question);

/// Builds a format-task prompt ("do: <tags> / txt: <text> / out: ").
std::string format_prompt(const std::string& header, const std::string& text);

/// Builds a TrainExample from (text, target-weight) segments; the example
/// starts with <bos> and is truncated to max_len. Segment weights apply to
/// every token the segment contributes.
TrainExample make_segmented_example(
    const std::vector<std::pair<std::string, float>>& segments,
    std::int64_t max_len, bool final_eos = true);

// -- generic (non-chip) facts
// -----------------------------------------------------

/// A throwaway general-knowledge fact used by instruct training and IFEval.
struct GenericFact {
  std::string attribute;  ///< e.g. "color"
  std::string object;     ///< e.g. "sky"
  std::string value;      ///< e.g. "blue"

  std::string context() const;   ///< "the color of the sky is blue"
  std::string question() const;  ///< "what is the color of the sky?"
};

/// Deterministic sample of a generic fact.
GenericFact sample_generic_fact(Rng& rng);

/// A generic *documentation-style* fact: context sentence, question, and an
/// answer extractable from the context. The templates deliberately parallel
/// every chip question shape (command / flow stage / how-to / unit contents
/// / tool invocation) but use disjoint generic vocabulary ("widget", "step",
/// "kit"), so the instruct model learns the *extraction skill* across
/// question shapes without acquiring chip knowledge — the role general chat
/// data plays for real instruct models.
struct GenericDocFact {
  std::string question;
  std::string answer;
  std::string context;
};

/// Deterministic sample across the six generic template families.
GenericDocFact sample_generic_doc_fact(Rng& rng);

/// Random short word sequence (2..4 generic words) for format tasks.
std::string sample_generic_text(Rng& rng);

// -- dataset builders
// ---------------------------------------------------------------

/// Pretraining mixture configuration.
struct PretrainDataConfig {
  std::uint64_t seed = 11;
  int count = 1600;         ///< number of examples
  std::int64_t max_len = 256;
  double generic_frac = 0.25;    ///< plain generic sentences
  double chip_doc_frac = 0.20;   ///< chip documentation sentences (DAPT-ish)
  /// Instruction-format transcripts (format tasks / instructed QA) seen as
  /// plain language modeling — the way web pretraining corpora contain
  /// instruction-shaped text. This is what makes the later instruct
  /// finetune cheap, mirroring real LLM training economics.
  double instruct_format_frac = 0.25;
  // remainder: generic QA-format exposure (ctx/q/out with generic facts)
};

std::vector<TrainExample> build_pretrain_dataset(
    const FactBase& facts, const PretrainDataConfig& config);

/// Instruction-tuning mixture configuration.
struct InstructDataConfig {
  std::uint64_t seed = 22;
  int count = 1400;
  std::int64_t max_len = 256;
  double format_task_frac = 0.35;    ///< "do:/txt:/out:" transformation tasks
  double multi_turn_frac = 0.15;     ///< two-question QA sequences
  double no_instruction_frac = 0.15; ///< grounded QA without a header
  int max_instructions = 3;          ///< matches the IFEval setting
};

std::vector<TrainExample> build_instruct_dataset(
    const InstructDataConfig& config);

/// Chip DAFT mixture configuration.
struct ChipDataConfig {
  std::uint64_t seed = 33;
  std::int64_t max_len = 256;
  int repeats_per_fact = 6;     ///< paraphrased repetitions per fact
  double distractor_frac = 0.5; ///< fraction of examples with an extra chunk
  double closed_book_frac = 0.25;  ///< no-context repetitions (memorization)
  /// Fraction of examples that carry an instruction header (0 for the pure
  /// EDA model; >0 to mimic ChipNeMo's DAFT which included some chat data).
  double instruct_frac = 0.0;
  /// Domains to train on; empty = all domains.
  std::vector<FactDomain> domains;
};

std::vector<TrainExample> build_chip_daft_dataset(const FactBase& facts,
                                                  const ChipDataConfig& config);

}  // namespace chipalign
