#include "data/corpus.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

namespace {

constexpr const char* kGenericAttrs[] = {"color", "size",  "shape", "speed",
                                         "taste", "sound", "width", "state"};
constexpr const char* kGenericObjects[] = {"sky", "box", "car", "cat", "pin",
                                           "rod", "cup", "map", "fan", "bus"};
constexpr const char* kGenericValues[] = {"blue", "small", "round", "fast",
                                          "sweet", "loud", "wide",  "cold",
                                          "red",   "flat", "slow",  "soft"};
constexpr const char* kGenericNouns[] = {"wire", "light", "stone", "river",
                                         "tower", "cloud", "field", "train"};
constexpr const char* kGenericVerbs[] = {"moves", "holds", "finds", "keeps",
                                         "lifts", "turns", "meets", "makes"};

template <std::size_t N>
const char* pick(Rng& rng, const char* const (&bank)[N]) {
  return bank[static_cast<std::size_t>(rng.uniform_index(N))];
}

/// Random pronounceable lowercase word (alternating consonant/vowel).
/// The generic corpora use random words for entity slots so that models
/// cannot memorize slot fillers and are forced to learn *copying from
/// context* — the skill the chip QA benchmarks exercise.
std::string random_word(Rng& rng, int min_len = 3, int max_len = 5) {
  static constexpr char kConsonants[] = "bcdfgklmnprstvz";
  static constexpr char kVowels[] = "aeiou";
  const int len =
      min_len + static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(max_len - min_len + 1)));
  std::string word;
  bool consonant = rng.bernoulli(0.7);
  for (int i = 0; i < len; ++i) {
    if (consonant) {
      word += kConsonants[rng.uniform_index(sizeof(kConsonants) - 1)];
    } else {
      word += kVowels[rng.uniform_index(sizeof(kVowels) - 1)];
    }
    consonant = !consonant;
  }
  return word;
}

/// Entity slot filler: usually a random word, sometimes a bank word.
template <std::size_t N>
std::string slot(Rng& rng, const char* const (&bank)[N], double random_prob =
                 0.5) {
  if (rng.uniform() < random_prob) return random_word(rng);
  return pick(rng, bank);
}

/// "the <adj> <noun> <verb> the <noun>" — generic pretraining filler.
std::string generic_sentence(Rng& rng) {
  return std::string("the ") + pick(rng, kGenericValues) + " " +
         pick(rng, kGenericNouns) + " " + pick(rng, kGenericVerbs) + " the " +
         pick(rng, kGenericNouns);
}

}  // namespace

std::string qa_prompt(const std::string& header,
                      const std::vector<std::string>& chunks,
                      const std::string& question) {
  std::string out;
  if (!header.empty()) out += "do: " + header + "\n";
  for (const std::string& chunk : chunks) out += "ctx: " + chunk + "\n";
  out += "q: " + question + "\n";
  out += "out: ";
  return out;
}

std::string format_prompt(const std::string& header, const std::string& text) {
  CA_CHECK(!header.empty(), "format tasks require an instruction header");
  return "do: " + header + "\ntxt: " + text + "\nout: ";
}

TrainExample make_segmented_example(
    const std::vector<std::pair<std::string, float>>& segments,
    std::int64_t max_len, bool final_eos) {
  const CharTokenizer& tok = tokenizer();
  TrainExample example;
  example.tokens.push_back(CharTokenizer::kBos);
  example.target_mask.push_back(0.0F);
  for (const auto& [text, weight] : segments) {
    for (TokenId id : tok.encode(text)) {
      example.tokens.push_back(id);
      example.target_mask.push_back(weight);
    }
  }
  if (final_eos) {
    example.tokens.push_back(CharTokenizer::kEos);
    example.target_mask.push_back(segments.empty() ? 0.0F
                                  : segments.back().second);
  }
  if (static_cast<std::int64_t>(example.tokens.size()) > max_len) {
    example.tokens.resize(static_cast<std::size_t>(max_len));
    example.target_mask.resize(static_cast<std::size_t>(max_len));
  }
  return example;
}

std::string GenericFact::context() const {
  return "the " + attribute + " of the " + object + " is " + value;
}

std::string GenericFact::question() const {
  return "what is the " + attribute + " of the " + object + "?";
}

GenericFact sample_generic_fact(Rng& rng) {
  GenericFact fact;
  fact.attribute = pick(rng, kGenericAttrs);
  fact.object = pick(rng, kGenericObjects);
  fact.value = pick(rng, kGenericValues);
  return fact;
}

GenericDocFact sample_generic_doc_fact(Rng& rng) {
  // Each template family shares its *frame* words (command / stage / icon /
  // unit / tool / queue / test) with the corresponding chip template, but
  // fills the slots with generic vocabulary. A real chat model knows these
  // frames from general pretraining; only the specific chip facts are
  // domain knowledge.
  GenericDocFact fact;
  switch (rng.uniform_index(8)) {
    case 0: {  // attribute fact (plain grounded QA; random value slot)
      const GenericFact g = sample_generic_fact(rng);
      const std::string value = slot(rng, kGenericValues);
      fact.context =
          "the " + g.attribute + " of the " + g.object + " is " + value;
      fact.question = g.question();
      fact.answer = value;
      break;
    }
    case 1: {  // command frame (parallels Functionality facts)
      const char* verb_pairs[][2] = {{"turn", "turns"},   {"hold", "holds"},
                                     {"lift", "lifts"},   {"keep", "keeps"},
                                     {"move", "moves"},   {"find", "finds"}};
      const auto& verb = verb_pairs[rng.uniform_index(6)];
      const std::string obj = slot(rng, kGenericNouns);
      const std::string mode = slot(rng, kGenericValues);
      const std::string name = std::string(verb[0]) + "_" + obj;
      fact.answer =
          std::string(verb[1]) + " the " + obj + " in " + mode + " mode";
      fact.context = "command " + name + " " + fact.answer;
      fact.question = "what does command " + name + " do?";
      break;
    }
    case 2: {  // GUI frame (parallels GUI & Install & Test facts)
      const std::string thing = slot(rng, kGenericNouns);
      const std::string icon = slot(rng, kGenericNouns);
      fact.answer = "click the " + icon + " icon";
      fact.context = "to open the " + thing + " panel " + fact.answer +
                     " in the top bar";
      fact.question = "how to open the " + thing + " panel?";
      break;
    }
    case 3: {  // stage frame (parallels VLSI-flow facts)
      const std::string stage = slot(rng, kGenericNouns);
      const std::string prev = slot(rng, kGenericNouns);
      const std::string out = slot(rng, kGenericNouns);
      fact.answer = "the " + out + (rng.bernoulli(0.5) ? " file" : " map");
      fact.context = "stage " + stage + " runs after " + prev +
                     " and outputs " + fact.answer;
      fact.question = "what does stage " + stage + " output?";
      break;
    }
    case 4: {  // unit frame (parallels ARCH facts)
      const std::string unit = slot(rng, kGenericNouns);
      const std::string part = slot(rng, kGenericNouns);
      const int count = 2 + static_cast<int>(rng.uniform_index(7));
      fact.answer = std::to_string(count) + " " + part + " blocks";
      fact.context = "the " + unit + " unit has " + fact.answer + " inside";
      fact.question = "what does the " + unit + " unit have?";
      break;
    }
    case 5: {  // build-tool frame (parallels BUILD facts; tool qq, not zz)
      const std::string target = slot(rng, kGenericNouns);
      fact.answer = "run tool qq -b " + target;
      fact.context = fact.answer + " to build the target " + target + " tree";
      fact.question = "how to build target " + target + "?";
      break;
    }
    case 6: {  // queue frame (parallels LSF facts; generic job/queue names)
      const std::string job = slot(rng, kGenericNouns);
      const std::string queue = slot(rng, kGenericValues);
      fact.answer = "use bsub -q " + queue;
      fact.context = "to submit job " + job + " " + fact.answer + " on the " +
                     queue + " queue";
      fact.question = "how to submit job " + job + "?";
      break;
    }
    default: {  // test frame (parallels TESTGEN facts)
      const std::string test = slot(rng, kGenericNouns);
      const std::string obj = slot(rng, kGenericNouns);
      const int seed_num = 10 + static_cast<int>(rng.uniform_index(90));
      fact.answer = "the " + obj + " logic";
      fact.context = "test " + test + " checks " + fact.answer + " with seed " +
                     std::to_string(seed_num);
      fact.question = "what does test " + test + " check?";
      break;
    }
  }
  return fact;
}

std::string sample_generic_text(Rng& rng) {
  const int words = 2 + static_cast<int>(rng.uniform_index(3));
  std::vector<std::string> parts;
  for (int i = 0; i < words; ++i) {
    // Mostly random words so format tasks exercise copying, not recall.
    if (rng.uniform() < 0.6) {
      parts.push_back(random_word(rng));
    } else {
      parts.emplace_back(rng.bernoulli(0.5) ? pick(rng, kGenericValues)
                                            : pick(rng, kGenericNouns));
    }
  }
  return join(parts, " ");
}

std::vector<TrainExample> build_pretrain_dataset(
    const FactBase& facts, const PretrainDataConfig& config) {
  CA_CHECK(config.count > 0, "pretrain count must be positive");
  Rng rng(config.seed);
  std::vector<TrainExample> dataset;
  dataset.reserve(static_cast<std::size_t>(config.count));

  const auto& docs = facts.corpus_sentences();
  for (int i = 0; i < config.count; ++i) {
    const double roll = rng.uniform();
    if (roll < config.generic_frac) {
      // A couple of generic sentences per example.
      std::string text = generic_sentence(rng);
      if (rng.bernoulli(0.5)) text += "\n" + generic_sentence(rng);
      dataset.push_back(make_lm_example(text, config.max_len));
    } else if (roll < config.generic_frac + config.chip_doc_frac) {
      dataset.push_back(
          make_lm_example(docs[static_cast<std::size_t>(
                              rng.uniform_index(docs.size()))],
                          config.max_len));
    } else if (roll < config.generic_frac + config.chip_doc_frac +
                          config.instruct_format_frac) {
      // Instruction-shaped transcript as plain LM text.
      const std::vector<InstructionKind> kinds = sample_instructions(rng, 3);
      std::string text;
      if (rng.bernoulli(0.5)) {
        const std::string raw = sample_generic_text(rng);
        text = format_prompt(instruction_header(kinds), raw) +
               apply_instructions(kinds, raw);
      } else {
        const GenericDocFact fact = sample_generic_doc_fact(rng);
        text = qa_prompt(instruction_header(kinds), {fact.context},
                         fact.question) +
               apply_instructions(kinds, fact.answer);
      }
      dataset.push_back(make_lm_example(text, config.max_len));
    } else {
      // Full QA transcript over a generic doc fact (format exposure: the
      // base model learns the ctx/q/out scaffolding but no instructions).
      const GenericDocFact fact = sample_generic_doc_fact(rng);
      const std::string text =
          qa_prompt("", {fact.context}, fact.question) + fact.answer;
      dataset.push_back(make_lm_example(text, config.max_len));
    }
  }
  return dataset;
}

std::vector<TrainExample> build_instruct_dataset(
    const InstructDataConfig& config) {
  CA_CHECK(config.count > 0, "instruct count must be positive");
  Rng rng(config.seed);
  std::vector<TrainExample> dataset;
  dataset.reserve(static_cast<std::size_t>(config.count));

  for (int i = 0; i < config.count; ++i) {
    const double roll = rng.uniform();
    if (roll < config.format_task_frac) {
      // Pure format-transformation task.
      const std::vector<InstructionKind> kinds =
          sample_instructions(rng, config.max_instructions);
      const std::string text = sample_generic_text(rng);
      const std::string prompt = format_prompt(instruction_header(kinds), text);
      const std::string answer = apply_instructions(kinds, text);
      dataset.push_back(make_qa_example(prompt, answer, config.max_len));
      continue;
    }
    if (roll < config.format_task_frac + config.multi_turn_frac) {
      // Two-question grounded QA in one transcript.
      const GenericDocFact fact_a = sample_generic_doc_fact(rng);
      GenericDocFact fact_b = sample_generic_doc_fact(rng);
      while (fact_b.question == fact_a.question) {
        fact_b = sample_generic_doc_fact(rng);
      }
      const std::vector<InstructionKind> kinds =
          sample_instructions(rng, config.max_instructions);
      const std::string header = instruction_header(kinds);
      std::vector<std::pair<std::string, float>> segments;
      segments.emplace_back(
          qa_prompt(header, {fact_a.context, fact_b.context},
                    fact_a.question),
          0.0F);
      segments.emplace_back(apply_instructions(kinds, fact_a.answer), 1.0F);
      segments.emplace_back("\nq: " + fact_b.question + "\nout: ", 0.0F);
      segments.emplace_back(apply_instructions(kinds, fact_b.answer), 1.0F);
      dataset.push_back(make_segmented_example(segments, config.max_len));
      continue;
    }

    // Grounded single-turn QA, with or without an instruction header.
    const GenericDocFact fact = sample_generic_doc_fact(rng);
    std::vector<std::string> chunks = {fact.context};
    if (rng.bernoulli(0.5)) {
      GenericDocFact distractor = sample_generic_doc_fact(rng);
      while (distractor.question == fact.question) {
        distractor = sample_generic_doc_fact(rng);
      }
      chunks.push_back(distractor.context);
      if (rng.bernoulli(0.5)) std::swap(chunks[0], chunks[1]);
    }
    const bool with_instructions = rng.uniform() >= config.no_instruction_frac;
    std::vector<InstructionKind> kinds;
    std::string header;
    if (with_instructions) {
      kinds = sample_instructions(rng, config.max_instructions);
      header = instruction_header(kinds);
    }
    const std::string prompt = qa_prompt(header, chunks, fact.question);
    const std::string answer = apply_instructions(kinds, fact.answer);
    dataset.push_back(make_qa_example(prompt, answer, config.max_len));
  }
  return dataset;
}

std::vector<TrainExample> build_chip_daft_dataset(
    const FactBase& facts, const ChipDataConfig& config) {
  CA_CHECK(config.repeats_per_fact > 0, "repeats_per_fact must be positive");
  Rng rng(config.seed);

  std::vector<const Fact*> pool;
  for (const Fact& fact : facts.facts()) {
    const bool wanted =
        config.domains.empty() ||
        std::find(config.domains.begin(), config.domains.end(), fact.domain) !=
            config.domains.end();
    if (wanted) pool.push_back(&fact);
  }
  CA_CHECK(!pool.empty(), "no facts match the requested domains");

  const auto& docs = facts.corpus_sentences();
  std::vector<TrainExample> dataset;
  dataset.reserve(pool.size() *
                  static_cast<std::size_t>(config.repeats_per_fact));

  for (const Fact* fact : pool) {
    for (int r = 0; r < config.repeats_per_fact; ++r) {
      const bool closed_book = rng.uniform() < config.closed_book_frac;
      std::vector<std::string> chunks;
      if (!closed_book) {
        chunks.push_back(fact->context);
        if (rng.uniform() < config.distractor_frac) {
          const std::string& other =
              docs[static_cast<std::size_t>(rng.uniform_index(docs.size()))];
          if (other != fact->context) {
            chunks.push_back(other);
            if (rng.bernoulli(0.5)) std::swap(chunks[0], chunks[1]);
          }
        }
      }
      std::vector<InstructionKind> kinds;
      std::string header;
      if (config.instruct_frac > 0.0 && rng.uniform() < config.instruct_frac) {
        kinds = sample_instructions(rng, 2);
        header = instruction_header(kinds);
      }
      const std::string prompt = qa_prompt(header, chunks, fact->question);
      const std::string answer = apply_instructions(kinds, fact->answer);
      dataset.push_back(make_qa_example(prompt, answer, config.max_len));
    }
  }
  return dataset;
}

}  // namespace chipalign
