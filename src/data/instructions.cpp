#include "data/instructions.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

const std::vector<InstructionKind>& all_instruction_kinds() {
  static const std::vector<InstructionKind> kinds = {
      InstructionKind::kMaxWords3, InstructionKind::kRepeatTwice,
      InstructionKind::kPrefixAns, InstructionKind::kUpper,
      InstructionKind::kLower,     InstructionKind::kQuote,
      InstructionKind::kBracket,   InstructionKind::kSuffixDot,
  };
  return kinds;
}

std::string instruction_tag(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kMaxWords3:
      return "[W3]";
    case InstructionKind::kRepeatTwice:
      return "[X2]";
    case InstructionKind::kPrefixAns:
      return "[P:]";
    case InstructionKind::kUpper:
      return "[UP]";
    case InstructionKind::kLower:
      return "[LOW]";
    case InstructionKind::kQuote:
      return "[QT]";
    case InstructionKind::kBracket:
      return "[BR]";
    case InstructionKind::kSuffixDot:
      return "[DOT]";
  }
  CA_THROW("unknown instruction kind");
}

std::string instruction_description(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kMaxWords3:
      return "answer in at most 3 words";
    case InstructionKind::kRepeatTwice:
      return "state the answer twice, separated by '; '";
    case InstructionKind::kPrefixAns:
      return "begin the answer with 'ans: '";
    case InstructionKind::kUpper:
      return "use uppercase letters only";
    case InstructionKind::kLower:
      return "use lowercase letters only";
    case InstructionKind::kQuote:
      return "wrap the answer in double quotes";
    case InstructionKind::kBracket:
      return "wrap the answer in parentheses";
    case InstructionKind::kSuffixDot:
      return "end the answer with a period";
  }
  CA_THROW("unknown instruction kind");
}

std::string apply_instruction(InstructionKind kind, std::string_view answer) {
  switch (kind) {
    case InstructionKind::kMaxWords3: {
      const std::vector<std::string> words = split_whitespace(answer);
      std::vector<std::string> kept(
          words.begin(),
          words.begin() + std::min<std::size_t>(3, words.size()));
      return join(kept, " ");
    }
    case InstructionKind::kRepeatTwice: {
      std::string text(answer);
      return text + "; " + text;
    }
    case InstructionKind::kPrefixAns:
      return "ans: " + std::string(answer);
    case InstructionKind::kUpper:
      return to_upper(answer);
    case InstructionKind::kLower:
      return to_lower(answer);
    case InstructionKind::kQuote:
      return "\"" + std::string(answer) + "\"";
    case InstructionKind::kBracket:
      return "(" + std::string(answer) + ")";
    case InstructionKind::kSuffixDot:
      return std::string(answer) + ".";
  }
  CA_THROW("unknown instruction kind");
}

std::string apply_instructions(const std::vector<InstructionKind>& kinds,
                               std::string_view answer) {
  std::string out(answer);
  for (InstructionKind kind : all_instruction_kinds()) {
    if (std::find(kinds.begin(), kinds.end(), kind) != kinds.end()) {
      out = apply_instruction(kind, out);
    }
  }
  return out;
}

std::string instruction_header(const std::vector<InstructionKind>& kinds) {
  std::vector<std::string> tags;
  // Render in canonical order so prompts are deterministic.
  for (InstructionKind kind : all_instruction_kinds()) {
    if (std::find(kinds.begin(), kinds.end(), kind) != kinds.end()) {
      tags.push_back(instruction_tag(kind));
    }
  }
  return join(tags, " ");
}

namespace {

bool has_lower(std::string_view text) {
  return std::any_of(text.begin(), text.end(), [](char c) {
    return std::islower(static_cast<unsigned char>(c)) != 0;
  });
}

bool has_upper(std::string_view text) {
  return std::any_of(text.begin(), text.end(), [](char c) {
    return std::isupper(static_cast<unsigned char>(c)) != 0;
  });
}

}  // namespace

bool verify_strict(InstructionKind kind, std::string_view response) {
  switch (kind) {
    case InstructionKind::kMaxWords3:
      return count_words(response) <= 3;
    case InstructionKind::kRepeatTwice: {
      const std::size_t sep = std::string_view(response).find("; ");
      if (sep == std::string_view::npos) return false;
      // Compare word sequences so wrappers applied after [X2] (case, quote,
      // bracket, period, the 'ans:' prefix) do not break the check.
      auto first = word_tokens(response.substr(0, sep));
      const auto second = word_tokens(response.substr(sep + 2));
      if (!first.empty() && first.front() == "ans"
          && first.size() == second.size() + 1) {
        first.erase(first.begin());
      }
      return !first.empty() && first == second;
    }
    case InstructionKind::kPrefixAns: {
      const std::string lowered = to_lower(response);
      // Allow wrapping characters ((, ") inserted by later instructions.
      const std::size_t pos = lowered.find("ans:");
      if (pos == std::string::npos || pos > 2) return false;
      for (std::size_t i = 0; i < pos; ++i) {
        if (lowered[i] != '(' && lowered[i] != '"') return false;
      }
      return true;
    }
    case InstructionKind::kUpper:
      return !has_lower(response);
    case InstructionKind::kLower:
      return !has_upper(response);
    case InstructionKind::kQuote: {
      // The quote may be wrapped by [BR] or terminated by [DOT].
      std::string text = trim(response);
      if (starts_with(text, "(") && ends_with(text, ")")) {
        text = text.substr(1, text.size() - 2);
      }
      if (ends_with(text, ".")) text = text.substr(0, text.size() - 1);
      return text.size() >= 2 && starts_with(text, "\"") && ends_with(text,
                                                                      "\"");
    }
    case InstructionKind::kBracket: {
      std::string text = trim(response);
      if (ends_with(text, ".")) text = text.substr(0, text.size() - 1);
      return text.size() >= 2 && starts_with(text, "(") && ends_with(text, ")");
    }
    case InstructionKind::kSuffixDot:
      return ends_with(trim(response), ".");
  }
  CA_THROW("unknown instruction kind");
}

bool verify_loose(InstructionKind kind, std::string_view response) {
  if (verify_strict(kind, response)) return true;
  std::string text = trim(response);
  // Strip one layer of leading/trailing punctuation or quotes, as IFEval's
  // loose mode forgives incidental wrappers.
  auto is_wrapper = [](char c) {
    return c == '"' || c == '\'' || c == '(' || c == ')' || c == '.' ||
           c == ',' || c == ';' || c == ':';
  };
  if (!text.empty() && is_wrapper(text.front())) text.erase(text.begin());
  if (!text.empty() && is_wrapper(text.back())) text.pop_back();
  return verify_strict(kind, trim(text));
}

bool compatible(InstructionKind a, InstructionKind b) {
  if (a == b) return false;
  const bool case_clash =
      (a == InstructionKind::kUpper && b == InstructionKind::kLower) ||
      (a == InstructionKind::kLower && b == InstructionKind::kUpper);
  if (case_clash) return false;
  // [W3] clashes with instructions that add words after truncation: [X2]
  // doubles the word count and [P:] prepends "ans:", making the combined
  // golden answer violate the word limit.
  auto clashes_with_w3 = [](InstructionKind k) {
    return k == InstructionKind::kRepeatTwice ||
           k == InstructionKind::kPrefixAns;
  };
  const bool count_clash =
      (a == InstructionKind::kMaxWords3 && clashes_with_w3(b)) ||
      (b == InstructionKind::kMaxWords3 && clashes_with_w3(a));
  return !count_clash;
}

std::vector<InstructionKind> sample_instructions(Rng& rng, int max_count) {
  CA_CHECK(max_count >= 1, "max_count must be >= 1");
  const auto& kinds = all_instruction_kinds();
  const int want = 1 + static_cast<int>(rng.uniform_index(
                           static_cast<std::uint64_t>(max_count)));
  std::vector<InstructionKind> chosen;
  int attempts = 0;
  while (static_cast<int>(chosen.size()) < want && attempts < 64) {
    ++attempts;
    const InstructionKind candidate =
        kinds[static_cast<std::size_t>(rng.uniform_index(kinds.size()))];
    const bool ok = std::all_of(
        chosen.begin(), chosen.end(),
        [&](InstructionKind existing) { return compatible(existing,
                                                          candidate); });
    if (ok) chosen.push_back(candidate);
  }
  return chosen;
}

}  // namespace chipalign
