#pragma once
/// \file instructions.hpp
/// \brief Verifiable instruction family (the repo's IFEval analogue).
///
/// Each instruction is a short bracketed tag a prompt can carry (e.g.
/// "do: [UP] [BR]"), a deterministic transformation that produces the
/// compliant golden answer, and strict/loose programmatic checkers — the
/// defining property of IFEval is that compliance is machine-checkable.
///
/// Composition uses a fixed canonical order (word-limit, repeat, prefix,
/// case, quote, bracket, period) so golden answers are unambiguous.

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace chipalign {

/// The instruction kinds. Comments give tag and meaning.
enum class InstructionKind {
  kMaxWords3,    ///< [W3]  answer in at most 3 words
  kRepeatTwice,  ///< [X2]  state the answer twice, separated by "; "
  kPrefixAns,    ///< [P:]  begin the answer with "ans: "
  kUpper,        ///< [UP]  all letters uppercase
  kLower,        ///< [LOW] all letters lowercase
  kQuote,        ///< [QT]  wrap the answer in double quotes
  kBracket,      ///< [BR]  wrap the answer in parentheses
  kSuffixDot,    ///< [DOT] end the answer with a period
};

/// All kinds in canonical application order.
const std::vector<InstructionKind>& all_instruction_kinds();

/// Prompt tag, e.g. "[UP]".
std::string instruction_tag(InstructionKind kind);

/// Human-readable description (used in docs and the chip_assistant example).
std::string instruction_description(InstructionKind kind);

/// Applies one instruction to an answer string.
std::string apply_instruction(InstructionKind kind, std::string_view answer);

/// Applies a set of instructions in canonical order (input order ignored).
std::string apply_instructions(const std::vector<InstructionKind>& kinds,
                               std::string_view answer);

/// Renders the prompt header for a set of instructions, e.g. "[UP] [BR]".
std::string instruction_header(const std::vector<InstructionKind>& kinds);

/// Strict compliance check of a model response against one instruction.
bool verify_strict(InstructionKind kind, std::string_view response);

/// Loose compliance: the response is trimmed and stripped of one leading and
/// trailing punctuation/quote character before re-checking, mirroring
/// IFEval's loose criterion of forgiving incidental wrappers.
bool verify_loose(InstructionKind kind, std::string_view response);

/// True if the two instructions may appear together ([UP]+[LOW] may not).
bool compatible(InstructionKind a, InstructionKind b);

/// Samples 1..max_count mutually compatible instructions.
std::vector<InstructionKind> sample_instructions(Rng& rng, int max_count);

}  // namespace chipalign
