#include "data/qa_bench.hpp"

#include <algorithm>

#include "data/corpus.hpp"
#include "util/error.hpp"

namespace chipalign {

namespace {

/// Samples 1-2 compatible instructions from the token-affecting subset used
/// by the generation benchmarks ([P:], [X2], [W3] change word content; [UP]
/// and [DOT] are thrown in occasionally and matter for the rubric grader).
std::vector<InstructionKind> sample_bench_instructions(Rng& rng) {
  static const std::vector<InstructionKind> kPrimary = {
      InstructionKind::kPrefixAns,
      InstructionKind::kRepeatTwice,
      InstructionKind::kMaxWords3,
  };
  static const std::vector<InstructionKind> kSecondary = {
      InstructionKind::kUpper,
      InstructionKind::kSuffixDot,
      InstructionKind::kBracket,
  };
  std::vector<InstructionKind> kinds;
  kinds.push_back(kPrimary[static_cast<std::size_t>(
      rng.uniform_index(kPrimary.size()))]);
  if (rng.bernoulli(0.5)) {
    const InstructionKind extra = kSecondary[static_cast<std::size_t>(
        rng.uniform_index(kSecondary.size()))];
    if (compatible(kinds[0], extra)) kinds.push_back(extra);
  }
  return kinds;
}

}  // namespace

std::vector<QaEvalItem> build_openroad_eval(const FactBase& facts,
                                            std::uint64_t seed, int count) {
  CA_CHECK(count > 0, "eval count must be positive");
  Rng rng(seed);
  const FactDomain domains[] = {FactDomain::kFunctionality,
                                FactDomain::kVlsiFlow,
                                FactDomain::kGuiInstallTest};
  std::vector<std::vector<const Fact*>> pools;
  for (FactDomain domain : domains) {
    pools.push_back(facts.domain_facts(domain));
    CA_CHECK(!pools.back().empty(), "no facts for domain "
             << domain_name(domain));
  }

  std::vector<QaEvalItem> items;
  items.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::size_t which = static_cast<std::size_t>(i) % 3;
    const auto& pool = pools[which];
    const Fact* fact =
        pool[static_cast<std::size_t>(rng.uniform_index(pool.size()))];

    QaEvalItem item;
    item.id = "openroad." + std::to_string(i) + "." + fact->id;
    item.domain = domains[which];
    item.instructions = sample_bench_instructions(rng);
    item.question = fact->question;
    item.golden_context = fact->context;
    item.plain_answer = fact->answer;
    item.golden_answer = apply_instructions(item.instructions, fact->answer);
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<IndustrialItem> build_industrial_eval(const FactBase& facts,
                                                  std::uint64_t seed,
                                                  int per_domain) {
  CA_CHECK(per_domain > 0, "per_domain must be positive");
  Rng rng(seed);
  const FactDomain domains[] = {FactDomain::kArch, FactDomain::kBuild,
                                FactDomain::kLsf, FactDomain::kTestgen};

  std::vector<IndustrialItem> items;
  for (FactDomain domain : domains) {
    const auto pool = facts.domain_facts(domain);
    CA_CHECK(pool.size() >= 2, "need at least two facts in "
                                   << domain_name(domain) << " for follow-ups");
    for (int i = 0; i < per_domain; ++i) {
      const Fact* first =
          pool[static_cast<std::size_t>(rng.uniform_index(pool.size()))];
      const Fact* second = first;
      while (second == first) {
        second = pool[static_cast<std::size_t>(rng.uniform_index(pool.size()))];
      }

      IndustrialItem item;
      item.id = "industrial." + domain_name(domain) + "." + std::to_string(i);
      item.domain = domain;
      item.instructions = sample_bench_instructions(rng);
      for (const Fact* fact : {first, second}) {
        IndustrialItem::Turn turn;
        turn.question = fact->question;
        turn.golden_context = fact->context;
        turn.plain_answer = fact->answer;
        turn.golden_answer = apply_instructions(item.instructions,
                                                fact->answer);
        item.turns.push_back(std::move(turn));
      }
      items.push_back(std::move(item));
    }
  }
  return items;
}

std::vector<McqItem> build_mcq_eval(const FactBase& facts, std::uint64_t seed,
                                    int per_domain) {
  CA_CHECK(per_domain > 0, "per_domain must be positive");
  Rng rng(seed);
  const FactDomain domains[] = {FactDomain::kFunctionality, FactDomain::kBugs,
                                FactDomain::kCircuits};

  std::vector<McqItem> items;
  for (FactDomain domain : domains) {
    const auto pool = facts.domain_facts(domain);
    CA_CHECK(pool.size() >= 4, "need >= 4 facts in " << domain_name(domain)
                                                     << " for 4-way MCQ");
    for (int i = 0; i < per_domain; ++i) {
      const Fact* fact =
          pool[static_cast<std::size_t>(rng.uniform_index(pool.size()))];

      // Distractors: answers of three other facts in the same domain.
      std::vector<const Fact*> others;
      for (const Fact* candidate : pool) {
        if (candidate != fact && candidate->answer != fact->answer) {
          others.push_back(candidate);
        }
      }
      CA_CHECK(others.size() >= 3, "not enough distinct distractors");
      rng.shuffle(others);

      McqItem item;
      item.id = "mcq." + fact->id + "." + std::to_string(i);
      item.domain = domain;
      item.question = fact->question;
      item.choices = {fact->answer, others[0]->answer, others[1]->answer,
                      others[2]->answer};
      // Shuffle choices, track the golden index.
      for (std::size_t c = item.choices.size(); c > 1; --c) {
        const auto j = static_cast<std::size_t>(rng.uniform_index(c));
        std::swap(item.choices[c - 1], item.choices[j]);
      }
      const auto golden = std::find(item.choices.begin(), item.choices.end(),
                                    fact->answer);
      item.correct_index = static_cast<int>(golden - item.choices.begin());
      items.push_back(std::move(item));
    }
  }
  return items;
}

std::vector<IfEvalItem> build_ifeval_set(std::uint64_t seed, int count,
                                         int max_instructions) {
  CA_CHECK(count > 0, "count must be positive");
  Rng rng(seed);
  std::vector<IfEvalItem> items;
  items.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    IfEvalItem item;
    item.id = "ifeval." + std::to_string(i);
    item.instructions = sample_instructions(rng, max_instructions);
    item.prompt = format_prompt(instruction_header(item.instructions),
                                sample_generic_text(rng));
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace chipalign
