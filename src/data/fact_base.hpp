#pragma once
/// \file fact_base.hpp
/// \brief Synthetic chip-domain knowledge base.
///
/// Stands in for the corpora behind the paper's benchmarks: OpenROAD
/// documentation (functionality / VLSI flow / GUI-install-test categories of
/// Table 1), the industrial QA domains (ARCH/BUILD/LSF/TESTGEN of Table 2)
/// and the multiple-choice domains (EDA scripts / bugs / circuits of
/// Figure 7). Every fact is a (question, short answer, documentation
/// sentence) triple; the documentation sentences double as the RAG corpus.
///
/// Facts are generated deterministically from a seed, so every bench and
/// test sees the same knowledge base.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace chipalign {

/// Knowledge domains; the first three are the OpenROAD QA categories.
enum class FactDomain {
  kFunctionality,   ///< EDA command usage ("Functionality" in Table 1)
  kVlsiFlow,        ///< flow stages ("VLSI Flow")
  kGuiInstallTest,  ///< GUI / install / test ("GUI & Install & Test")
  kArch,            ///< hardware architecture (Table 2 ARCH)
  kBuild,           ///< build tooling (Table 2 BUILD)
  kLsf,             ///< job scheduling (Table 2 LSF)
  kTestgen,         ///< verification (Table 2 TESTGEN)
  kBugs,            ///< bug reports (Figure 7 "bugs")
  kCircuits,        ///< circuit structures (Figure 7 "circuits")
};

/// Display name, e.g. "VLSI Flow".
std::string domain_name(FactDomain domain);

/// True for the three OpenROAD QA categories.
bool is_openroad_domain(FactDomain domain);

/// One atomic piece of chip knowledge.
struct Fact {
  std::string id;        ///< unique key, e.g. "func.route_nets"
  FactDomain domain;
  std::string question;  ///< e.g. "what does command route_nets do?"
  std::string answer;    ///< short phrase, extractable from `context`
  std::string context;   ///< documentation sentence containing the answer
};

/// The complete synthetic knowledge base.
class FactBase {
 public:
  explicit FactBase(std::uint64_t seed = 0xFAC7ULL);

  const std::vector<Fact>& facts() const { return facts_; }

  /// Facts of one domain (pointers into facts()).
  std::vector<const Fact*> domain_facts(FactDomain domain) const;

  /// All documentation sentences: every fact context plus distractor
  /// sentences. This is the corpus the RAG pipeline indexes.
  const std::vector<std::string>& corpus_sentences() const { return corpus_; }

 private:
  void add_fact(Fact fact);

  std::vector<Fact> facts_;
  std::vector<std::string> corpus_;
};

}  // namespace chipalign
