#pragma once
/// \file qa_bench.hpp
/// \brief Evaluation-set builders for every benchmark in the paper.
///
/// * build_openroad_eval   — Table 1 / Figure 8: context-query-answer
///   triplets over the OpenROAD-style categories, every prompt carrying an
///   instruction header (as in the paper's Figure 5 all 90 items follow one
///   instruction block).
/// * build_industrial_eval — Table 2: ARCH/BUILD/LSF/TESTGEN items with two
///   turns each (the harness uses turn 1 for single-turn scoring and both
///   turns for multi-turn).
/// * build_mcq_eval        — Figure 7: closed-book multiple choice over the
///   EDA-scripts / bugs / circuits domains.
/// * build_ifeval_set      — Table 3: verifiable-instruction prompts checked
///   programmatically (no golden answer needed).

#include <cstdint>
#include <string>
#include <vector>

#include "data/fact_base.hpp"
#include "data/instructions.hpp"

namespace chipalign {

/// One OpenROAD-style eval triplet.
struct QaEvalItem {
  std::string id;
  FactDomain domain = FactDomain::kFunctionality;
  std::vector<InstructionKind> instructions;
  std::string question;
  std::string golden_context;  ///< the doc sentence containing the answer
  std::string plain_answer;    ///< raw fact answer
  std::string golden_answer;   ///< instructions applied to plain_answer
};

/// Builds `count` triplets round-robin over the three OpenROAD categories.
/// Instructions are drawn from the token-affecting subset ([P:], [X2], [W3])
/// so compliance is visible to ROUGE-L, as motivated in DESIGN.md.
std::vector<QaEvalItem> build_openroad_eval(const FactBase& facts,
                                            std::uint64_t seed, int count);

/// One industrial (production-style) QA item with follow-up turn.
struct IndustrialItem {
  struct Turn {
    std::string question;
    std::string golden_context;
    std::string plain_answer;
    std::string golden_answer;  ///< instructions applied
  };
  std::string id;
  FactDomain domain = FactDomain::kArch;
  std::vector<InstructionKind> instructions;
  std::vector<Turn> turns;  ///< exactly two turns
};

/// `per_domain` items over ARCH/BUILD/LSF/TESTGEN.
std::vector<IndustrialItem> build_industrial_eval(const FactBase& facts,
                                                  std::uint64_t seed,
                                                  int per_domain);

/// Closed-book multiple-choice question.
struct McqItem {
  std::string id;
  FactDomain domain = FactDomain::kFunctionality;
  std::string question;
  std::vector<std::string> choices;  ///< 4 options
  int correct_index = 0;
};

/// `per_domain` questions over {Functionality(EDA scripts), Bugs, Circuits}.
std::vector<McqItem> build_mcq_eval(const FactBase& facts, std::uint64_t seed,
                                    int per_domain);

/// One IFEval-style prompt (pure format task; compliance is checkable
/// without a golden answer).
struct IfEvalItem {
  std::string id;
  std::vector<InstructionKind> instructions;
  std::string prompt;
};

std::vector<IfEvalItem> build_ifeval_set(std::uint64_t seed, int count,
                                         int max_instructions = 3);

}  // namespace chipalign
