#include "data/fact_base.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace chipalign {

std::string domain_name(FactDomain domain) {
  switch (domain) {
    case FactDomain::kFunctionality:
      return "Functionality";
    case FactDomain::kVlsiFlow:
      return "VLSI Flow";
    case FactDomain::kGuiInstallTest:
      return "GUI & Install & Test";
    case FactDomain::kArch:
      return "ARCH";
    case FactDomain::kBuild:
      return "BUILD";
    case FactDomain::kLsf:
      return "LSF";
    case FactDomain::kTestgen:
      return "TESTGEN";
    case FactDomain::kBugs:
      return "Bugs";
    case FactDomain::kCircuits:
      return "Circuits";
  }
  CA_THROW("unknown fact domain");
}

bool is_openroad_domain(FactDomain domain) {
  return domain == FactDomain::kFunctionality ||
         domain == FactDomain::kVlsiFlow ||
         domain == FactDomain::kGuiInstallTest;
}

namespace {

/// (base form, third person form) verb pairs for command descriptions.
struct Verb {
  const char* base;
  const char* third;
};

constexpr Verb kVerbs[] = {
    {"route", "routes"}, {"place", "places"}, {"check", "checks"},
    {"scan", "scans"},   {"fix", "fixes"},    {"mark", "marks"},
    {"sort", "sorts"},   {"trim", "trims"},
};
constexpr const char* kObjects[] = {"nets",   "pins",  "cells", "paths",
                                    "clocks", "ports", "rails", "vias"};
constexpr const char* kModes[] = {"fast", "full", "safe", "tight", "wide",
                                  "cold"};

constexpr const char* kStages[] = {"synth", "floor", "place", "cts",  "route",
                                   "fill",  "drc",   "lvs",   "sign", "export"};
constexpr const char* kStageOutputs[] = {
    "netlist",     "die plan",    "cell map",     "clock tree", "wire map",
    "fill map",    "rule report", "match report", "final sign", "gds file"};

constexpr const char* kPanels[] = {"timing panel", "power view", "net tree",
                                   "log pane",     "grid map",   "pin list",
                                   "drc view",     "help page",  "clock view",
                                   "area view"};
constexpr const char* kIcons[] = {"clock", "bolt", "tree", "scroll", "grid",
                                  "pin",   "rule", "book", "wave",   "box"};

constexpr const char* kUnits[] = {"core",  "cache", "fetch", "decode",
                                  "issue", "alu",   "fpu",   "lsu"};
constexpr const char* kParts[] = {"adder", "buffer", "mux",   "latch",
                                  "queue", "port",   "stage", "bank"};

constexpr const char* kTargets[] = {"alpha", "beta",  "gamma", "delta",
                                    "omega", "sigma", "kappa", "theta"};
constexpr const char* kQueues[] = {"short", "long", "night", "prio",
                                   "bulk",  "gpu",  "mem",   "spot"};
constexpr const char* kJobs[] = {"lint", "sim",  "cover", "merge",
                                 "gen",  "pack", "sweep", "probe"};
constexpr const char* kTestObjs[] = {"fetch", "cache", "queue", "timer",
                                     "stack", "gate",  "bus",   "lane"};
constexpr const char* kSymptoms[] = {"a stall", "a drop", "a glitch", "a halt",
                                     "a skew",  "a leak", "a race",
                                         "a spike"};
constexpr const char* kBugObjs[] = {"clock", "reset", "fetch", "cache",
                                    "write", "read",  "merge", "flush"};
constexpr const char* kCircuitNames[] = {"adder",  "shifter", "counter",
                                         "decoder", "mixer",  "divider",
                                         "sampler", "driver"};
constexpr const char* kComponents[] = {"nand", "nor", "xor", "mux",
                                       "flop", "inv", "and", "buf"};

}  // namespace

void FactBase::add_fact(Fact fact) {
  corpus_.push_back(fact.context);
  facts_.push_back(std::move(fact));
}

FactBase::FactBase(std::uint64_t seed) {
  Rng rng(seed);

  // Functionality: EDA commands, name = <verb>_<object>.
  for (int i = 0; i < 14; ++i) {
    const Verb& verb = kVerbs[static_cast<std::size_t>(rng.uniform_index(8))];
    const char* obj = kObjects[static_cast<std::size_t>(rng.uniform_index(8))];
    const char* mode = kModes[static_cast<std::size_t>(rng.uniform_index(6))];
    const std::string name = std::string(verb.base) + "_" + obj;
    Fact fact;
    fact.id = "func." + name;
    if (std::any_of(facts_.begin(), facts_.end(),
                    [&](const Fact& f) { return f.id == fact.id; })) {
      --i;
      continue;
    }
    fact.domain = FactDomain::kFunctionality;
    fact.question = "what does command " + name + " do?";
    fact.answer =
        std::string(verb.third) + " the " + obj + " in " + mode + " mode";
    fact.context = "command " + name + " " + verb.third + " the " + obj +
                   " in " + mode + " mode";
    add_fact(std::move(fact));
  }

  // VLSI flow: stages and their outputs.
  for (int i = 0; i < 10; ++i) {
    const char* stage = kStages[i];
    const char* prev = kStages[(i + 9) % 10];
    const char* output = kStageOutputs[i];
    Fact fact;
    fact.id = std::string("flow.") + stage;
    fact.domain = FactDomain::kVlsiFlow;
    fact.question = std::string("what does stage ") + stage + " output?";
    fact.answer = std::string("the ") + output;
    fact.context = std::string("stage ") + stage + " runs after " + prev +
                   " and outputs the " + output;
    add_fact(std::move(fact));
  }

  // GUI & install & test: panels and how to open them.
  for (int i = 0; i < 10; ++i) {
    const char* panel = kPanels[i];
    const char* icon = kIcons[i];
    Fact fact;
    fact.id = std::string("gui.") + icon;
    fact.domain = FactDomain::kGuiInstallTest;
    fact.question = std::string("how to open the ") + panel + "?";
    fact.answer = std::string("click the ") + icon + " icon";
    fact.context = std::string("to open the ") + panel + " click the " + icon +
                   " icon in the top bar";
    add_fact(std::move(fact));
  }

  // ARCH: units and their contents.
  for (int i = 0; i < 8; ++i) {
    const char* unit = kUnits[i];
    const char* part = kParts[static_cast<std::size_t>(rng.uniform_index(8))];
    const int count = 2 + static_cast<int>(rng.uniform_index(7));
    Fact fact;
    fact.id = std::string("arch.") + unit;
    fact.domain = FactDomain::kArch;
    fact.question = std::string("what does the ") + unit + " unit have?";
    fact.answer = std::to_string(count) + " " + part + " blocks";
    fact.context = std::string("the ") + unit + " unit has " +
                   std::to_string(count) + " " + part + " blocks inside";
    add_fact(std::move(fact));
  }

  // BUILD: build targets and the tool invocation.
  for (int i = 0; i < 8; ++i) {
    const char* target = kTargets[i];
    Fact fact;
    fact.id = std::string("build.") + target;
    fact.domain = FactDomain::kBuild;
    fact.question = std::string("how to build target ") + target + "?";
    fact.answer = std::string("run tool zz -b ") + target;
    fact.context = std::string("run tool zz -b ") + target +
                   " to build the target " + target + " tree";
    add_fact(std::move(fact));
  }

  // LSF: job submission.
  for (int i = 0; i < 8; ++i) {
    const char* job = kJobs[i];
    const char* queue = kQueues[static_cast<std::size_t>(rng.uniform_index(8))];
    Fact fact;
    fact.id = std::string("lsf.") + job;
    fact.domain = FactDomain::kLsf;
    fact.question = std::string("how to submit job ") + job + "?";
    fact.answer = std::string("use bsub -q ") + queue;
    fact.context = std::string("to submit job ") + job + " use bsub -q " +
                   queue + " on the " + queue + " queue";
    add_fact(std::move(fact));
  }

  // TESTGEN: tests and what they check.
  for (int i = 0; i < 8; ++i) {
    const char* obj = kTestObjs[i];
    const int seed_num = 10 + static_cast<int>(rng.uniform_index(90));
    const std::string test = "t" + std::to_string(i + 1);
    Fact fact;
    fact.id = "testgen." + test;
    fact.domain = FactDomain::kTestgen;
    fact.question = "what does test " + test + " check?";
    fact.answer = std::string("the ") + obj + " logic";
    fact.context = "test " + test + " checks the " + obj + " logic with seed " +
                   std::to_string(seed_num);
    add_fact(std::move(fact));
  }

  // Bugs: bug ids and symptoms.
  for (int i = 0; i < 8; ++i) {
    const char* symptom = kSymptoms[i];
    const char* obj = kBugObjs[static_cast<std::size_t>(rng.uniform_index(8))];
    const std::string bug = "b" + std::to_string(100 + i);
    Fact fact;
    fact.id = "bugs." + bug;
    fact.domain = FactDomain::kBugs;
    fact.question = "what does bug " + bug + " cause?";
    fact.answer = std::string(symptom) + " in the " + obj + " path";
    fact.context =
        "bug " + bug + " causes " + symptom + " in the " + obj + " path";
    add_fact(std::move(fact));
  }

  // Circuits: circuit structures.
  for (int i = 0; i < 8; ++i) {
    const char* circuit = kCircuitNames[i];
    const char* comp =
        kComponents[static_cast<std::size_t>(rng.uniform_index(8))];
    const int count = 2 + static_cast<int>(rng.uniform_index(14));
    Fact fact;
    fact.id = std::string("circ.") + circuit;
    fact.domain = FactDomain::kCircuits;
    fact.question = std::string("what does the ") + circuit + " circuit use?";
    fact.answer = std::to_string(count) + " " + comp + " cells";
    fact.context = std::string("the ") + circuit + " circuit uses " +
                   std::to_string(count) + " " + comp + " cells";
    add_fact(std::move(fact));
  }

  // Distractor documentation sentences (retrievable but not the answer to
  // any question) to make the RAG setting non-trivial.
  const char* kFillers[] = {
      "the doc index lists every tool page in the user guide",
      "see the release note for the new flow options",
      "the setup page shows the license server steps",
      "each report ends with a summary line and a date",
      "use the search box to find a command by name",
      "the faq page covers common install errors",
      "every stage writes a log file in the run folder",
      "the gui theme can be dark or light in settings",
  };
  for (const char* filler : kFillers) corpus_.emplace_back(filler);

  // Sanity: unique fact ids.
  std::set<std::string> ids;
  for (const Fact& fact : facts_) {
    CA_CHECK(ids.insert(fact.id).second, "duplicate fact id " << fact.id);
  }
}

std::vector<const Fact*> FactBase::domain_facts(FactDomain domain) const {
  std::vector<const Fact*> out;
  for (const Fact& fact : facts_) {
    if (fact.domain == domain) out.push_back(&fact);
  }
  return out;
}

}  // namespace chipalign
