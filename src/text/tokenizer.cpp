#include "text/tokenizer.hpp"

#include "util/error.hpp"

namespace chipalign {

CharTokenizer::CharTokenizer() {
  for (auto& id : char_to_id_) id = kUnk;
  for (auto& c : id_to_char_) c = '\0';

  TokenId next = kFirstChar;
  auto add_char = [&](char c) {
    char_to_id_[static_cast<unsigned char>(c)] = next;
    id_to_char_[next] = c;
    ++next;
  };
  add_char('\n');
  for (int c = 0x20; c <= 0x7E; ++c) add_char(static_cast<char>(c));
  vocab_size_ = next;
}

std::vector<TokenId> CharTokenizer::encode(std::string_view text, bool add_bos,
                                           bool add_eos) const {
  std::vector<TokenId> out;
  out.reserve(text.size() + 2);
  if (add_bos) out.push_back(kBos);
  for (char c : text) out.push_back(char_to_id(c));
  if (add_eos) out.push_back(kEos);
  return out;
}

std::string CharTokenizer::decode(const std::vector<TokenId>& tokens) const {
  std::string out;
  out.reserve(tokens.size());
  for (TokenId id : tokens) {
    if (is_special(id)) continue;
    const char c = id_to_char(id);
    if (c != '\0') out += c;
  }
  return out;
}

char CharTokenizer::id_to_char(TokenId id) const {
  if (id < 0 || id >= vocab_size_ || is_special(id)) return '\0';
  return id_to_char_[id];
}

TokenId CharTokenizer::char_to_id(char c) const {
  return char_to_id_[static_cast<unsigned char>(c)];
}

const CharTokenizer& tokenizer() {
  static const CharTokenizer instance;
  return instance;
}

}  // namespace chipalign
