#pragma once
/// \file tokenizer.hpp
/// \brief Character-level tokenizer with special tokens.
///
/// The repo's models are character-level over printable ASCII: small enough
/// to train on a laptop, expressive enough for the synthetic EDA corpora.
/// Vocabulary layout (stable across the project — checkpoints depend on it):
///   0 <pad>   1 <bos>   2 <eos>   3 <unk>   4.. printable ASCII 0x20..0x7E
/// plus '\n' as an ordinary character.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chipalign {

using TokenId = std::int32_t;

/// Character tokenizer; stateless aside from the fixed vocabulary.
class CharTokenizer {
 public:
  static constexpr TokenId kPad = 0;
  static constexpr TokenId kBos = 1;
  static constexpr TokenId kEos = 2;
  static constexpr TokenId kUnk = 3;

  CharTokenizer();

  /// Total vocabulary size (special tokens + characters).
  std::int64_t vocab_size() const { return vocab_size_; }

  /// Encodes text to token ids. Unknown bytes map to <unk>.
  /// \param add_bos prepend <bos>; \param add_eos append <eos>.
  std::vector<TokenId> encode(std::string_view text, bool add_bos = false,
                              bool add_eos = false) const;

  /// Decodes ids back to text; special tokens are skipped.
  std::string decode(const std::vector<TokenId>& tokens) const;

  /// Single-character decode; '\0' for specials/invalid ids.
  char id_to_char(TokenId id) const;

  /// Token id of a character; <unk> for unsupported bytes.
  TokenId char_to_id(char c) const;

  bool is_special(TokenId id) const { return id >= 0 && id < kFirstChar; }

 private:
  static constexpr TokenId kFirstChar = 4;

  std::int64_t vocab_size_ = 0;
  TokenId char_to_id_[256];
  char id_to_char_[256];
};

/// Process-wide shared tokenizer instance.
const CharTokenizer& tokenizer();

}  // namespace chipalign
