#pragma once
/// \file backend.hpp
/// \brief Internal backend entry points for the kernel dispatch layer.
///
/// Both backends implement identical bit-level semantics (see kernels.hpp);
/// the dispatcher in kernels.cpp picks one at runtime and owns the blocking
/// and thread-pool fan-out, so backends only ever see contiguous panels.

#include <cstddef>
#include <cstdint>

namespace chipalign::kernels {

/// Shared lane-combine helper: the fixed pairwise tree over the 8 reduction
/// lanes mandated by the contract.
inline double combine_lanes(const double* lanes) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

namespace generic {
double dot(const float* a, const float* b, std::size_t n);
double sum_squares(const float* a, std::size_t n);
void axpy(float alpha, const float* x, float* y, std::size_t n);
void scale(float* x, float alpha, std::size_t n);
void hadamard(const float* x, float* y, std::size_t n);
void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n);
/// Rows [i0, i1) of c += a @ b.
void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n);
/// Rows [i0, i1) of c = a @ b^T.
void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n);
/// Columns [j0, j1) of c += a^T @ b.
void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1);
/// Rows [o0, o1) of y = w @ x (w row-major [out, in]).
void matvec_rows(const float* w, const float* x, float* y, std::int64_t o0,
                 std::int64_t o1, std::int64_t in_dim);
// Quantized variants: dequantize-on-the-fly with the same reduction shape.
double dot_f16(const std::uint16_t* a, const float* b, std::size_t n);
double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n);
double dot_i8(const std::int8_t* q, const float* x, std::size_t n);
void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n);
void matvec_f16_rows(const std::uint16_t* w, const float* x, float* y,
                     std::int64_t o0, std::int64_t o1, std::int64_t in_dim);
void matvec_bf16_rows(const std::uint16_t* w, const float* x, float* y,
                      std::int64_t o0, std::int64_t o1, std::int64_t in_dim);
void matvec_i8_rows(const std::int8_t* w, const float* scales, const float* x,
                    float* y, std::int64_t o0, std::int64_t o1,
                    std::int64_t in_dim);
void matmul_nt_f16_rows(const std::uint16_t* a, const float* b, float* c,
                        std::int64_t i0, std::int64_t i1, std::int64_t k,
                        std::int64_t n);
void matmul_nt_bf16_rows(const std::uint16_t* a, const float* b, float* c,
                         std::int64_t i0, std::int64_t i1, std::int64_t k,
                         std::int64_t n);
void matmul_nt_i8_rows(const std::int8_t* a, const float* a_scales,
                       const float* b, float* c, std::int64_t i0,
                       std::int64_t i1, std::int64_t k, std::int64_t n);
}  // namespace generic

#if defined(CHIPALIGN_HAVE_AVX2)
namespace avx2 {
double dot(const float* a, const float* b, std::size_t n);
double sum_squares(const float* a, std::size_t n);
void axpy(float alpha, const float* x, float* y, std::size_t n);
void scale(float* x, float alpha, std::size_t n);
void hadamard(const float* x, float* y, std::size_t n);
void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n);
void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n);
void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n);
void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1);
void matvec_rows(const float* w, const float* x, float* y, std::int64_t o0,
                 std::int64_t o1, std::int64_t in_dim);
// bf16 / int8 dequant uses only AVX2 integer ops; f16 additionally needs
// F16C (vcvtph2ps), probed separately and checked at runtime.
double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n);
double dot_i8(const std::int8_t* q, const float* x, std::size_t n);
void matvec_bf16_rows(const std::uint16_t* w, const float* x, float* y,
                      std::int64_t o0, std::int64_t o1, std::int64_t in_dim);
void matvec_i8_rows(const std::int8_t* w, const float* scales, const float* x,
                    float* y, std::int64_t o0, std::int64_t o1,
                    std::int64_t in_dim);
void matmul_nt_bf16_rows(const std::uint16_t* a, const float* b, float* c,
                         std::int64_t i0, std::int64_t i1, std::int64_t k,
                         std::int64_t n);
void matmul_nt_i8_rows(const std::int8_t* a, const float* a_scales,
                       const float* b, float* c, std::int64_t i0,
                       std::int64_t i1, std::int64_t k, std::int64_t n);
#if defined(CHIPALIGN_HAVE_F16C)
double dot_f16(const std::uint16_t* a, const float* b, std::size_t n);
void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n);
void matvec_f16_rows(const std::uint16_t* w, const float* x, float* y,
                     std::int64_t o0, std::int64_t o1, std::int64_t in_dim);
void matmul_nt_f16_rows(const std::uint16_t* a, const float* b, float* c,
                        std::int64_t i0, std::int64_t i1, std::int64_t k,
                        std::int64_t n);
#endif
}  // namespace avx2
#endif

}  // namespace chipalign::kernels
