#pragma once
/// \file kernels.hpp
/// \brief SIMD-friendly tensor kernels with a deterministic-reduction contract.
///
/// This layer provides the hot inner loops behind tensor_ops: dot, norm,
/// axpy, scale, hadamard, the fused scaled_sum (a*x + b*y — the SLERP
/// combine), blocked matmul variants, and the matvec family driving
/// token-by-token inference. Two backends implement the same bit-level
/// contract:
///
///   - generic: unrolled multi-accumulator scalar code the compiler can
///     auto-vectorize; always compiled.
///   - avx2: AVX2+FMA intrinsics; compiled when the toolchain supports
///     -mavx2 -mfma (CMake feature check) and selected at runtime when the
///     CPU reports both features.
///
/// ## Deterministic-reduction contract
///
/// Every reduction (dot, norm, the inner products of matmul_nt) accumulates
/// float products into kLanes = 8 double-precision lanes keyed by element
/// index: element i of an 8-aligned block feeds lane i mod 8, and tail
/// element i feeds lane i - (n & ~7). Lanes are combined in the fixed
/// pairwise tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). Because the product
/// of two fp32 values is exact in fp64 (24+24 significand bits < 53), fused
/// and unfused multiply-add produce identical bits, so the AVX2 FMA path and
/// the generic mul-then-add path agree bit-for-bit. Elementwise kernels do
/// per-element mul/add with FP contraction disabled. Matmul accumulates in a
/// fixed (i, k, j) loop order that cache blocking and row/column
/// parallelization both preserve. Consequences:
///
///   - results are bit-identical run-to-run, across thread counts, and
///     across backends (kernels::X == kernels::ref::X, bitwise);
///   - merge_streaming and merge_checkpoints stay byte-identical (the PR 1
///     invariant) no matter which backend executes them;
///   - there are no value-dependent fast paths, so NaN/Inf propagate exactly
///     as IEEE arithmetic dictates.
///
/// kernels::ref is the executable specification: straight-line scalar code
/// whose summation shape *defines* the contract. Property tests assert
/// bitwise equality of every backend against it on random shapes.
///
/// Large matmuls parallelize across the global ThreadPool in fixed-size row
/// (matmul, matmul_nt) or column (matmul_tn_accum) blocks; block geometry
/// depends only on the problem shape, never on the thread count.
///
/// ## Quantized kernels
///
/// The _f16 / _bf16 / _i8 variants read sub-fp32 weight storage and
/// dequantize on the fly. Every stored element converts *exactly* to fp32
/// (f16 and bf16 are fp32 subsets; int8 codes are small integers) before
/// feeding the same 8-lane fp64 reduction, so the contract above — bitwise
/// run-to-run, thread-count and backend invariance — holds unchanged. The
/// int8 per-row scale is factored out of the reduction and applied once per
/// output in fp64 (y[o] = float(scale[o] * dot), with the dot's lanes
/// accumulating exact double(q)*double(x) products), so the scale never
/// perturbs lane order. The AVX2 f16 path additionally requires F16C
/// (probed at compile time, checked at runtime) and falls back to the
/// generic backend without it.

#include <cstddef>
#include <cstdint>

namespace chipalign {
class ThreadPool;
}  // namespace chipalign

namespace chipalign::kernels {

/// Number of reduction lanes fixed by the contract (AVX2 fp32 width).
inline constexpr std::size_t kLanes = 8;

/// True when the AVX2 backend is compiled in and this CPU supports AVX2+FMA.
bool simd_available();

/// Name of the backend dispatch currently selects: "avx2" or "generic".
const char* backend_name();

/// Test/bench hook: when true, dispatch ignores AVX2 and runs the generic
/// backend. Not thread-safe; flip only around single-threaded test sections.
void force_generic(bool on);

// -- tuning ------------------------------------------------------------------

/// MAC threshold below which parallel_matvec runs serially. The default is
/// 2^21 (~2M MACs, roughly half a millisecond of serial work): profiling
/// the decode path showed that even with the work-sharing parallel_for
/// dispatch, fanning out sub-half-millisecond projections loses more to
/// worker wake-up latency than the parallelism recovers (the near-1.0x
/// 1→4-thread scaling ROADMAP item 5 describes). Overridable per host via
/// the CHIPALIGN_MATVEC_PAR_MACS environment variable (read once) or
/// set_matvec_parallel_macs().
std::int64_t matvec_parallel_macs();

/// Overrides the parallel_matvec threshold; 0 restores the built-in/env
/// default. Like force_generic, not thread-safe: set it before spinning up
/// concurrent work (bench/test hook).
void set_matvec_parallel_macs(std::int64_t macs);

// -- reductions (8-lane double accumulation, fixed combine tree) -------------

/// Sum of elementwise products, accumulated per the reduction contract.
double dot(const float* a, const float* b, std::size_t n);

/// Euclidean norm: sqrt of the contract-reduced sum of squares.
double norm(const float* a, std::size_t n);

// -- elementwise kernels (per-element mul/add, no contraction) ---------------

/// y[i] += alpha * x[i].
void axpy(float alpha, const float* x, float* y, std::size_t n);

/// x[i] *= alpha.
void scale(float* x, float alpha, std::size_t n);

/// y[i] *= x[i].
void hadamard(const float* x, float* y, std::size_t n);

/// out[i] = a*x[i] + b*y[i] — the fused SLERP/LERP combine. One pass over
/// three streams instead of the scale+scale+add sequence it replaces.
void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n);

// -- blocked matmul kernels ---------------------------------------------------

/// c[m,n] += a[m,k] @ b[k,n], row-major, fp32 accumulation in (i, k, j)
/// order. No value-dependent skips: NaN/Inf in either operand propagate.
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n);

/// c[m,n] = a[m,k] @ b[n,k]^T: c[i,j] is the contract-reduced dot of row i
/// of a and row j of b (fp64 lanes, like dot()).
void matmul_nt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// c[k,n] += a[m,k]^T @ b[m,n], fp32 accumulation in (i, kk, j) order.
void matmul_tn_accum(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

// -- matvec kernels (the token-decode hot path) -------------------------------

/// y[o] = dot(w row o, x) for w [out_dim, in_dim] row-major: each output is
/// the contract-reduced (8-lane fp64, fixed pairwise tree) inner product, so
/// matvec(w, x, ...) == matmul_nt(x, w, ...) bit-for-bit on the same data.
/// Serial over rows.
void matvec(const float* w, const float* x, float* y, std::int64_t out_dim,
            std::int64_t in_dim);

/// Row-blocked matvec fanned across `pool` (nullptr selects the global
/// pool). Every y[o] is computed by exactly one task with the same per-row
/// reduction as matvec(), so the result is bitwise identical to matvec()
/// for any pool size — including pool == nullptr inside a pool worker,
/// where the fan-out runs inline. Small problems stay serial.
void parallel_matvec(const float* w, const float* x, float* y,
                     std::int64_t out_dim, std::int64_t in_dim,
                     ThreadPool* pool = nullptr);

// -- quantized kernels (dequantize-on-the-fly, same reduction contract) ------

/// dot() with `a` stored as fp16 bit patterns: each element converts exactly
/// to fp32 before entering the 8-lane fp64 reduction.
double dot_f16(const std::uint16_t* a, const float* b, std::size_t n);

/// dot() with `a` stored as bf16 bit patterns (exact high-half expansion).
double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n);

/// Unscaled int8 dot: lanes accumulate double(float(q[i])) * double(x[i]).
/// Callers apply the per-row scale once on the combined result.
double dot_i8(const std::int8_t* q, const float* x, std::size_t n);

/// y[i] += alpha * f16(x[i]) — the fp16 KV-cache attention accumulate.
void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n);

/// matvec() over fp16-stored weights: y[o] = float(dot_f16(w row o, x)).
void matvec_f16(const std::uint16_t* w, const float* x, float* y,
                std::int64_t out_dim, std::int64_t in_dim);

/// matvec() over bf16-stored weights.
void matvec_bf16(const std::uint16_t* w, const float* x, float* y,
                 std::int64_t out_dim, std::int64_t in_dim);

/// matvec() over int8 weights with per-row scales:
/// y[o] = float(double(scales[o]) * dot_i8(w row o, x)).
void matvec_i8(const std::int8_t* w, const float* scales, const float* x,
               float* y, std::int64_t out_dim, std::int64_t in_dim);

/// parallel_matvec() counterparts: identical per-row arithmetic, fanned in
/// the same fixed row blocks, bitwise equal to the serial variants for any
/// pool size.
void parallel_matvec_f16(const std::uint16_t* w, const float* x, float* y,
                         std::int64_t out_dim, std::int64_t in_dim,
                         ThreadPool* pool = nullptr);
void parallel_matvec_bf16(const std::uint16_t* w, const float* x, float* y,
                          std::int64_t out_dim, std::int64_t in_dim,
                          ThreadPool* pool = nullptr);
void parallel_matvec_i8(const std::int8_t* w, const float* scales,
                        const float* x, float* y, std::int64_t out_dim,
                        std::int64_t in_dim, ThreadPool* pool = nullptr);

/// matmul_nt() with a quantized A operand (the batched-decode projections:
/// A = weights [m,k], B = activations [n,k]). Row i of the output uses the
/// exact matvec_* per-row arithmetic, so batched decode stays bitwise equal
/// to serial decode under quantization.
void matmul_nt_f16(const std::uint16_t* a, const float* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n);
void matmul_nt_bf16(const std::uint16_t* a, const float* b, float* c,
                    std::int64_t m, std::int64_t k, std::int64_t n);
void matmul_nt_i8(const std::int8_t* a, const float* a_scales, const float* b,
                  float* c, std::int64_t m, std::int64_t k, std::int64_t n);

/// Retained scalar reference: the executable definition of the contract.
/// Every kernels::X above must equal kernels::ref::X bit-for-bit.
namespace ref {
double dot(const float* a, const float* b, std::size_t n);
double norm(const float* a, std::size_t n);
void axpy(float alpha, const float* x, float* y, std::size_t n);
void scale(float* x, float alpha, std::size_t n);
void hadamard(const float* x, float* y, std::size_t n);
void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n);
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n);
void matmul_nt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);
void matmul_tn_accum(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);
void matvec(const float* w, const float* x, float* y, std::int64_t out_dim,
            std::int64_t in_dim);
double dot_f16(const std::uint16_t* a, const float* b, std::size_t n);
double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n);
double dot_i8(const std::int8_t* q, const float* x, std::size_t n);
void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n);
void matvec_f16(const std::uint16_t* w, const float* x, float* y,
                std::int64_t out_dim, std::int64_t in_dim);
void matvec_bf16(const std::uint16_t* w, const float* x, float* y,
                 std::int64_t out_dim, std::int64_t in_dim);
void matvec_i8(const std::int8_t* w, const float* scales, const float* x,
               float* y, std::int64_t out_dim, std::int64_t in_dim);
void matmul_nt_f16(const std::uint16_t* a, const float* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n);
void matmul_nt_bf16(const std::uint16_t* a, const float* b, float* c,
                    std::int64_t m, std::int64_t k, std::int64_t n);
void matmul_nt_i8(const std::int8_t* a, const float* a_scales, const float* b,
                  float* c, std::int64_t m, std::int64_t k, std::int64_t n);
}  // namespace ref

}  // namespace chipalign::kernels
