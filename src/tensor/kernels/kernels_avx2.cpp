/// \file kernels_avx2.cpp
/// \brief AVX2+FMA backend. Compiled only when the toolchain supports
/// -mavx2 -mfma (CMake feature check defines CHIPALIGN_HAVE_AVX2); selected
/// at runtime only when the CPU reports both features.
///
/// Bit-compatibility with the reference (see kernels.hpp): reductions use
/// two 4-lane fp64 accumulators covering the 8 contract lanes, FMA is used
/// only on fp64 accumulation where the fp32 product is exact, and all fp32
/// elementwise/matmul arithmetic is explicit mul-then-add.

#if defined(CHIPALIGN_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

#include "tensor/kernels/backend.hpp"
#include "tensor/kernels/kernels.hpp"

namespace chipalign::kernels::avx2 {

namespace {

/// Contract-shaped dot: 8 fp64 lanes (acc_lo = offsets 0..3 of each 8-block,
/// acc_hi = offsets 4..7), fixed pairwise combine.
inline double dot_lanes(const float* a, const float* b, std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_fmadd_pd(a_lo, b_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(a_hi, b_hi, acc_hi);
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

}  // namespace

double dot(const float* a, const float* b, std::size_t n) {
  return dot_lanes(a, b, n);
}

double sum_squares(const float* a, std::size_t n) { return dot_lanes(a, a, n); }

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 p0 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 p1 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p0));
    _mm256_storeu_ps(y + i + 8, _mm256_add_ps(_mm256_loadu_ps(y + i + 8), p1));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(x + i + 8, _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void hadamard(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256 vb = _mm256_set1_ps(b);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 px = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 py = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(px, py));
  }
  for (; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      const float* b_row = b + kk * n;
      const __m256 vav = _mm256_set1_ps(aval);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_lanes(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      float* c_row = c + kk * n;
      const __m256 vav = _mm256_set1_ps(aval);
      std::int64_t j = j0;
      for (; j + 8 <= j1; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < j1; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

}  // namespace chipalign::kernels::avx2

#endif  // CHIPALIGN_HAVE_AVX2
