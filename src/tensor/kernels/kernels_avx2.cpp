/// \file kernels_avx2.cpp
/// \brief AVX2+FMA backend. Compiled only when the toolchain supports
/// -mavx2 -mfma (CMake feature check defines CHIPALIGN_HAVE_AVX2); selected
/// at runtime only when the CPU reports both features.
///
/// Bit-compatibility with the reference (see kernels.hpp): reductions use
/// two 4-lane fp64 accumulators covering the 8 contract lanes, FMA is used
/// only on fp64 accumulation where the fp32 product is exact, and all fp32
/// elementwise/matmul arithmetic is explicit mul-then-add.

#if defined(CHIPALIGN_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

#include "tensor/half.hpp"
#include "tensor/kernels/backend.hpp"
#include "tensor/kernels/kernels.hpp"

namespace chipalign::kernels::avx2 {

namespace {

/// Contract-shaped dot: 8 fp64 lanes (acc_lo = offsets 0..3 of each 8-block,
/// acc_hi = offsets 4..7), fixed pairwise combine.
inline double dot_lanes(const float* a, const float* b, std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_fmadd_pd(a_lo, b_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(a_hi, b_hi, acc_hi);
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

/// Four rows of W against one x at once. Each row keeps its own pair of
/// fp64 lane accumulators and performs the exact dot_lanes arithmetic
/// sequence, so the results are bitwise identical to four dot_lanes calls;
/// the converted x halves are shared, and the four independent FMA chains
/// hide the fp64 FMA latency that serializes a single row (the decode
/// matvec hot path is ~2x faster for it).
inline void dot4_lanes(const float* w0, const float* w1, const float* w2,
                       const float* w3, const float* x, float* y,
                       std::size_t n) {
  __m256d a0_lo = _mm256_setzero_pd();
  __m256d a0_hi = _mm256_setzero_pd();
  __m256d a1_lo = _mm256_setzero_pd();
  __m256d a1_hi = _mm256_setzero_pd();
  __m256d a2_lo = _mm256_setzero_pd();
  __m256d a2_hi = _mm256_setzero_pd();
  __m256d a3_lo = _mm256_setzero_pd();
  __m256d a3_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vx));
    const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1));
    const __m256 v0 = _mm256_loadu_ps(w0 + i);
    a0_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v0)),
                            x_lo, a0_lo);
    a0_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v0, 1)),
                            x_hi, a0_hi);
    const __m256 v1 = _mm256_loadu_ps(w1 + i);
    a1_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v1)),
                            x_lo, a1_lo);
    a1_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v1, 1)),
                            x_hi, a1_hi);
    const __m256 v2 = _mm256_loadu_ps(w2 + i);
    a2_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v2)),
                            x_lo, a2_lo);
    a2_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v2, 1)),
                            x_hi, a2_hi);
    const __m256 v3 = _mm256_loadu_ps(w3 + i);
    a3_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v3)),
                            x_lo, a3_lo);
    a3_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v3, 1)),
                            x_hi, a3_hi);
  }
  double lanes[4][kLanes];
  _mm256_storeu_pd(lanes[0], a0_lo);
  _mm256_storeu_pd(lanes[0] + 4, a0_hi);
  _mm256_storeu_pd(lanes[1], a1_lo);
  _mm256_storeu_pd(lanes[1] + 4, a1_hi);
  _mm256_storeu_pd(lanes[2], a2_lo);
  _mm256_storeu_pd(lanes[2] + 4, a2_hi);
  _mm256_storeu_pd(lanes[3], a3_lo);
  _mm256_storeu_pd(lanes[3] + 4, a3_hi);
  const float* rows[4] = {w0, w1, w2, w3};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t i = n8; i < n; ++i) {
      lanes[r][i - n8] +=
          static_cast<double>(rows[r][i]) * static_cast<double>(x[i]);
    }
    y[r] = static_cast<float>(combine_lanes(lanes[r]));
  }
}

// -- quantized loaders --------------------------------------------------------
//
// Each loader expands 8 stored elements to an exact fp32 vector; the
// templated dot bodies below then perform the identical fp64 FMA sequence
// as dot_lanes / dot4_lanes, so quantized results match the scalar
// reference bit-for-bit.

struct VLoadBF16 {
  using Elem = std::uint16_t;
  static __m256 vec(const Elem* p) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
  }
  static float scalar(Elem v) { return bf16_bits_to_f32(v); }
};

struct VLoadI8 {
  using Elem = std::int8_t;
  static __m256 vec(const Elem* p) {
    const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
  }
  static float scalar(Elem v) { return static_cast<float>(v); }
};

#if defined(CHIPALIGN_HAVE_F16C)
struct VLoadF16 {
  using Elem = std::uint16_t;
  static __m256 vec(const Elem* p) {
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static float scalar(Elem v) { return f16_bits_to_f32(v); }
};
#endif

/// dot_lanes with a dequantizing load on the `a` stream.
template <typename L>
inline double dot_lanes_q(const typename L::Elem* a, const float* b,
                          std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 va = L::vec(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_fmadd_pd(a_lo, b_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(a_hi, b_hi, acc_hi);
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] +=
        static_cast<double>(L::scalar(a[i])) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

/// dot4_lanes over quantized rows: identical per-row arithmetic to four
/// dot_lanes_q calls, shared converted x halves, four independent FMA
/// chains. Outputs the raw fp64 dots so the int8 caller can apply per-row
/// scales before the final float cast.
template <typename L>
inline void dot4_lanes_q(const typename L::Elem* w0,
                         const typename L::Elem* w1,
                         const typename L::Elem* w2,
                         const typename L::Elem* w3, const float* x,
                         double* out, std::size_t n) {
  __m256d a0_lo = _mm256_setzero_pd();
  __m256d a0_hi = _mm256_setzero_pd();
  __m256d a1_lo = _mm256_setzero_pd();
  __m256d a1_hi = _mm256_setzero_pd();
  __m256d a2_lo = _mm256_setzero_pd();
  __m256d a2_hi = _mm256_setzero_pd();
  __m256d a3_lo = _mm256_setzero_pd();
  __m256d a3_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vx));
    const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1));
    const __m256 v0 = L::vec(w0 + i);
    a0_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v0)),
                            x_lo, a0_lo);
    a0_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v0, 1)),
                            x_hi, a0_hi);
    const __m256 v1 = L::vec(w1 + i);
    a1_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v1)),
                            x_lo, a1_lo);
    a1_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v1, 1)),
                            x_hi, a1_hi);
    const __m256 v2 = L::vec(w2 + i);
    a2_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v2)),
                            x_lo, a2_lo);
    a2_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v2, 1)),
                            x_hi, a2_hi);
    const __m256 v3 = L::vec(w3 + i);
    a3_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v3)),
                            x_lo, a3_lo);
    a3_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v3, 1)),
                            x_hi, a3_hi);
  }
  double lanes[4][kLanes];
  _mm256_storeu_pd(lanes[0], a0_lo);
  _mm256_storeu_pd(lanes[0] + 4, a0_hi);
  _mm256_storeu_pd(lanes[1], a1_lo);
  _mm256_storeu_pd(lanes[1] + 4, a1_hi);
  _mm256_storeu_pd(lanes[2], a2_lo);
  _mm256_storeu_pd(lanes[2] + 4, a2_hi);
  _mm256_storeu_pd(lanes[3], a3_lo);
  _mm256_storeu_pd(lanes[3] + 4, a3_hi);
  const typename L::Elem* rows[4] = {w0, w1, w2, w3};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t i = n8; i < n; ++i) {
      lanes[r][i - n8] += static_cast<double>(L::scalar(rows[r][i])) *
                          static_cast<double>(x[i]);
    }
    out[r] = combine_lanes(lanes[r]);
  }
}

/// Rows [o0, o1) of a quantized matvec, 4-row blocked like matvec_rows.
template <typename L>
inline void matvec_rows_q(const typename L::Elem* w, const float* x, float* y,
                          std::int64_t o0, std::int64_t o1,
                          std::int64_t in_dim) {
  const auto n = static_cast<std::size_t>(in_dim);
  std::int64_t o = o0;
  for (; o + 4 <= o1; o += 4) {
    const typename L::Elem* base = w + o * in_dim;
    double d[4];
    dot4_lanes_q<L>(base, base + in_dim, base + 2 * in_dim,
                    base + 3 * in_dim, x, d, n);
    for (std::size_t r = 0; r < 4; ++r) {
      y[o + static_cast<std::int64_t>(r)] = static_cast<float>(d[r]);
    }
  }
  for (; o < o1; ++o) {
    y[o] = static_cast<float>(dot_lanes_q<L>(w + o * in_dim, x, n));
  }
}

}  // namespace

double dot(const float* a, const float* b, std::size_t n) {
  return dot_lanes(a, b, n);
}

double sum_squares(const float* a, std::size_t n) { return dot_lanes(a, a, n); }

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 p0 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 p1 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p0));
    _mm256_storeu_ps(y + i + 8, _mm256_add_ps(_mm256_loadu_ps(y + i + 8), p1));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(x + i + 8, _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void hadamard(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256 vb = _mm256_set1_ps(b);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 px = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 py = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(px, py));
  }
  for (; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      const float* b_row = b + kk * n;
      const __m256 vav = _mm256_set1_ps(aval);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_lanes(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      float* c_row = c + kk * n;
      const __m256 vav = _mm256_set1_ps(aval);
      std::int64_t j = j0;
      for (; j + 8 <= j1; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < j1; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matvec_rows(const float* w, const float* x, float* y, std::int64_t o0,
                 std::int64_t o1, std::int64_t in_dim) {
  const auto n = static_cast<std::size_t>(in_dim);
  std::int64_t o = o0;
  for (; o + 4 <= o1; o += 4) {
    const float* base = w + o * in_dim;
    dot4_lanes(base, base + in_dim, base + 2 * in_dim, base + 3 * in_dim, x,
               y + o, n);
  }
  for (; o < o1; ++o) {
    y[o] = static_cast<float>(dot_lanes(w + o * in_dim, x, n));
  }
}

double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n) {
  return dot_lanes_q<VLoadBF16>(a, b, n);
}

double dot_i8(const std::int8_t* q, const float* x, std::size_t n) {
  return dot_lanes_q<VLoadI8>(q, x, n);
}

void matvec_bf16_rows(const std::uint16_t* w, const float* x, float* y,
                      std::int64_t o0, std::int64_t o1, std::int64_t in_dim) {
  matvec_rows_q<VLoadBF16>(w, x, y, o0, o1, in_dim);
}

void matvec_i8_rows(const std::int8_t* w, const float* scales, const float* x,
                    float* y, std::int64_t o0, std::int64_t o1,
                    std::int64_t in_dim) {
  const auto n = static_cast<std::size_t>(in_dim);
  std::int64_t o = o0;
  for (; o + 4 <= o1; o += 4) {
    const std::int8_t* base = w + o * in_dim;
    double d[4];
    dot4_lanes_q<VLoadI8>(base, base + in_dim, base + 2 * in_dim,
                          base + 3 * in_dim, x, d, n);
    for (std::size_t r = 0; r < 4; ++r) {
      const std::int64_t row = o + static_cast<std::int64_t>(r);
      y[row] = static_cast<float>(static_cast<double>(scales[row]) * d[r]);
    }
  }
  for (; o < o1; ++o) {
    y[o] = static_cast<float>(static_cast<double>(scales[o]) *
                              dot_lanes_q<VLoadI8>(w + o * in_dim, x, n));
  }
}

void matmul_nt_bf16_rows(const std::uint16_t* a, const float* b, float* c,
                         std::int64_t i0, std::int64_t i1, std::int64_t k,
                         std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::uint16_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(dot_lanes_q<VLoadBF16>(
          a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_nt_i8_rows(const std::int8_t* a, const float* a_scales,
                       const float* b, float* c, std::int64_t i0,
                       std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::int8_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          static_cast<double>(a_scales[i]) *
          dot_lanes_q<VLoadI8>(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

#if defined(CHIPALIGN_HAVE_F16C)
double dot_f16(const std::uint16_t* a, const float* b, std::size_t n) {
  return dot_lanes_q<VLoadF16>(a, b, n);
}

void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 p = _mm256_mul_ps(va, VLoadF16::vec(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p));
  }
  for (; i < n; ++i) y[i] += alpha * f16_bits_to_f32(x[i]);
}

void matvec_f16_rows(const std::uint16_t* w, const float* x, float* y,
                     std::int64_t o0, std::int64_t o1, std::int64_t in_dim) {
  matvec_rows_q<VLoadF16>(w, x, y, o0, o1, in_dim);
}

void matmul_nt_f16_rows(const std::uint16_t* a, const float* b, float* c,
                        std::int64_t i0, std::int64_t i1, std::int64_t k,
                        std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::uint16_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(dot_lanes_q<VLoadF16>(
          a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}
#endif  // CHIPALIGN_HAVE_F16C

}  // namespace chipalign::kernels::avx2

#endif  // CHIPALIGN_HAVE_AVX2
