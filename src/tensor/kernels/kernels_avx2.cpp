/// \file kernels_avx2.cpp
/// \brief AVX2+FMA backend. Compiled only when the toolchain supports
/// -mavx2 -mfma (CMake feature check defines CHIPALIGN_HAVE_AVX2); selected
/// at runtime only when the CPU reports both features.
///
/// Bit-compatibility with the reference (see kernels.hpp): reductions use
/// two 4-lane fp64 accumulators covering the 8 contract lanes, FMA is used
/// only on fp64 accumulation where the fp32 product is exact, and all fp32
/// elementwise/matmul arithmetic is explicit mul-then-add.

#if defined(CHIPALIGN_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

#include "tensor/kernels/backend.hpp"
#include "tensor/kernels/kernels.hpp"

namespace chipalign::kernels::avx2 {

namespace {

/// Contract-shaped dot: 8 fp64 lanes (acc_lo = offsets 0..3 of each 8-block,
/// acc_hi = offsets 4..7), fixed pairwise combine.
inline double dot_lanes(const float* a, const float* b, std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_fmadd_pd(a_lo, b_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(a_hi, b_hi, acc_hi);
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

/// Four rows of W against one x at once. Each row keeps its own pair of
/// fp64 lane accumulators and performs the exact dot_lanes arithmetic
/// sequence, so the results are bitwise identical to four dot_lanes calls;
/// the converted x halves are shared, and the four independent FMA chains
/// hide the fp64 FMA latency that serializes a single row (the decode
/// matvec hot path is ~2x faster for it).
inline void dot4_lanes(const float* w0, const float* w1, const float* w2,
                       const float* w3, const float* x, float* y,
                       std::size_t n) {
  __m256d a0_lo = _mm256_setzero_pd();
  __m256d a0_hi = _mm256_setzero_pd();
  __m256d a1_lo = _mm256_setzero_pd();
  __m256d a1_hi = _mm256_setzero_pd();
  __m256d a2_lo = _mm256_setzero_pd();
  __m256d a2_hi = _mm256_setzero_pd();
  __m256d a3_lo = _mm256_setzero_pd();
  __m256d a3_hi = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vx));
    const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1));
    const __m256 v0 = _mm256_loadu_ps(w0 + i);
    a0_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v0)),
                            x_lo, a0_lo);
    a0_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v0, 1)),
                            x_hi, a0_hi);
    const __m256 v1 = _mm256_loadu_ps(w1 + i);
    a1_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v1)),
                            x_lo, a1_lo);
    a1_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v1, 1)),
                            x_hi, a1_hi);
    const __m256 v2 = _mm256_loadu_ps(w2 + i);
    a2_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v2)),
                            x_lo, a2_lo);
    a2_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v2, 1)),
                            x_hi, a2_hi);
    const __m256 v3 = _mm256_loadu_ps(w3 + i);
    a3_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v3)),
                            x_lo, a3_lo);
    a3_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v3, 1)),
                            x_hi, a3_hi);
  }
  double lanes[4][kLanes];
  _mm256_storeu_pd(lanes[0], a0_lo);
  _mm256_storeu_pd(lanes[0] + 4, a0_hi);
  _mm256_storeu_pd(lanes[1], a1_lo);
  _mm256_storeu_pd(lanes[1] + 4, a1_hi);
  _mm256_storeu_pd(lanes[2], a2_lo);
  _mm256_storeu_pd(lanes[2] + 4, a2_hi);
  _mm256_storeu_pd(lanes[3], a3_lo);
  _mm256_storeu_pd(lanes[3] + 4, a3_hi);
  const float* rows[4] = {w0, w1, w2, w3};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t i = n8; i < n; ++i) {
      lanes[r][i - n8] +=
          static_cast<double>(rows[r][i]) * static_cast<double>(x[i]);
    }
    y[r] = static_cast<float>(combine_lanes(lanes[r]));
  }
}

}  // namespace

double dot(const float* a, const float* b, std::size_t n) {
  return dot_lanes(a, b, n);
}

double sum_squares(const float* a, std::size_t n) { return dot_lanes(a, a, n); }

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 p0 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 p1 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p0));
    _mm256_storeu_ps(y + i + 8, _mm256_add_ps(_mm256_loadu_ps(y + i + 8), p1));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(x + i + 8, _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void hadamard(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256 vb = _mm256_set1_ps(b);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 px = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 py = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(px, py));
  }
  for (; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      const float* b_row = b + kk * n;
      const __m256 vav = _mm256_set1_ps(aval);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_lanes(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      float* c_row = c + kk * n;
      const __m256 vav = _mm256_set1_ps(aval);
      std::int64_t j = j0;
      for (; j + 8 <= j1; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < j1; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matvec_rows(const float* w, const float* x, float* y, std::int64_t o0,
                 std::int64_t o1, std::int64_t in_dim) {
  const auto n = static_cast<std::size_t>(in_dim);
  std::int64_t o = o0;
  for (; o + 4 <= o1; o += 4) {
    const float* base = w + o * in_dim;
    dot4_lanes(base, base + in_dim, base + 2 * in_dim, base + 3 * in_dim, x,
               y + o, n);
  }
  for (; o < o1; ++o) {
    y[o] = static_cast<float>(dot_lanes(w + o * in_dim, x, n));
  }
}

}  // namespace chipalign::kernels::avx2

#endif  // CHIPALIGN_HAVE_AVX2
