/// \file kernels_generic.cpp
/// \brief Portable backend: multi-accumulator loops the compiler can
/// auto-vectorize, implementing the same bit contract as the AVX2 path.
///
/// Reductions keep the 8 double lanes in a local array with a fixed inner
/// unroll; elementwise loops are dependence-free so the vectorizer may use
/// whatever width the target offers without changing a single bit (FP
/// contraction is disabled for this translation unit).

#include "tensor/kernels/backend.hpp"
#include "tensor/kernels/kernels.hpp"

namespace chipalign::kernels::generic {

double dot(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

double sum_squares(const float* a, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(a[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return combine_lanes(lanes);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void hadamard(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      const float* b_row = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      float* c_row = c + kk * n;
      for (std::int64_t j = j0; j < j1; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matvec_rows(const float* w, const float* x, float* y, std::int64_t o0,
                 std::int64_t o1, std::int64_t in_dim) {
  for (std::int64_t o = o0; o < o1; ++o) {
    y[o] = static_cast<float>(
        dot(w + o * in_dim, x, static_cast<std::size_t>(in_dim)));
  }
}

}  // namespace chipalign::kernels::generic
