/// \file kernels_generic.cpp
/// \brief Portable backend: multi-accumulator loops the compiler can
/// auto-vectorize, implementing the same bit contract as the AVX2 path.
///
/// Reductions keep the 8 double lanes in a local array with a fixed inner
/// unroll; elementwise loops are dependence-free so the vectorizer may use
/// whatever width the target offers without changing a single bit (FP
/// contraction is disabled for this translation unit).

#include "tensor/half.hpp"
#include "tensor/kernels/backend.hpp"
#include "tensor/kernels/kernels.hpp"

namespace chipalign::kernels::generic {

namespace {

// Type-generic element loaders: one reduction body serves every storage
// dtype. Each load is an *exact* conversion to fp32, so the shared loop
// reproduces the contract reduction bit-for-bit regardless of dtype.
struct LoadF16 {
  float operator()(std::uint16_t v) const { return f16_bits_to_f32(v); }
};
struct LoadBF16 {
  float operator()(std::uint16_t v) const { return bf16_bits_to_f32(v); }
};
struct LoadI8 {
  float operator()(std::int8_t v) const { return static_cast<float>(v); }
};

/// Contract-shaped dot with a dequantizing load on the `a` stream.
template <typename T, typename Load>
double dot_q(const T* a, const float* b, std::size_t n, Load load) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(load(a[i + l])) *
                  static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] +=
        static_cast<double>(load(a[i])) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

}  // namespace

double dot(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

double sum_squares(const float* a, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(a[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return combine_lanes(lanes);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void hadamard(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

void matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      const float* b_row = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_tn_cols(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t j0,
                    std::int64_t j1) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      float* c_row = c + kk * n;
      for (std::int64_t j = j0; j < j1; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matvec_rows(const float* w, const float* x, float* y, std::int64_t o0,
                 std::int64_t o1, std::int64_t in_dim) {
  for (std::int64_t o = o0; o < o1; ++o) {
    y[o] = static_cast<float>(
        dot(w + o * in_dim, x, static_cast<std::size_t>(in_dim)));
  }
}

double dot_f16(const std::uint16_t* a, const float* b, std::size_t n) {
  return dot_q(a, b, n, LoadF16{});
}

double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n) {
  return dot_q(a, b, n, LoadBF16{});
}

double dot_i8(const std::int8_t* q, const float* x, std::size_t n) {
  return dot_q(q, x, n, LoadI8{});
}

void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * f16_bits_to_f32(x[i]);
}

void matvec_f16_rows(const std::uint16_t* w, const float* x, float* y,
                     std::int64_t o0, std::int64_t o1, std::int64_t in_dim) {
  for (std::int64_t o = o0; o < o1; ++o) {
    y[o] = static_cast<float>(dot_q(
        w + o * in_dim, x, static_cast<std::size_t>(in_dim), LoadF16{}));
  }
}

void matvec_bf16_rows(const std::uint16_t* w, const float* x, float* y,
                      std::int64_t o0, std::int64_t o1, std::int64_t in_dim) {
  for (std::int64_t o = o0; o < o1; ++o) {
    y[o] = static_cast<float>(dot_q(
        w + o * in_dim, x, static_cast<std::size_t>(in_dim), LoadBF16{}));
  }
}

void matvec_i8_rows(const std::int8_t* w, const float* scales, const float* x,
                    float* y, std::int64_t o0, std::int64_t o1,
                    std::int64_t in_dim) {
  for (std::int64_t o = o0; o < o1; ++o) {
    y[o] = static_cast<float>(
        static_cast<double>(scales[o]) *
        dot_q(w + o * in_dim, x, static_cast<std::size_t>(in_dim), LoadI8{}));
  }
}

void matmul_nt_f16_rows(const std::uint16_t* a, const float* b, float* c,
                        std::int64_t i0, std::int64_t i1, std::int64_t k,
                        std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::uint16_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_q(a_row, b + j * k, static_cast<std::size_t>(k), LoadF16{}));
    }
  }
}

void matmul_nt_bf16_rows(const std::uint16_t* a, const float* b, float* c,
                         std::int64_t i0, std::int64_t i1, std::int64_t k,
                         std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::uint16_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_q(a_row, b + j * k, static_cast<std::size_t>(k), LoadBF16{}));
    }
  }
}

void matmul_nt_i8_rows(const std::int8_t* a, const float* a_scales,
                       const float* b, float* c, std::int64_t i0,
                       std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::int8_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          static_cast<double>(a_scales[i]) *
          dot_q(a_row, b + j * k, static_cast<std::size_t>(k), LoadI8{}));
    }
  }
}

}  // namespace chipalign::kernels::generic
