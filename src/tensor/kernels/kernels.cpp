/// \file kernels.cpp
/// \brief Backend dispatch plus fixed-shape blocking / thread-pool fan-out.
///
/// Dispatch picks AVX2 when compiled in and supported by the CPU, else the
/// generic backend. Matmuls above a work threshold fan fixed-size row or
/// column blocks across the global ThreadPool; block geometry depends only
/// on the problem shape (never thread count), and each output element is
/// written by exactly one task, so results are bit-identical for any pool
/// size — including the inline nested case (kernels called from merge
/// workers).

#include "tensor/kernels/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "tensor/kernels/backend.hpp"
#include "util/thread_pool.hpp"

namespace chipalign::kernels {

namespace {

bool g_force_generic = false;

bool cpu_has_avx2() {
#if defined(CHIPALIGN_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool use_avx2() {
  static const bool available = cpu_has_avx2();
  return available && !g_force_generic;
}

bool cpu_has_f16c() {
#if defined(CHIPALIGN_HAVE_F16C)
  return __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

/// The AVX2 f16 kernels additionally need F16C (vcvtph2ps); without it the
/// f16 family falls back to the generic backend (bitwise identical).
[[maybe_unused]] bool use_avx2_f16() {
  static const bool available = cpu_has_avx2() && cpu_has_f16c();
  return available && !g_force_generic;
}

/// Rows of output per parallel task (matmul / matmul_nt).
constexpr std::int64_t kRowBlock = 16;
/// Output columns per parallel task (matmul_tn_accum).
constexpr std::int64_t kColBlock = 1024;
/// Output rows per parallel task (parallel_matvec).
constexpr std::int64_t kMatvecRowBlock = 64;
/// Fan out across the pool only when the multiply does at least this many
/// scalar MACs; below it, task overhead dominates.
constexpr std::int64_t kParallelMacs = std::int64_t{1} << 22;

/// Runtime override for the matvec fan-out threshold; 0 means "use the
/// default" (env var or built-in). See matvec_parallel_macs() in the header.
std::int64_t g_matvec_parallel_macs = 0;

std::int64_t default_matvec_parallel_macs() {
  if (const char* env = std::getenv("CHIPALIGN_MATVEC_PAR_MACS")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && parsed > 0) return parsed;
  }
  return std::int64_t{1} << 21;
}

/// Splits [0, extent) into fixed `block`-sized chunks and runs body(lo, hi)
/// for each, across the pool when the work is large enough. parallel_for
/// itself degrades to inline execution on single-worker pools and when
/// called from a pool worker (nested case).
template <typename Body>
void blocked_parallel(std::int64_t extent, std::int64_t block,
                      std::int64_t total_macs, const Body& body) {
  const std::int64_t blocks = (extent + block - 1) / block;
  if (blocks <= 1 || total_macs < kParallelMacs) {
    body(0, extent);
    return;
  }
  global_thread_pool().parallel_for(
      static_cast<std::size_t>(blocks), [&](std::size_t index) {
        const std::int64_t lo = static_cast<std::int64_t>(index) * block;
        body(lo, std::min(lo + block, extent));
      });
}

}  // namespace

bool simd_available() {
  static const bool available = cpu_has_avx2();
  return available;
}

const char* backend_name() { return use_avx2() ? "avx2" : "generic"; }

void force_generic(bool on) { g_force_generic = on; }

std::int64_t matvec_parallel_macs() {
  static const std::int64_t configured = default_matvec_parallel_macs();
  return g_matvec_parallel_macs > 0 ? g_matvec_parallel_macs : configured;
}

void set_matvec_parallel_macs(std::int64_t macs) {
  g_matvec_parallel_macs = macs;
}

double dot(const float* a, const float* b, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::dot(a, b, n);
#endif
  return generic::dot(a, b, n);
}

double norm(const float* a, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return std::sqrt(avx2::sum_squares(a, n));
#endif
  return std::sqrt(generic::sum_squares(a, n));
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::axpy(alpha, x, y, n);
#endif
  generic::axpy(alpha, x, y, n);
}

void scale(float* x, float alpha, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::scale(x, alpha, n);
#endif
  generic::scale(x, alpha, n);
}

void hadamard(const float* x, float* y, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::hadamard(x, y, n);
#endif
  generic::hadamard(x, y, n);
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::scaled_sum(a, x, b, y, out, n);
#endif
  generic::scaled_sum(a, x, b, y, out, n);
}

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n) {
  blocked_parallel(m, kRowBlock, m * k * n, [&](std::int64_t i0,
                                                std::int64_t i1) {
#if defined(CHIPALIGN_HAVE_AVX2)
    if (use_avx2()) return avx2::matmul_rows(a, b, c, i0, i1, k, n);
#endif
    generic::matmul_rows(a, b, c, i0, i1, k, n);
  });
}

void matmul_nt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  blocked_parallel(m, kRowBlock, m * k * n, [&](std::int64_t i0,
                                                std::int64_t i1) {
#if defined(CHIPALIGN_HAVE_AVX2)
    if (use_avx2()) return avx2::matmul_nt_rows(a, b, c, i0, i1, k, n);
#endif
    generic::matmul_nt_rows(a, b, c, i0, i1, k, n);
  });
}

void matmul_tn_accum(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  blocked_parallel(n, kColBlock, m * k * n, [&](std::int64_t j0,
                                                std::int64_t j1) {
#if defined(CHIPALIGN_HAVE_AVX2)
    if (use_avx2()) return avx2::matmul_tn_cols(a, b, c, m, k, n, j0, j1);
#endif
    generic::matmul_tn_cols(a, b, c, m, k, n, j0, j1);
  });
}

void matvec(const float* w, const float* x, float* y, std::int64_t out_dim,
            std::int64_t in_dim) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::matvec_rows(w, x, y, 0, out_dim, in_dim);
#endif
  generic::matvec_rows(w, x, y, 0, out_dim, in_dim);
}

void parallel_matvec(const float* w, const float* x, float* y,
                     std::int64_t out_dim, std::int64_t in_dim,
                     ThreadPool* pool) {
  const std::int64_t blocks =
      (out_dim + kMatvecRowBlock - 1) / kMatvecRowBlock;
  if (blocks <= 1 || out_dim * in_dim < matvec_parallel_macs()) {
    matvec(w, x, y, out_dim, in_dim);
    return;
  }
  ThreadPool& chosen = pool != nullptr ? *pool : global_thread_pool();
  chosen.parallel_for(
      static_cast<std::size_t>(blocks), [&](std::size_t index) {
        const std::int64_t o0 =
            static_cast<std::int64_t>(index) * kMatvecRowBlock;
        const std::int64_t o1 = std::min(o0 + kMatvecRowBlock, out_dim);
#if defined(CHIPALIGN_HAVE_AVX2)
        if (use_avx2()) return avx2::matvec_rows(w, x, y, o0, o1, in_dim);
#endif
        generic::matvec_rows(w, x, y, o0, o1, in_dim);
      });
}

// -- quantized dispatch ------------------------------------------------------

namespace {

/// parallel_matvec's fan-out shape, shared by every quantized variant: the
/// same kMatvecRowBlock blocks and MAC threshold, with rows_fn(o0, o1)
/// computing each block. Geometry depends only on the problem shape.
template <typename RowsFn>
void parallel_matvec_blocks(std::int64_t out_dim, std::int64_t in_dim,
                            ThreadPool* pool, const RowsFn& rows_fn) {
  const std::int64_t blocks =
      (out_dim + kMatvecRowBlock - 1) / kMatvecRowBlock;
  if (blocks <= 1 || out_dim * in_dim < matvec_parallel_macs()) {
    rows_fn(std::int64_t{0}, out_dim);
    return;
  }
  ThreadPool& chosen = pool != nullptr ? *pool : global_thread_pool();
  chosen.parallel_for(
      static_cast<std::size_t>(blocks), [&](std::size_t index) {
        const std::int64_t o0 =
            static_cast<std::int64_t>(index) * kMatvecRowBlock;
        rows_fn(o0, std::min(o0 + kMatvecRowBlock, out_dim));
      });
}

void matvec_f16_rows_dispatch(const std::uint16_t* w, const float* x,
                              float* y, std::int64_t o0, std::int64_t o1,
                              std::int64_t in_dim) {
#if defined(CHIPALIGN_HAVE_F16C)
  if (use_avx2_f16()) return avx2::matvec_f16_rows(w, x, y, o0, o1, in_dim);
#endif
  generic::matvec_f16_rows(w, x, y, o0, o1, in_dim);
}

void matvec_bf16_rows_dispatch(const std::uint16_t* w, const float* x,
                               float* y, std::int64_t o0, std::int64_t o1,
                               std::int64_t in_dim) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::matvec_bf16_rows(w, x, y, o0, o1, in_dim);
#endif
  generic::matvec_bf16_rows(w, x, y, o0, o1, in_dim);
}

void matvec_i8_rows_dispatch(const std::int8_t* w, const float* scales,
                             const float* x, float* y, std::int64_t o0,
                             std::int64_t o1, std::int64_t in_dim) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) {
    return avx2::matvec_i8_rows(w, scales, x, y, o0, o1, in_dim);
  }
#endif
  generic::matvec_i8_rows(w, scales, x, y, o0, o1, in_dim);
}

}  // namespace

double dot_f16(const std::uint16_t* a, const float* b, std::size_t n) {
#if defined(CHIPALIGN_HAVE_F16C)
  if (use_avx2_f16()) return avx2::dot_f16(a, b, n);
#endif
  return generic::dot_f16(a, b, n);
}

double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::dot_bf16(a, b, n);
#endif
  return generic::dot_bf16(a, b, n);
}

double dot_i8(const std::int8_t* q, const float* x, std::size_t n) {
#if defined(CHIPALIGN_HAVE_AVX2)
  if (use_avx2()) return avx2::dot_i8(q, x, n);
#endif
  return generic::dot_i8(q, x, n);
}

void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n) {
#if defined(CHIPALIGN_HAVE_F16C)
  if (use_avx2_f16()) return avx2::axpy_f16(alpha, x, y, n);
#endif
  generic::axpy_f16(alpha, x, y, n);
}

void matvec_f16(const std::uint16_t* w, const float* x, float* y,
                std::int64_t out_dim, std::int64_t in_dim) {
  matvec_f16_rows_dispatch(w, x, y, 0, out_dim, in_dim);
}

void matvec_bf16(const std::uint16_t* w, const float* x, float* y,
                 std::int64_t out_dim, std::int64_t in_dim) {
  matvec_bf16_rows_dispatch(w, x, y, 0, out_dim, in_dim);
}

void matvec_i8(const std::int8_t* w, const float* scales, const float* x,
               float* y, std::int64_t out_dim, std::int64_t in_dim) {
  matvec_i8_rows_dispatch(w, scales, x, y, 0, out_dim, in_dim);
}

void parallel_matvec_f16(const std::uint16_t* w, const float* x, float* y,
                         std::int64_t out_dim, std::int64_t in_dim,
                         ThreadPool* pool) {
  parallel_matvec_blocks(out_dim, in_dim, pool,
                         [&](std::int64_t o0, std::int64_t o1) {
                           matvec_f16_rows_dispatch(w, x, y, o0, o1, in_dim);
                         });
}

void parallel_matvec_bf16(const std::uint16_t* w, const float* x, float* y,
                          std::int64_t out_dim, std::int64_t in_dim,
                          ThreadPool* pool) {
  parallel_matvec_blocks(out_dim, in_dim, pool,
                         [&](std::int64_t o0, std::int64_t o1) {
                           matvec_bf16_rows_dispatch(w, x, y, o0, o1, in_dim);
                         });
}

void parallel_matvec_i8(const std::int8_t* w, const float* scales,
                        const float* x, float* y, std::int64_t out_dim,
                        std::int64_t in_dim, ThreadPool* pool) {
  parallel_matvec_blocks(
      out_dim, in_dim, pool, [&](std::int64_t o0, std::int64_t o1) {
        matvec_i8_rows_dispatch(w, scales, x, y, o0, o1, in_dim);
      });
}

void matmul_nt_f16(const std::uint16_t* a, const float* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n) {
  blocked_parallel(m, kRowBlock, m * k * n, [&](std::int64_t i0,
                                                std::int64_t i1) {
#if defined(CHIPALIGN_HAVE_F16C)
    if (use_avx2_f16()) return avx2::matmul_nt_f16_rows(a, b, c, i0, i1, k, n);
#endif
    generic::matmul_nt_f16_rows(a, b, c, i0, i1, k, n);
  });
}

void matmul_nt_bf16(const std::uint16_t* a, const float* b, float* c,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  blocked_parallel(m, kRowBlock, m * k * n, [&](std::int64_t i0,
                                                std::int64_t i1) {
#if defined(CHIPALIGN_HAVE_AVX2)
    if (use_avx2()) return avx2::matmul_nt_bf16_rows(a, b, c, i0, i1, k, n);
#endif
    generic::matmul_nt_bf16_rows(a, b, c, i0, i1, k, n);
  });
}

void matmul_nt_i8(const std::int8_t* a, const float* a_scales, const float* b,
                  float* c, std::int64_t m, std::int64_t k, std::int64_t n) {
  blocked_parallel(m, kRowBlock, m * k * n, [&](std::int64_t i0,
                                                std::int64_t i1) {
#if defined(CHIPALIGN_HAVE_AVX2)
    if (use_avx2()) {
      return avx2::matmul_nt_i8_rows(a, a_scales, b, c, i0, i1, k, n);
    }
#endif
    generic::matmul_nt_i8_rows(a, a_scales, b, c, i0, i1, k, n);
  });
}

}  // namespace chipalign::kernels
