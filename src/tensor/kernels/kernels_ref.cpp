/// \file kernels_ref.cpp
/// \brief Retained scalar reference kernels — the executable contract.
///
/// Clarity over speed: these loops *define* the summation shape and
/// element-order semantics every optimized backend must reproduce bitwise.
/// Compiled with FP contraction disabled (see tensor/CMakeLists.txt) so the
/// scalar code means exactly what it says.

#include <cmath>

#include "tensor/half.hpp"
#include "tensor/kernels/backend.hpp"
#include "tensor/kernels/kernels.hpp"

namespace chipalign::kernels::ref {

double dot(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

double norm(const float* a, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(a[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return std::sqrt(combine_lanes(lanes));
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void hadamard(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void scaled_sum(float a, const float* x, float b, const float* y, float* out,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n) {
  // (i, kk, j): for each output row, stream b's rows in k order. Every
  // product participates — no zero skips — so NaN/Inf propagate.
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      const float* b_row = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matmul_nt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_tn_accum(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      float* c_row = c + kk * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
}

void matvec(const float* w, const float* x, float* y, std::int64_t out_dim,
            std::int64_t in_dim) {
  for (std::int64_t o = 0; o < out_dim; ++o) {
    y[o] = static_cast<float>(
        dot(w + o * in_dim, x, static_cast<std::size_t>(in_dim)));
  }
}

// -- quantized reference kernels ---------------------------------------------
//
// Each stored element dequantizes *exactly* to fp32 (f16/bf16 are fp32
// subsets; int8 codes are small integers), then feeds the identical 8-lane
// fp64 reduction as the fp32 dot above. The int8 per-row scale is applied
// once per output, in fp64, after the lane combine.

double dot_f16(const std::uint16_t* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(f16_bits_to_f32(a[i + l])) *
                  static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] +=
        static_cast<double>(f16_bits_to_f32(a[i])) * static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

double dot_bf16(const std::uint16_t* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(bf16_bits_to_f32(a[i + l])) *
                  static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(bf16_bits_to_f32(a[i])) *
                     static_cast<double>(b[i]);
  }
  return combine_lanes(lanes);
}

double dot_i8(const std::int8_t* q, const float* x, std::size_t n) {
  double lanes[kLanes] = {0};
  const std::size_t n8 = n & ~(kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += static_cast<double>(static_cast<float>(q[i + l])) *
                  static_cast<double>(x[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(static_cast<float>(q[i])) *
                     static_cast<double>(x[i]);
  }
  return combine_lanes(lanes);
}

void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * f16_bits_to_f32(x[i]);
}

void matvec_f16(const std::uint16_t* w, const float* x, float* y,
                std::int64_t out_dim, std::int64_t in_dim) {
  for (std::int64_t o = 0; o < out_dim; ++o) {
    y[o] = static_cast<float>(
        dot_f16(w + o * in_dim, x, static_cast<std::size_t>(in_dim)));
  }
}

void matvec_bf16(const std::uint16_t* w, const float* x, float* y,
                 std::int64_t out_dim, std::int64_t in_dim) {
  for (std::int64_t o = 0; o < out_dim; ++o) {
    y[o] = static_cast<float>(
        dot_bf16(w + o * in_dim, x, static_cast<std::size_t>(in_dim)));
  }
}

void matvec_i8(const std::int8_t* w, const float* scales, const float* x,
               float* y, std::int64_t out_dim, std::int64_t in_dim) {
  for (std::int64_t o = 0; o < out_dim; ++o) {
    y[o] = static_cast<float>(
        static_cast<double>(scales[o]) *
        dot_i8(w + o * in_dim, x, static_cast<std::size_t>(in_dim)));
  }
}

void matmul_nt_f16(const std::uint16_t* a, const float* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint16_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_f16(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_nt_bf16(const std::uint16_t* a, const float* b, float* c,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint16_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          dot_bf16(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

void matmul_nt_i8(const std::int8_t* a, const float* a_scales, const float* b,
                  float* c, std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      c_row[j] = static_cast<float>(
          static_cast<double>(a_scales[i]) *
          dot_i8(a_row, b + j * k, static_cast<std::size_t>(k)));
    }
  }
}

}  // namespace chipalign::kernels::ref
