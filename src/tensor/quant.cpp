#include "tensor/quant.hpp"

#include <cmath>

#include "tensor/half.hpp"
#include "util/error.hpp"

namespace chipalign {

float int8_row_scale(const float* row, std::int64_t cols) {
  float max_abs = 0.0F;
  for (std::int64_t c = 0; c < cols; ++c) {
    const float a = std::fabs(row[c]);
    if (a > max_abs) max_abs = a;
  }
  return max_abs / 127.0F;
}

void quantize_row_i8(const float* row, std::int64_t cols, float scale,
                     std::int8_t* out) {
  if (scale == 0.0F) {
    for (std::int64_t c = 0; c < cols; ++c) out[c] = 0;
    return;
  }
  for (std::int64_t c = 0; c < cols; ++c) {
    // nearbyintf rounds to nearest even in the (never changed) default
    // floating environment, matching the kernel determinism contract.
    float q = std::nearbyintf(row[c] / scale);
    if (q > 127.0F) q = 127.0F;
    if (q < -127.0F) q = -127.0F;
    out[c] = static_cast<std::int8_t>(q);
  }
}

QuantTensor quantize_tensor(const Tensor& value, DType dtype) {
  CA_CHECK(value.rank() == 2,
           "quantize_tensor requires a rank-2 tensor, got "
               << shape_to_string(value.shape()));
  CA_CHECK(dtype != DType::kF32, "quantize_tensor: kF32 is not a quantized "
                                 "dtype");
  QuantTensor qt;
  qt.dtype = dtype;
  qt.rows = value.dim(0);
  qt.cols = value.dim(1);
  const std::size_t n = static_cast<std::size_t>(value.numel());
  const float* src = value.data();
  switch (dtype) {
    case DType::kF16:
      qt.half.resize(n);
      for (std::size_t i = 0; i < n; ++i) qt.half[i] = f32_to_f16_bits(src[i]);
      break;
    case DType::kBF16:
      qt.half.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        qt.half[i] = f32_to_bf16_bits(src[i]);
      }
      break;
    case DType::kI8:
      qt.q.resize(n);
      qt.scales.resize(static_cast<std::size_t>(qt.rows));
      for (std::int64_t r = 0; r < qt.rows; ++r) {
        const float* row = src + r * qt.cols;
        const float scale = int8_row_scale(row, qt.cols);
        qt.scales[static_cast<std::size_t>(r)] = scale;
        quantize_row_i8(row, qt.cols, scale, qt.q.data() + r * qt.cols);
      }
      break;
    case DType::kF32:
      CA_THROW("unreachable");
  }
  return qt;
}

Tensor dequantize_tensor(const QuantTensor& qt) {
  CA_CHECK(!qt.empty(), "dequantize_tensor: empty QuantTensor");
  Tensor out({qt.rows, qt.cols});
  for (std::int64_t r = 0; r < qt.rows; ++r) {
    dequantize_row(qt, r, out.data() + r * qt.cols);
  }
  return out;
}

void dequantize_row(const QuantTensor& qt, std::int64_t row, float* out) {
  CA_CHECK(row >= 0 && row < qt.rows,
           "dequantize_row: row " << row << " out of range [0, " << qt.rows
                                  << ")");
  const std::size_t base = static_cast<std::size_t>(row * qt.cols);
  switch (qt.dtype) {
    case DType::kF16:
      for (std::int64_t c = 0; c < qt.cols; ++c) {
        out[c] = f16_bits_to_f32(qt.half[base + static_cast<std::size_t>(c)]);
      }
      return;
    case DType::kBF16:
      for (std::int64_t c = 0; c < qt.cols; ++c) {
        out[c] = bf16_bits_to_f32(qt.half[base + static_cast<std::size_t>(c)]);
      }
      return;
    case DType::kI8: {
      const float scale = qt.scales[static_cast<std::size_t>(row)];
      for (std::int64_t c = 0; c < qt.cols; ++c) {
        out[c] =
            static_cast<float>(qt.q[base + static_cast<std::size_t>(c)]) *
            scale;
      }
      return;
    }
    case DType::kF32:
      CA_THROW("dequantize_row: empty QuantTensor");
  }
  CA_THROW("unknown dtype");
}

}  // namespace chipalign
