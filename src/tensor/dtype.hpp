#pragma once
/// \file dtype.hpp
/// \brief Storage dtypes supported by checkpoint serialization and the
/// quantized inference path.
///
/// Merge arithmetic always runs in fp32. F16/BF16 are both storage formats in
/// safetensors files and weight formats for quantized decode (dequantized
/// on the fly inside the kernels); I8 is per-row-scale int8 quantization
/// whose scales travel as a separate F32 tensor (see quant.hpp).

#include <cstddef>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace chipalign {

/// Storage element type for serialized tensors.
enum class DType {
  kF32,   ///< IEEE 754 binary32
  kF16,   ///< IEEE 754 binary16
  kBF16,  ///< bfloat16 (truncated binary32)
  kI8,    ///< int8 with per-row fp32 scales (symmetric, zero-point 0)
};

/// Bytes per element of the storage dtype.
inline std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kF16:
    case DType::kBF16:
      return 2;
    case DType::kI8:
      return 1;
  }
  CA_THROW("unknown dtype");
}

/// safetensors dtype tag (e.g. "F32").
inline std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "F32";
    case DType::kF16:
      return "F16";
    case DType::kBF16:
      return "BF16";
    case DType::kI8:
      return "I8";
  }
  CA_THROW("unknown dtype");
}

/// Parses a safetensors dtype tag; throws on unsupported tags.
inline DType dtype_from_name(std::string_view name) {
  if (name == "F32") return DType::kF32;
  if (name == "F16") return DType::kF16;
  if (name == "BF16") return DType::kBF16;
  if (name == "I8") return DType::kI8;
  CA_THROW("unsupported dtype tag '" << name << "'");
}

}  // namespace chipalign
