#pragma once
/// \file dtype.hpp
/// \brief Storage dtypes supported by checkpoint serialization.
///
/// In-memory compute is always fp32; F16/BF16 exist as *storage* formats in
/// safetensors files, mirroring how real LLM checkpoints ship in half
/// precision while merge arithmetic runs in fp32.

#include <cstddef>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace chipalign {

/// Storage element type for serialized tensors.
enum class DType {
  kF32,   ///< IEEE 754 binary32
  kF16,   ///< IEEE 754 binary16
  kBF16,  ///< bfloat16 (truncated binary32)
};

/// Bytes per element of the storage dtype.
inline std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kF16:
    case DType::kBF16:
      return 2;
  }
  CA_THROW("unknown dtype");
}

/// safetensors dtype tag (e.g. "F32").
inline std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "F32";
    case DType::kF16:
      return "F16";
    case DType::kBF16:
      return "BF16";
  }
  CA_THROW("unknown dtype");
}

/// Parses a safetensors dtype tag; throws on unsupported tags.
inline DType dtype_from_name(std::string_view name) {
  if (name == "F32") return DType::kF32;
  if (name == "F16") return DType::kF16;
  if (name == "BF16") return DType::kBF16;
  CA_THROW("unsupported dtype tag '" << name << "'");
}

}  // namespace chipalign
