#pragma once
/// \file tensor.hpp
/// \brief Dense row-major fp32 tensor.
///
/// The library computes in fp32 throughout; half-precision exists only as a
/// storage format (see dtype.hpp, io/safetensors.hpp). Tensors own their
/// storage (std::vector<float>) and are cheap to move.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Shape of a tensor: dimension sizes, outermost first.
using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape; throws on negative dims.
std::int64_t shape_numel(const Shape& shape);

/// Human-readable shape, e.g. "[4, 16]".
std::string shape_to_string(const Shape& shape);

/// Dense row-major fp32 tensor with value semantics.
class Tensor {
 public:
  /// Empty rank-0-like tensor (numel() == 0, rank() == 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor wrapping a copy of `values`; size must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  // -- factories -------------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F);
  /// i.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);

  // -- geometry --------------------------------------------------------------

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t dim(std::size_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Returns a copy with a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  // -- element access --------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return {data_.data(), data_.size()}; }
  std::span<const float> values() const { return {data_.data(), data_.size()}; }

  float& operator[](std::int64_t flat_index);
  float operator[](std::int64_t flat_index) const;

  /// 2-D access (row-major); requires rank()==2.
  float& at2(std::int64_t row, std::int64_t col);
  float at2(std::int64_t row, std::int64_t col) const;

  /// Returns the row `r` of a rank-2 tensor as a span of dim(1) floats.
  std::span<float> row(std::int64_t r);
  std::span<const float> row(std::int64_t r) const;

  // -- misc ------------------------------------------------------------------

  /// Sets all entries to `value`.
  void fill(float value);

  /// True if every entry is finite.
  bool all_finite() const;

  std::string to_string() const;  ///< shape + first few values, for debugging

 private:
  void check_rank2() const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace chipalign
