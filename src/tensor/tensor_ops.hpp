#pragma once
/// \file tensor_ops.hpp
/// \brief Elementwise and linear-algebra kernels on Tensor / float spans.
///
/// These kernels back both the merge library (norms, dots, axpy) and the
/// neural-network substrate (matmul, softmax). Everything is fp32; the heavy
/// lifting is delegated to tensor/kernels, whose reductions follow a fixed
/// deterministic summation shape (see kernels.hpp), so results are
/// bit-identical across backends, runs, and thread counts. Large matmuls may
/// fan out across the global thread pool; nested calls from pool workers run
/// inline, so these are safe to call from parallel merge loops.

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace chipalign::ops {

// -- span kernels (the workhorses) -------------------------------------------

/// dst += alpha * src (sizes must match).
void axpy(float alpha, std::span<const float> src, std::span<float> dst);

/// Sum of elementwise products.
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean (Frobenius) norm.
double norm(std::span<const float> a);

/// Multiplies every element by alpha.
void scale(std::span<float> a, float alpha);

/// Fused out = a * x + b * y (sizes must match; out may alias x or y).
/// One pass over memory versus the scale/scale/add composition — this is the
/// inner loop of geodesic (SLERP) interpolation.
void scaled_sum(float a, std::span<const float> x, float b,
                std::span<const float> y, std::span<float> out);

/// Cosine of the angle between two vectors; 0 if either has zero norm.
double cosine(std::span<const float> a, std::span<const float> b);

/// In-place numerically-stable softmax over the span.
void softmax_inplace(std::span<float> logits);

/// log(sum(exp(logits))) computed stably.
double log_sum_exp(std::span<const float> logits);

/// Index of the maximum element (first on ties); requires non-empty span.
std::int64_t argmax(std::span<const float> values);

// -- causal-attention helpers -------------------------------------------------
//
// The per-head inner loops of cached-KV attention, shared by the serial,
// batched and block-verify decode paths (nn/decode) so all three issue the
// exact same kernel-call sequence — which is what makes their outputs
// bitwise identical. Rows j of the cache live at `base + j * row_stride`;
// `n_rows` is the causal horizon (positions 0..n_rows-1 are attended).

/// scores[j] = float(dot(q_head, k_row_j)) * scale for j in [0, n_rows).
/// q_head has head_dim elements; k rows are fp32.
void attention_scores(const float* q_head, const float* k_base,
                      std::int64_t row_stride, std::int64_t n_rows,
                      std::int64_t head_dim, float scale, float* scores);

/// attention_scores over an fp16-stored K cache (exactly-dequantizing dot).
void attention_scores_f16(const float* q_head, const std::uint16_t* k_base,
                          std::int64_t row_stride, std::int64_t n_rows,
                          std::int64_t head_dim, float scale, float* scores);

/// att_head += sum_j probs[j] * v_row_j (att_head must be pre-zeroed by the
/// caller; the accumulation order is the deterministic axpy sequence).
void attention_mix(const float* probs, const float* v_base,
                   std::int64_t row_stride, std::int64_t n_rows,
                   std::int64_t head_dim, float* att_head);

/// attention_mix over an fp16-stored V cache.
void attention_mix_f16(const float* probs, const std::uint16_t* v_base,
                       std::int64_t row_stride, std::int64_t n_rows,
                       std::int64_t head_dim, float* att_head);

// -- tensor-level helpers -----------------------------------------------------

/// Elementwise c = a + b.
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// c = alpha * a.
Tensor scaled(const Tensor& a, float alpha);

/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// c = alpha * a + beta * b in a single fused pass.
Tensor scaled_sum(float alpha, const Tensor& a, float beta, const Tensor& b);

/// Frobenius norm of the whole tensor.
double frobenius_norm(const Tensor& a);

/// Flattened cosine similarity between two same-shape tensors.
double cosine_similarity(const Tensor& a, const Tensor& b);

/// Row-major matmul: [m, k] x [k, n] -> [m, n]. Large products fan out over
/// fixed-size row blocks on the global thread pool; results are
/// bit-identical regardless of thread count. IEEE-faithful: NaN/Inf in
/// either operand propagate (no value-dependent skips).
Tensor matmul(const Tensor& a, const Tensor& b);

/// y[m,n] = a[m,k] * b^T where b is [n,k]. This is the layout used by linear
/// layers whose weights are stored as [out_features, in_features].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// y[k,n] += a^T[k,m] * b[m,n] where a is [m,k]. Gradient helper.
void matmul_tn_accum(const Tensor& a, const Tensor& b, Tensor& out);

/// Transposes a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// Maximum absolute elementwise difference (for tests).
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace chipalign::ops
