#pragma once
/// \file tensor_ops.hpp
/// \brief Elementwise and linear-algebra kernels on Tensor / float spans.
///
/// These kernels back both the merge library (norms, dots, axpy) and the
/// neural-network substrate (matmul, softmax). Everything is fp32; the heavy
/// lifting is delegated to tensor/kernels, whose reductions follow a fixed
/// deterministic summation shape (see kernels.hpp), so results are
/// bit-identical across backends, runs, and thread counts. Large matmuls may
/// fan out across the global thread pool; nested calls from pool workers run
/// inline, so these are safe to call from parallel merge loops.

#include <span>

#include "tensor/tensor.hpp"

namespace chipalign::ops {

// -- span kernels (the workhorses) -------------------------------------------

/// dst += alpha * src (sizes must match).
void axpy(float alpha, std::span<const float> src, std::span<float> dst);

/// Sum of elementwise products.
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean (Frobenius) norm.
double norm(std::span<const float> a);

/// Multiplies every element by alpha.
void scale(std::span<float> a, float alpha);

/// Fused out = a * x + b * y (sizes must match; out may alias x or y).
/// One pass over memory versus the scale/scale/add composition — this is the
/// inner loop of geodesic (SLERP) interpolation.
void scaled_sum(float a, std::span<const float> x, float b,
                std::span<const float> y, std::span<float> out);

/// Cosine of the angle between two vectors; 0 if either has zero norm.
double cosine(std::span<const float> a, std::span<const float> b);

/// In-place numerically-stable softmax over the span.
void softmax_inplace(std::span<float> logits);

/// log(sum(exp(logits))) computed stably.
double log_sum_exp(std::span<const float> logits);

/// Index of the maximum element (first on ties); requires non-empty span.
std::int64_t argmax(std::span<const float> values);

// -- tensor-level helpers -----------------------------------------------------

/// Elementwise c = a + b.
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// c = alpha * a.
Tensor scaled(const Tensor& a, float alpha);

/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// c = alpha * a + beta * b in a single fused pass.
Tensor scaled_sum(float alpha, const Tensor& a, float beta, const Tensor& b);

/// Frobenius norm of the whole tensor.
double frobenius_norm(const Tensor& a);

/// Flattened cosine similarity between two same-shape tensors.
double cosine_similarity(const Tensor& a, const Tensor& b);

/// Row-major matmul: [m, k] x [k, n] -> [m, n]. Large products fan out over
/// fixed-size row blocks on the global thread pool; results are
/// bit-identical regardless of thread count. IEEE-faithful: NaN/Inf in
/// either operand propagate (no value-dependent skips).
Tensor matmul(const Tensor& a, const Tensor& b);

/// y[m,n] = a[m,k] * b^T where b is [n,k]. This is the layout used by linear
/// layers whose weights are stored as [out_features, in_features].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// y[k,n] += a^T[k,m] * b[m,n] where a is [m,k]. Gradient helper.
void matmul_tn_accum(const Tensor& a, const Tensor& b, Tensor& out);

/// Transposes a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// Maximum absolute elementwise difference (for tests).
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace chipalign::ops
