#pragma once
/// \file quant.hpp
/// \brief Quantized weight storage for the inference path.
///
/// A QuantTensor holds a rank-2 weight matrix in one of the sub-fp32 storage
/// formats: fp16 / bf16 (elementwise conversion, no scales) or int8 with a
/// per-row fp32 scale (symmetric, zero-point 0). Kernels dequantize on the
/// fly: every stored element converts *exactly* to fp32 before entering the
/// shared 8-lane fp64 reduction, so quantized matvecs inherit the bitwise
/// run-to-run / thread-count determinism contract of the fp32 kernels (see
/// DESIGN.md §4i).
///
/// int8 rows quantize as q = clamp(round(x / scale), -127, 127) with
/// scale = max|x| / 127 (scale 0 for an all-zero row); the reconstruction
/// q * scale is within scale/2 of the original element.

#include <cstdint>
#include <vector>

#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// Rank-2 weight matrix stored quantized. Exactly one payload vector is
/// non-empty: `half` for kF16/kBF16 bit patterns, `q` (+ `scales`) for kI8.
struct QuantTensor {
  DType dtype = DType::kF32;  ///< kF32 means "empty / not quantized"
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::uint16_t> half;  ///< [rows*cols] f16/bf16 bit patterns
  std::vector<std::int8_t> q;       ///< [rows*cols] int8 codes
  std::vector<float> scales;        ///< [rows] per-row scales (kI8 only)

  bool empty() const { return dtype == DType::kF32; }

  /// Payload bytes actually held (codes + scales).
  std::size_t bytes() const {
    return half.size() * sizeof(std::uint16_t) +
           q.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

/// Per-row int8 scale: max|row| / 127, or 0 for an all-zero row.
float int8_row_scale(const float* row, std::int64_t cols);

/// Quantizes one row with the given scale into int8 codes
/// (round-to-nearest, clamped to [-127, 127]; all zeros when scale == 0).
void quantize_row_i8(const float* row, std::int64_t cols, float scale,
                     std::int8_t* out);

/// Quantizes a rank-2 fp32 tensor into the given storage dtype
/// (kF16 / kBF16 / kI8). Throws on rank != 2 or dtype kF32.
QuantTensor quantize_tensor(const Tensor& value, DType dtype);

/// Exact fp32 reconstruction (f16/bf16 dequant, or q * scale for int8).
Tensor dequantize_tensor(const QuantTensor& qt);

/// Dequantizes one row into `out` (cols floats). Used for embedding lookup
/// so the looked-up row matches what the quantized LM-head matvec sees.
void dequantize_row(const QuantTensor& qt, std::int64_t row, float* out);

}  // namespace chipalign
