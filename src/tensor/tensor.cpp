#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace chipalign {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t numel = 1;
  for (std::int64_t dim : shape) {
    CA_CHECK(dim >= 0, "negative dimension in shape "
             << shape_to_string(shape));
    numel *= dim;
  }
  return numel;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0F);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)) {
  CA_CHECK(static_cast<std::int64_t>(values.size()) == shape_numel(shape_),
           "value count " << values.size() << " does not match shape "
                          << shape_to_string(shape_));
  data_ = std::move(values);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.gaussian()) * stddev;
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::int64_t Tensor::dim(std::size_t axis) const {
  CA_CHECK(axis < shape_.size(),
           "axis " << axis << " out of range for rank " << shape_.size());
  return shape_[axis];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  CA_CHECK(shape_numel(new_shape) == numel(),
           "reshape " << shape_to_string(shape_) << " -> "
                      << shape_to_string(new_shape) << " changes numel");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

float& Tensor::operator[](std::int64_t flat_index) {
  CA_CHECK(flat_index >= 0 && flat_index < numel(),
           "flat index " << flat_index << " out of range " << numel());
  return data_[static_cast<std::size_t>(flat_index)];
}

float Tensor::operator[](std::int64_t flat_index) const {
  CA_CHECK(flat_index >= 0 && flat_index < numel(),
           "flat index " << flat_index << " out of range " << numel());
  return data_[static_cast<std::size_t>(flat_index)];
}

void Tensor::check_rank2() const {
  CA_CHECK(rank() == 2, "rank-2 access on tensor of shape "
           << shape_to_string(shape_));
}

float& Tensor::at2(std::int64_t row, std::int64_t col) {
  check_rank2();
  CA_CHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1],
           "index (" << row << ", " << col << ") out of range "
                     << shape_to_string(shape_));
  return data_[static_cast<std::size_t>(row * shape_[1] + col)];
}

float Tensor::at2(std::int64_t row, std::int64_t col) const {
  return const_cast<Tensor*>(this)->at2(row, col);
}

std::span<float> Tensor::row(std::int64_t r) {
  check_rank2();
  CA_CHECK(r >= 0 && r < shape_[0], "row " << r << " out of range "
           << shape_[0]);
  return {data_.data() + static_cast<std::size_t>(r * shape_[1]),
          static_cast<std::size_t>(shape_[1])};
}

std::span<const float> Tensor::row(std::int64_t r) const {
  return const_cast<Tensor*>(this)->row(r);
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

bool Tensor::all_finite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Tensor::to_string() const {
  std::ostringstream oss;
  oss << "Tensor" << shape_to_string(shape_) << " {";
  const std::int64_t preview = std::min<std::int64_t>(numel(), 8);
  for (std::int64_t i = 0; i < preview; ++i) {
    if (i > 0) oss << ", ";
    oss << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > preview) oss << ", ...";
  oss << "}";
  return oss.str();
}

}  // namespace chipalign
