#pragma once
/// \file half.hpp
/// \brief Scalar conversions between fp32 and the two 16-bit storage formats.
///
/// fp16 conversion implements round-to-nearest-even with correct handling of
/// subnormals, infinities and NaN; bf16 uses round-to-nearest-even
/// truncation of the high 16 bits. These are the same semantics checkpoint
/// tooling (safetensors / PyTorch) uses, so files we write are
/// bit-compatible.

#include <bit>
#include <cstdint>

namespace chipalign {

/// fp32 -> fp16 bits, round-to-nearest-even.
inline std::uint16_t f32_to_f16_bits(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x007FFFFFu;

  if (exp == 0xFFu) {  // inf / NaN
    // Preserve NaN-ness by forcing a non-zero mantissa.
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x0200u : 0u));
  }

  // Unbiased exponent; fp16 bias is 15, fp32 bias is 127.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {  // subnormal or zero
    if (e < -10) return static_cast<std::uint16_t>(sign);  // rounds to zero
    // Add the implicit leading 1 and shift into subnormal position.
    mant |= 0x00800000u;
    const int shift = 14 - e;  // in [14, 24]
    const std::uint32_t sub = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t rounded = sub;
    if (rem > half || (rem == half && (sub & 1u))) ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal range: round the 13 dropped mantissa bits.
  std::uint32_t out = sign | (static_cast<std::uint32_t>(e)
                              << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u
                        && (out & 1u))) ++out;  // may carry into exp: correct
  return static_cast<std::uint16_t>(out);
}

/// fp16 bits -> fp32.
inline float f16_bits_to_f32(std::uint16_t half_bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half_bits & 0x8000u)
      << 16;
  const std::uint32_t exp = (half_bits >> 10) & 0x1Fu;
  std::uint32_t mant = half_bits & 0x03FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Normalize the subnormal.
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x0400u) == 0);
      mant &= 0x03FFu;
      out = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 | (mant
                                                                     << 13);
    }
  } else if (exp == 0x1Fu) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

/// fp32 -> bf16 bits, round-to-nearest-even (NaN preserved).
inline std::uint16_t f32_to_bf16_bits(float value) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0) {
    // NaN: keep a quiet NaN without rounding (rounding could clear mantissa).
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  const std::uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7FFFu + lsb;  // round to nearest even
  return static_cast<std::uint16_t>(bits >> 16);
}

/// bf16 bits -> fp32 (exact).
inline float bf16_bits_to_f32(std::uint16_t bf16_bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bf16_bits) << 16);
}

}  // namespace chipalign
