#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/kernels.hpp"

namespace chipalign::ops {

namespace {
void check_same_size(std::span<const float> a, std::span<const float> b,
                     const char* what) {
  CA_CHECK(a.size() == b.size(),
           what << ": size mismatch " << a.size() << " vs " << b.size());
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  CA_CHECK(a.same_shape(b), what << ": shape mismatch "
                                 << shape_to_string(a.shape()) << " vs "
                                 << shape_to_string(b.shape()));
}
}  // namespace

void axpy(float alpha, std::span<const float> src, std::span<float> dst) {
  check_same_size(src, dst, "axpy");
  kernels::axpy(alpha, src.data(), dst.data(), src.size());
}

double dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b, "dot");
  return kernels::dot(a.data(), b.data(), a.size());
}

double norm(std::span<const float> a) {
  return kernels::norm(a.data(), a.size());
}

void scale(std::span<float> a, float alpha) {
  kernels::scale(a.data(), alpha, a.size());
}

void scaled_sum(float a, std::span<const float> x, float b,
                std::span<const float> y, std::span<float> out) {
  check_same_size(x, y, "scaled_sum");
  check_same_size(x, out, "scaled_sum");
  kernels::scaled_sum(a, x.data(), b, y.data(), out.data(), x.size());
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

void softmax_inplace(std::span<float> logits) {
  CA_CHECK(!logits.empty(), "softmax on empty span");
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (float& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : logits) v *= inv;
}

double log_sum_exp(std::span<const float> logits) {
  CA_CHECK(!logits.empty(), "log_sum_exp on empty span");
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v - max_logit));
  return static_cast<double>(max_logit) + std::log(sum);
}

std::int64_t argmax(std::span<const float> values) {
  CA_CHECK(!values.empty(), "argmax on empty span");
  return static_cast<std::int64_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

void attention_scores(const float* q_head, const float* k_base,
                      std::int64_t row_stride, std::int64_t n_rows,
                      std::int64_t head_dim, float scale, float* scores) {
  for (std::int64_t j = 0; j < n_rows; ++j) {
    const double d = kernels::dot(q_head, k_base + j * row_stride,
                                  static_cast<std::size_t>(head_dim));
    scores[j] = static_cast<float>(d) * scale;
  }
}

void attention_scores_f16(const float* q_head, const std::uint16_t* k_base,
                          std::int64_t row_stride, std::int64_t n_rows,
                          std::int64_t head_dim, float scale, float* scores) {
  for (std::int64_t j = 0; j < n_rows; ++j) {
    const double d = kernels::dot_f16(k_base + j * row_stride, q_head,
                                      static_cast<std::size_t>(head_dim));
    scores[j] = static_cast<float>(d) * scale;
  }
}

void attention_mix(const float* probs, const float* v_base,
                   std::int64_t row_stride, std::int64_t n_rows,
                   std::int64_t head_dim, float* att_head) {
  for (std::int64_t j = 0; j < n_rows; ++j) {
    kernels::axpy(probs[j], v_base + j * row_stride, att_head,
                  static_cast<std::size_t>(head_dim));
  }
}

void attention_mix_f16(const float* probs, const std::uint16_t* v_base,
                       std::int64_t row_stride, std::int64_t n_rows,
                       std::int64_t head_dim, float* att_head) {
  for (std::int64_t j = 0; j < n_rows; ++j) {
    kernels::axpy_f16(probs[j], v_base + j * row_stride, att_head,
                      static_cast<std::size_t>(head_dim));
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  axpy(1.0F, b.values(), out.values());
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  axpy(-1.0F, b.values(), out.values());
  return out;
}

Tensor scaled(const Tensor& a, float alpha) {
  Tensor out = a;
  scale(out.values(), alpha);
  return out;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "hadamard");
  Tensor out = a;
  kernels::hadamard(b.data(), out.data(), out.values().size());
  return out;
}

Tensor scaled_sum(float alpha, const Tensor& a, float beta, const Tensor& b) {
  check_same_shape(a, b, "scaled_sum");
  Tensor out(a.shape());
  kernels::scaled_sum(alpha, a.data(), beta, b.data(), out.data(),
                      out.values().size());
  return out;
}

double frobenius_norm(const Tensor& a) { return norm(a.values()); }

double cosine_similarity(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "cosine_similarity");
  return cosine(a.values(), b.values());
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CA_CHECK(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 operands");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  CA_CHECK(b.dim(0) == k, "matmul inner-dim mismatch: " << k << " vs "
           << b.dim(0));

  Tensor out({m, n});  // zero-initialised; the kernel accumulates into it.
  kernels::matmul(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CA_CHECK(a.rank() == 2 && b.rank() == 2,
           "matmul_nt requires rank-2 operands");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  CA_CHECK(b.dim(1) == k,
           "matmul_nt inner-dim mismatch: " << k << " vs " << b.dim(1));

  Tensor out({m, n});
  kernels::matmul_nt(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

void matmul_tn_accum(const Tensor& a, const Tensor& b, Tensor& out) {
  CA_CHECK(a.rank() == 2 && b.rank() == 2 && out.rank() == 2,
           "matmul_tn_accum requires rank-2 operands");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  CA_CHECK(b.dim(0) == m, "matmul_tn_accum row mismatch");
  CA_CHECK(out.dim(0) == k && out.dim(1) == n, "matmul_tn_accum out shape");

  kernels::matmul_tn_accum(a.data(), b.data(), out.data(), m, k, n);
}

Tensor transpose(const Tensor& a) {
  CA_CHECK(a.rank() == 2, "transpose requires rank-2 tensor");
  const std::int64_t m = a.dim(0);
  const std::int64_t n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at2(j, i) = a.at2(i, j);
  }
  return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double worst = 0.0;
  auto va = a.values();
  auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(va[i]) - vb[i]));
  }
  return worst;
}

}  // namespace chipalign::ops
