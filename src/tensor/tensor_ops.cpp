#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>

namespace chipalign::ops {

namespace {
void check_same_size(std::span<const float> a, std::span<const float> b,
                     const char* what) {
  CA_CHECK(a.size() == b.size(),
           what << ": size mismatch " << a.size() << " vs " << b.size());
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  CA_CHECK(a.same_shape(b), what << ": shape mismatch "
                                 << shape_to_string(a.shape()) << " vs "
                                 << shape_to_string(b.shape()));
}
}  // namespace

void axpy(float alpha, std::span<const float> src, std::span<float> dst) {
  check_same_size(src, dst, "axpy");
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] += alpha * src[i];
}

double dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double norm(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

void scale(std::span<float> a, float alpha) {
  for (float& v : a) v *= alpha;
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

void softmax_inplace(std::span<float> logits) {
  CA_CHECK(!logits.empty(), "softmax on empty span");
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (float& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : logits) v *= inv;
}

double log_sum_exp(std::span<const float> logits) {
  CA_CHECK(!logits.empty(), "log_sum_exp on empty span");
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v - max_logit));
  return static_cast<double>(max_logit) + std::log(sum);
}

std::int64_t argmax(std::span<const float> values) {
  CA_CHECK(!values.empty(), "argmax on empty span");
  return static_cast<std::int64_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  axpy(1.0F, b.values(), out.values());
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  axpy(-1.0F, b.values(), out.values());
  return out;
}

Tensor scaled(const Tensor& a, float alpha) {
  Tensor out = a;
  scale(out.values(), alpha);
  return out;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "hadamard");
  Tensor out = a;
  auto dst = out.values();
  auto src = b.values();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] *= src[i];
  return out;
}

double frobenius_norm(const Tensor& a) { return norm(a.values()); }

double cosine_similarity(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "cosine_similarity");
  return cosine(a.values(), b.values());
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CA_CHECK(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 operands");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  CA_CHECK(b.dim(0) == k, "matmul inner-dim mismatch: " << k << " vs " << b.dim(0));

  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();

  // ikj loop order: streams over b rows; good locality for row-major data.
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = pa[i * k + kk];
      if (aval == 0.0F) continue;
      const float* b_row = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += aval * b_row[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CA_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_nt requires rank-2 operands");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  CA_CHECK(b.dim(1) == k,
           "matmul_nt inner-dim mismatch: " << k << " vs " << b.dim(1));

  Tensor out({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = out.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b.data() + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a_row[kk]) * static_cast<double>(b_row[kk]);
      }
      c_row[j] = static_cast<float>(acc);
    }
  }
  return out;
}

void matmul_tn_accum(const Tensor& a, const Tensor& b, Tensor& out) {
  CA_CHECK(a.rank() == 2 && b.rank() == 2 && out.rank() == 2,
           "matmul_tn_accum requires rank-2 operands");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  CA_CHECK(b.dim(0) == m, "matmul_tn_accum row mismatch");
  CA_CHECK(out.dim(0) == k && out.dim(1) == n, "matmul_tn_accum out shape");

  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    const float* b_row = b.data() + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aval = a_row[kk];
      if (aval == 0.0F) continue;
      float* o_row = out.data() + kk * n;
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += aval * b_row[j];
    }
  }
}

Tensor transpose(const Tensor& a) {
  CA_CHECK(a.rank() == 2, "transpose requires rank-2 tensor");
  const std::int64_t m = a.dim(0);
  const std::int64_t n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at2(j, i) = a.at2(i, j);
  }
  return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double worst = 0.0;
  auto va = a.values();
  auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(va[i]) - vb[i]));
  }
  return worst;
}

}  // namespace chipalign::ops
