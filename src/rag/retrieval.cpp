#include "rag/retrieval.hpp"

#include <algorithm>
#include <map>

#include "rag/index_store.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

namespace {

IvfIndex maybe_build_ann(const DenseIndex& dense,
                         const RetrievalConfig& config) {
  if (config.ann_nlist == 0) return IvfIndex{};
  IvfConfig ivf;
  ivf.nlist = config.ann_nlist;
  return IvfIndex::build(dense.embeddings(), dense.embedder().dim(), ivf,
                         &global_thread_pool());
}

}  // namespace

RetrievalPipeline::RetrievalPipeline(DocStore corpus, RetrievalConfig config)
    : config_(config),
      bm25_(corpus),
      dense_(corpus, HashedEmbedder(config.embed_dim, config.embed_ngram)),
      ann_(maybe_build_ann(dense_, config)) {}

RetrievalPipeline::RetrievalPipeline(std::vector<std::string> corpus,
                                     RetrievalConfig config)
    : RetrievalPipeline(make_doc_store(std::move(corpus)), config) {}

RetrievalPipeline::RetrievalPipeline(RetrievalConfig config, Bm25Index bm25,
                                     DenseIndex dense, IvfIndex ann)
    : config_(config),
      bm25_(std::move(bm25)),
      dense_(std::move(dense)),
      ann_(std::move(ann)) {}

void RetrievalPipeline::save(const std::string& path) const {
  save_retrieval_index(path, bm25_, dense_, &ann_);
}

RetrievalPipeline RetrievalPipeline::load(const std::string& path,
                                          RetrievalConfig config) {
  RetrievalIndexParts parts = load_retrieval_index(path);
  config.embed_dim = parts.dense.embedder().dim();
  config.embed_ngram = parts.dense.embedder().ngram();
  config.ann_nlist = parts.ann.nlist();
  return RetrievalPipeline(config, std::move(parts.bm25),
                           std::move(parts.dense), std::move(parts.ann));
}

std::vector<RetrievalHit> RetrievalPipeline::dense_candidates(
    const std::string& query) const {
  if (!has_ann() || config_.ann_nprobe == 0) {
    return dense_.query(query, config_.candidates_per_retriever);
  }
  return ann_.query(dense_.embedder().embed(query),
                    config_.candidates_per_retriever, config_.ann_nprobe,
                    dense_.embeddings());
}

std::vector<RetrievalHit> RetrievalPipeline::retrieve(const std::string& query,
                                                      std::size_t top_k) const {
  // A query with no word tokens (empty, whitespace, pure punctuation) has
  // nothing to retrieve on; without this guard the character-n-gram dense
  // side can still hash punctuation into buckets and produce noise hits.
  if (word_tokens(query).empty()) return {};
  const auto lexical = bm25_.query(query, config_.candidates_per_retriever);
  const auto semantic = dense_candidates(query);

  // Reciprocal-rank fusion: score(d) = sum over lists of 1 / (k + rank).
  // Addition is commutative over a per-document accumulator, so the fused
  // scores do not depend on which retriever's list is folded in first.
  std::map<std::size_t, double> fused;
  for (std::size_t rank = 0; rank < lexical.size(); ++rank) {
    fused[lexical[rank].doc_index] +=
        1.0 / (config_.rrf_k + static_cast<double>(rank) + 1.0);
  }
  for (std::size_t rank = 0; rank < semantic.size(); ++rank) {
    fused[semantic[rank].doc_index] +=
        1.0 / (config_.rrf_k + static_cast<double>(rank) + 1.0);
  }

  std::vector<RetrievalHit> hits;
  hits.reserve(fused.size());
  for (const auto& [doc, score] : fused) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(),
            [](const RetrievalHit& a, const RetrievalHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_index < b.doc_index;
            });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

std::vector<std::string> RetrievalPipeline::retrieve_texts(
    const std::string& query, std::size_t top_k) const {
  std::vector<std::string> out;
  for (const RetrievalHit& hit : retrieve(query, top_k)) {
    out.push_back(bm25_.document(hit.doc_index));
  }
  return out;
}

std::vector<std::vector<RetrievalHit>> RetrievalPipeline::retrieve_batch(
    const std::vector<std::string>& queries, std::size_t top_k,
    ThreadPool* pool) const {
  std::vector<std::vector<RetrievalHit>> results(queries.size());
  // Queries are independent and retrieve() is a pure read, so each index
  // writes only its own slot — pooled results are bitwise-equal to serial.
  const auto retrieve_one = [&](std::size_t i) {
    results[i] = retrieve(queries[i], top_k);
  };
  if (pool != nullptr && queries.size() > 1) {
    pool->parallel_for(queries.size(), retrieve_one);
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) retrieve_one(i);
  }
  return results;
}

std::vector<std::vector<std::string>> RetrievalPipeline::retrieve_texts_batch(
    const std::vector<std::string>& queries, std::size_t top_k,
    ThreadPool* pool) const {
  const auto hit_lists = retrieve_batch(queries, top_k, pool);
  std::vector<std::vector<std::string>> out(hit_lists.size());
  for (std::size_t i = 0; i < hit_lists.size(); ++i) {
    out[i].reserve(hit_lists[i].size());
    for (const RetrievalHit& hit : hit_lists[i]) {
      out[i].push_back(bm25_.document(hit.doc_index));
    }
  }
  return out;
}

}  // namespace chipalign
