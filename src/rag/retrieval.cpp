#include "rag/retrieval.hpp"

#include <algorithm>
#include <map>

namespace chipalign {

RetrievalPipeline::RetrievalPipeline(std::vector<std::string> corpus,
                                     RetrievalConfig config)
    : config_(config),
      bm25_(corpus),
      dense_(corpus, HashedEmbedder(config.embed_dim, config.embed_ngram)) {}

std::vector<RetrievalHit> RetrievalPipeline::retrieve(const std::string& query,
                                                      std::size_t top_k) const {
  const auto lexical = bm25_.query(query, config_.candidates_per_retriever);
  const auto semantic = dense_.query(query, config_.candidates_per_retriever);

  // Reciprocal-rank fusion: score(d) = sum over lists of 1 / (k + rank).
  std::map<std::size_t, double> fused;
  for (std::size_t rank = 0; rank < lexical.size(); ++rank) {
    fused[lexical[rank].doc_index] +=
        1.0 / (config_.rrf_k + static_cast<double>(rank) + 1.0);
  }
  for (std::size_t rank = 0; rank < semantic.size(); ++rank) {
    fused[semantic[rank].doc_index] +=
        1.0 / (config_.rrf_k + static_cast<double>(rank) + 1.0);
  }

  std::vector<RetrievalHit> hits;
  hits.reserve(fused.size());
  for (const auto& [doc, score] : fused) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(),
            [](const RetrievalHit& a, const RetrievalHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_index < b.doc_index;
            });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

std::vector<std::string> RetrievalPipeline::retrieve_texts(
    const std::string& query, std::size_t top_k) const {
  std::vector<std::string> out;
  for (const RetrievalHit& hit : retrieve(query, top_k)) {
    out.push_back(bm25_.document(hit.doc_index));
  }
  return out;
}

}  // namespace chipalign
