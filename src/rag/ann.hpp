#pragma once
/// \file ann.hpp
/// \brief IVF-style approximate-nearest-neighbor index over dense embeddings.
///
/// Large fact bases make the brute-force dense scan the retrieval
/// bottleneck, so the dense side gets a classic inverted-file (IVF)
/// partition: spherical k-means clusters the (L2-normalized) document
/// embeddings into nlist partitions; a query scores all centroids, probes
/// the nprobe nearest partitions, and scores only their documents exactly.
/// Expected scan cost drops from O(N * dim) to O((nlist + N * nprobe /
/// nlist) * dim), with recall controlled by the nprobe knob.
///
/// Everything is deterministic: training samples by fixed stride, k-means
/// ties break toward the lower centroid index, and the final assignment
/// writes one slot per document, so a parallel build is bitwise-identical
/// to a serial one at any thread count.

#include <cstdint>
#include <span>
#include <vector>

#include "rag/common.hpp"

namespace chipalign {

class ThreadPool;

/// IVF build knobs.
struct IvfConfig {
  std::size_t nlist = 0;  ///< partitions; 0 = auto (~sqrt(N), capped)
  std::size_t train_sample = 16384;  ///< k-means training subsample cap
  int train_iters = 6;               ///< k-means refinement iterations
};

/// Inverted-file partition over a flat [N * dim] embedding block. The
/// embeddings themselves stay owned by the DenseIndex; the IVF holds only
/// centroids and per-partition document lists.
class IvfIndex {
 public:
  /// An empty index (no partitions); query() on it is invalid.
  IvfIndex() = default;

  /// Clusters `embeddings` ([count * dim] floats, L2-normalized rows).
  /// \param pool parallelizes the final document->partition assignment;
  ///   results are bitwise-identical at any pool size.
  static IvfIndex build(const std::vector<float>& embeddings, std::size_t dim,
                        const IvfConfig& config = {},
                        ThreadPool* pool = nullptr);

  /// Reassembles an index from persisted parts (index_store).
  static IvfIndex from_parts(std::size_t dim, std::vector<float> centroids,
                             std::vector<std::vector<std::uint32_t>> lists);

  bool empty() const { return centroids_.empty(); }
  std::size_t dim() const { return dim_; }
  std::size_t nlist() const { return lists_.size(); }
  const std::vector<float>& centroids() const { return centroids_; }
  const std::vector<std::vector<std::uint32_t>>& lists() const {
    return lists_;
  }

  /// Top-k hits among the nprobe nearest partitions, scored exactly against
  /// `embeddings` (the block the index was built over). With nprobe >=
  /// nlist the result equals the brute-force scan exactly (same scores,
  /// same tie ordering). Zero-similarity documents are omitted.
  std::vector<RetrievalHit> query(std::span<const float> query_vec,
                                  std::size_t top_k, std::size_t nprobe,
                                  const std::vector<float>& embeddings) const;

 private:
  std::size_t dim_ = 0;
  std::vector<float> centroids_;                   ///< flat [nlist * dim]
  std::vector<std::vector<std::uint32_t>> lists_;  ///< ascending doc ids
};

}  // namespace chipalign
