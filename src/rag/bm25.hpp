#pragma once
/// \file bm25.hpp
/// \brief Okapi BM25 lexical retrieval index.
///
/// The lexical half of the paper's RAG pipeline (which pairs BM25 with a
/// dense bge embedder). Documents are tokenized with word_tokens(); scoring
/// uses the standard BM25 formula with the non-negative "plus 1" idf variant
/// so common terms never subtract.
///
/// Term frequencies are counted once at build time and stored in the
/// postings, so a query costs O(postings of its terms) regardless of
/// document length, and a query term that appears several times ("clock
/// clock skew") is scored once, not once per occurrence.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rag/common.hpp"

namespace chipalign {

/// One postings entry: a document and the term's frequency inside it.
struct Bm25Posting {
  std::uint32_t doc = 0;
  std::uint32_t tf = 0;
};

/// Immutable BM25 index over a sentence corpus.
class Bm25Index {
 public:
  /// Builds over a shared document store (held by reference, not copied).
  /// \param k1 term-frequency saturation; \param b length normalization.
  explicit Bm25Index(DocStore documents, double k1 = 1.5, double b = 0.75);

  /// Convenience: wraps the corpus into its own store first.
  explicit Bm25Index(std::vector<std::string> documents, double k1 = 1.5,
                     double b = 0.75);

  /// Reassembles an index from persisted parts (index_store). The derived
  /// statistics (idf, average length) are recomputed from the postings with
  /// the build-time arithmetic, so scores are bitwise-identical to a fresh
  /// build over the same corpus.
  static Bm25Index from_parts(DocStore documents, double k1, double b,
                              std::vector<std::uint32_t> doc_token_counts,
                              std::map<std::string, std::vector<Bm25Posting>>
                                  postings);

  std::size_t size() const { return documents_->size(); }
  const std::string& document(std::size_t index) const;
  const DocStore& documents() const { return documents_; }

  /// Top-k documents by BM25 score (ties broken by lower index). Documents
  /// with zero score are omitted, so fewer than top_k hits may return.
  /// Repeated query terms are collapsed before scoring.
  std::vector<RetrievalHit> query(std::string_view text,
                                  std::size_t top_k) const;

  // Persisted state (index_store serializes exactly these).
  double k1() const { return k1_; }
  double b() const { return b_; }
  const std::vector<std::uint32_t>& doc_token_counts() const {
    return doc_token_counts_;
  }
  const std::map<std::string, std::vector<Bm25Posting>>& postings() const {
    return postings_;
  }

 private:
  struct FromPartsTag {};
  Bm25Index(FromPartsTag, DocStore documents, double k1, double b);

  /// Computes idf and the average document length from postings + counts.
  void finalize_statistics();

  DocStore documents_;
  std::map<std::string, std::vector<Bm25Posting>> postings_;
  std::map<std::string, double> idf_;
  std::vector<std::uint32_t> doc_token_counts_;
  double avg_doc_len_ = 0.0;
  double k1_;
  double b_;
};

}  // namespace chipalign
