#pragma once
/// \file bm25.hpp
/// \brief Okapi BM25 lexical retrieval index.
///
/// The lexical half of the paper's RAG pipeline (which pairs BM25 with a
/// dense bge embedder). Documents are tokenized with word_tokens(); scoring
/// uses the standard BM25 formula with the non-negative "plus 1" idf variant
/// so common terms never subtract.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace chipalign {

/// A scored document reference returned by retrieval components.
struct RetrievalHit {
  std::size_t doc_index = 0;
  double score = 0.0;
};

/// Immutable BM25 index over a sentence corpus.
class Bm25Index {
 public:
  /// \param k1 term-frequency saturation; \param b length normalization.
  explicit Bm25Index(std::vector<std::string> documents, double k1 = 1.5,
                     double b = 0.75);

  std::size_t size() const { return documents_.size(); }
  const std::string& document(std::size_t index) const;

  /// Top-k documents by BM25 score (ties broken by lower index). Documents
  /// with zero score are omitted, so fewer than top_k hits may return.
  std::vector<RetrievalHit> query(std::string_view text,
                                  std::size_t top_k) const;

 private:
  std::vector<std::string> documents_;
  std::vector<std::vector<std::string>> doc_tokens_;
  std::map<std::string, std::vector<std::size_t>> postings_;  ///< term -> docs
  std::map<std::string, double> idf_;
  std::vector<double> doc_len_;
  double avg_doc_len_ = 0.0;
  double k1_;
  double b_;
};

}  // namespace chipalign
