#include "rag/index_store.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"
#include "util/hash.hpp"

namespace chipalign {

namespace {

constexpr std::uint64_t kMagic = 0x5849444947415243ULL;  // "CARAGIDX" tail
constexpr std::uint64_t kFooterBytes = 40;
constexpr std::uint64_t kTableEntryBytes = 32;

enum SectionId : std::uint32_t {
  kSectionDocs = 1,
  kSectionBm25 = 2,
  kSectionDense = 3,
  kSectionAnn = 4,
};

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

/// Little-endian append-only serializer for one section buffer.
class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void floats(const std::vector<float>& v) {
    raw(v.data(), v.size() * sizeof(float));
  }
  const std::string& bytes() const { return buf_; }

 private:
  void raw(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  std::string buf_;
};

/// Bounds-checked little-endian reader over one section's bytes.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  double f64() { return fixed<double>(); }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string out(data_ + pos_, len);
    pos_ += len;
    return out;
  }
  void floats(std::vector<float>& out, std::size_t count) {
    need(count * sizeof(float));
    out.resize(count);
    std::memcpy(out.data(), data_ + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
  }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t bytes) {
    CA_CHECK(size_ - pos_ >= bytes, "section ends after " << size_
                                                          << " bytes, needed "
                                                          << bytes << " more");
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string docs_section(const Bm25Index& bm25) {
  Writer w;
  const std::vector<std::string>& docs = *bm25.documents();
  w.u64(docs.size());
  for (const std::string& doc : docs) w.str(doc);
  return w.bytes();
}

std::string bm25_section(const Bm25Index& bm25) {
  Writer w;
  w.f64(bm25.k1());
  w.f64(bm25.b());
  w.u64(bm25.doc_token_counts().size());
  for (const std::uint32_t count : bm25.doc_token_counts()) w.u32(count);
  w.u64(bm25.postings().size());
  for (const auto& [term, posting_list] : bm25.postings()) {
    w.str(term);
    w.u64(posting_list.size());
    for (const Bm25Posting& posting : posting_list) {
      w.u32(posting.doc);
      w.u32(posting.tf);
    }
  }
  return w.bytes();
}

std::string dense_section(const DenseIndex& dense) {
  Writer w;
  w.u64(dense.embedder().dim());
  w.u64(static_cast<std::uint64_t>(dense.embedder().ngram()));
  w.u64(dense.size());
  w.floats(dense.embeddings());
  return w.bytes();
}

std::string ann_section(const IvfIndex& ann) {
  Writer w;
  w.u64(ann.dim());
  w.u64(ann.nlist());
  w.floats(ann.centroids());
  for (const auto& list : ann.lists()) {
    w.u64(list.size());
    for (const std::uint32_t doc : list) w.u32(doc);
  }
  return w.bytes();
}

DocStore parse_docs(Reader& r) {
  const std::uint64_t count = r.u64();
  std::vector<std::string> docs;
  docs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) docs.push_back(r.str());
  return make_doc_store(std::move(docs));
}

Bm25Index parse_bm25(Reader& r, const DocStore& docs) {
  const double k1 = r.f64();
  const double b = r.f64();
  const std::uint64_t doc_count = r.u64();
  std::vector<std::uint32_t> counts;
  counts.reserve(doc_count);
  for (std::uint64_t i = 0; i < doc_count; ++i) counts.push_back(r.u32());
  const std::uint64_t term_count = r.u64();
  std::map<std::string, std::vector<Bm25Posting>> postings;
  for (std::uint64_t t = 0; t < term_count; ++t) {
    std::string term = r.str();
    const std::uint64_t posting_count = r.u64();
    std::vector<Bm25Posting> list;
    list.reserve(posting_count);
    for (std::uint64_t p = 0; p < posting_count; ++p) {
      Bm25Posting posting;
      posting.doc = r.u32();
      posting.tf = r.u32();
      list.push_back(posting);
    }
    postings.emplace(std::move(term), std::move(list));
  }
  return Bm25Index::from_parts(docs, k1, b, std::move(counts),
                               std::move(postings));
}

DenseIndex parse_dense(Reader& r, const DocStore& docs) {
  const std::uint64_t dim = r.u64();
  const std::uint64_t ngram = r.u64();
  const std::uint64_t doc_count = r.u64();
  CA_CHECK(dim >= 1 && dim <= (1ULL << 20), "implausible dense dim " << dim);
  CA_CHECK(doc_count == docs->size(), "dense section covers "
                                          << doc_count
                                          << " documents, DOCS section has "
                                          << docs->size());
  std::vector<float> embeddings;
  r.floats(embeddings, doc_count * dim);
  return DenseIndex::from_parts(
      docs, HashedEmbedder(dim, static_cast<int>(ngram)),
      std::move(embeddings));
}

IvfIndex parse_ann(Reader& r) {
  const std::uint64_t dim = r.u64();
  const std::uint64_t nlist = r.u64();
  CA_CHECK(dim >= 1 && dim <= (1ULL << 20), "implausible ANN dim " << dim);
  CA_CHECK(nlist >= 1 && nlist <= (1ULL << 20),
           "implausible ANN partition count " << nlist);
  std::vector<float> centroids;
  r.floats(centroids, nlist * dim);
  std::vector<std::vector<std::uint32_t>> lists(nlist);
  for (std::uint64_t c = 0; c < nlist; ++c) {
    const std::uint64_t size = r.u64();
    lists[c].reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) lists[c].push_back(r.u32());
  }
  return IvfIndex::from_parts(dim, std::move(centroids), std::move(lists));
}

}  // namespace

void save_retrieval_index(const std::string& path, const Bm25Index& bm25,
                          const DenseIndex& dense, const IvfIndex* ann) {
  CA_CHECK(bm25.documents() == dense.documents(),
           "retrieval index save: BM25 and dense must share one DocStore");
  CA_FAILPOINT("ragindex.save");

  const std::string tmp = fs_io::temp_path_for(path);
  try {
    fs_io::AppendFile out(tmp);
    std::vector<SectionEntry> entries;
    std::uint64_t offset = 0;
    // One section buffer lives in memory at a time; each streams straight
    // into the temp file once its checksum is recorded.
    const auto append_section = [&](std::uint32_t id, std::string bytes) {
      entries.push_back(
          {id, offset, bytes.size(), xxh64(bytes.data(), bytes.size())});
      out.append(bytes);
      offset += bytes.size();
    };
    append_section(kSectionDocs, docs_section(bm25));
    append_section(kSectionBm25, bm25_section(bm25));
    append_section(kSectionDense, dense_section(dense));
    if (ann != nullptr && !ann->empty()) {
      append_section(kSectionAnn, ann_section(*ann));
    }

    Writer table;
    for (const SectionEntry& entry : entries) {
      table.u32(entry.id);
      table.u32(0);
      table.u64(entry.offset);
      table.u64(entry.size);
      table.u64(entry.checksum);
    }
    Writer footer;
    footer.u64(offset);
    footer.u64(entries.size());
    footer.u64(xxh64(table.bytes().data(), table.bytes().size()));
    footer.u32(kRetrievalIndexVersion);
    footer.u32(0);
    footer.u64(kMagic);
    out.append(table.bytes());
    out.append(footer.bytes());
    out.sync();
    out.close();
    fs_io::commit_file(tmp, path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

RetrievalIndexParts load_retrieval_index(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  CA_CHECK(file.good(), "cannot open retrieval index '" << path << "'");
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  // Buffer failpoint: tests inject bitflips / short reads here to prove
  // corruption is caught by the checksums below, not by undefined parses.
  data.resize(failpoint::eval_io("ragindex.read", data.data(), data.size()));

  try {
    CA_CHECK(data.size() >= kFooterBytes, "file is only "
                                              << data.size()
                                              << " bytes, smaller than the "
                                                 "footer");
    Reader footer(data.data() + data.size() - kFooterBytes, kFooterBytes);
    const std::uint64_t table_offset = footer.u64();
    const std::uint64_t section_count = footer.u64();
    const std::uint64_t table_checksum = footer.u64();
    const std::uint32_t version = footer.u32();
    footer.u32();
    CA_CHECK(footer.u64() == kMagic, "not a retrieval index (bad magic)");
    CA_CHECK(version == kRetrievalIndexVersion,
             "format version " << version << " is not the supported version "
                               << kRetrievalIndexVersion);

    CA_CHECK(section_count >= 1 && section_count <= 64,
             "implausible section count " << section_count);
    const std::uint64_t table_size = section_count * kTableEntryBytes;
    CA_CHECK(table_offset <= data.size() - kFooterBytes &&
                 table_size == data.size() - kFooterBytes - table_offset,
             "section table does not line up with the file size (truncated "
             "write?)");
    CA_CHECK(xxh64(data.data() + table_offset, table_size) == table_checksum,
             "section table checksum mismatch");

    Reader table(data.data() + table_offset, table_size);
    DocStore docs;
    std::optional<Bm25Index> bm25_opt;
    std::optional<DenseIndex> dense_opt;
    IvfIndex ann;
    for (std::uint64_t s = 0; s < section_count; ++s) {
      SectionEntry entry;
      entry.id = table.u32();
      table.u32();
      entry.offset = table.u64();
      entry.size = table.u64();
      entry.checksum = table.u64();
      CA_CHECK(entry.size <= table_offset &&
                   entry.offset <= table_offset - entry.size,
               "section " << entry.id << " extends past the section table");
      const char* bytes = data.data() + entry.offset;
      CA_CHECK(xxh64(bytes, entry.size) == entry.checksum,
               "section " << entry.id << " checksum mismatch (corrupt "
                          << "bytes)");
      Reader r(bytes, entry.size);
      switch (entry.id) {
        case kSectionDocs:
          docs = parse_docs(r);
          break;
        case kSectionBm25:
          CA_CHECK(docs != nullptr, "BM25 section precedes DOCS");
          bm25_opt.emplace(parse_bm25(r, docs));
          break;
        case kSectionDense:
          CA_CHECK(docs != nullptr, "DENSE section precedes DOCS");
          dense_opt.emplace(parse_dense(r, docs));
          break;
        case kSectionAnn:
          ann = parse_ann(r);
          break;
        default:
          CA_THROW("unknown section id " << entry.id);
      }
      CA_CHECK(r.done(), "section " << entry.id << " has trailing bytes");
    }
    CA_CHECK(docs != nullptr && bm25_opt.has_value() && dense_opt.has_value(),
             "missing a required section (DOCS, BM25, DENSE)");
    if (!ann.empty()) {
      CA_CHECK(ann.dim() == dense_opt->embedder().dim(),
               "ANN dim " << ann.dim() << " does not match dense dim "
                          << dense_opt->embedder().dim());
    }
    return RetrievalIndexParts{std::move(docs), std::move(*bm25_opt),
                               std::move(*dense_opt), std::move(ann)};
  } catch (const Error& e) {
    CA_THROW("retrieval index '" << path << "' is truncated or corrupt: "
                                 << e.what());
  }
}

}  // namespace chipalign
