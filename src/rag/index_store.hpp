#pragma once
/// \file index_store.hpp
/// \brief On-disk retrieval index: documents, BM25 postings, dense
/// embeddings and the optional IVF partition in one checksummed file.
///
/// Layout (little-endian):
///
///   [section 0 bytes][section 1 bytes]...[section table][footer]
///
///   footer (40 bytes, at the end of the file so sections stream out
///   without back-patching): table offset, section count, XXH64 of the
///   table, format version, magic.
///   table: per section {id, reserved, offset, size, XXH64 of the bytes}.
///   sections: DOCS (length-prefixed sentences), BM25 (k1/b, per-document
///   token counts, term -> postings with stored tf), DENSE (dim, ngram,
///   flat fp32 embeddings), ANN (optional: centroids + partition lists).
///
/// Writing goes through the PR-5 durable primitives: sections append into
/// `<path>.tmp` (one buffered section in memory at a time), then
/// fs_io::commit_file fsyncs and renames — a crash leaves either the old
/// complete index or the new one, never a torn mix. Loading verifies the
/// magic, version, table checksum and every section checksum before any
/// parsing, and wraps all failures in a clear "retrieval index '<path>'
/// ..." error. Failpoint sites: `ragindex.save` (entry), `ragindex.read`
/// (buffer site over the loaded bytes — bitflip / short-read injectable).
///
/// The derived BM25 statistics are recomputed on load with the build-time
/// arithmetic and the dense floats are stored verbatim, so a loaded index
/// ranks bitwise-identically to the in-memory build it was saved from.

#include <string>

#include "rag/ann.hpp"
#include "rag/bm25.hpp"
#include "rag/common.hpp"
#include "rag/embedder.hpp"

namespace chipalign {

/// Current file-format version.
inline constexpr std::uint32_t kRetrievalIndexVersion = 1;

/// The parts a retrieval index file persists. `ann` is empty when the
/// pipeline was saved without an IVF partition. All three indexes share
/// `documents` (held once).
struct RetrievalIndexParts {
  DocStore documents;
  Bm25Index bm25;
  DenseIndex dense;
  IvfIndex ann;
};

/// Durably writes the index to `path` (temp write -> fsync -> rename ->
/// dir fsync). \param ann may be null or empty to omit the ANN section.
void save_retrieval_index(const std::string& path, const Bm25Index& bm25,
                          const DenseIndex& dense,
                          const IvfIndex* ann = nullptr);

/// Loads and verifies an index written by save_retrieval_index(). Throws
/// chipalign::Error with the offending path (and section, for checksum
/// mismatches) on truncated, corrupt or version-mismatched files.
RetrievalIndexParts load_retrieval_index(const std::string& path);

}  // namespace chipalign
