#include "rag/bm25.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

Bm25Index::Bm25Index(DocStore documents, double k1, double b)
    : documents_(std::move(documents)), k1_(k1), b_(b) {
  CA_CHECK(documents_ != nullptr && !documents_->empty(),
           "BM25 index needs at least one document");
  CA_CHECK(k1_ > 0.0 && b_ >= 0.0 && b_ <= 1.0, "invalid BM25 parameters");

  doc_token_counts_.reserve(documents_->size());
  for (std::size_t d = 0; d < documents_->size(); ++d) {
    const std::vector<std::string> tokens = word_tokens((*documents_)[d]);
    doc_token_counts_.push_back(static_cast<std::uint32_t>(tokens.size()));

    // Count each term once per document; the postings carry the frequency,
    // so queries never rescan the document's token list.
    std::map<std::string, std::uint32_t> tf;
    for (const std::string& term : tokens) ++tf[term];
    for (const auto& [term, freq] : tf) {
      postings_[term].push_back({static_cast<std::uint32_t>(d), freq});
    }
  }
  finalize_statistics();
}

Bm25Index::Bm25Index(std::vector<std::string> documents, double k1, double b)
    : Bm25Index(make_doc_store(std::move(documents)), k1, b) {}

Bm25Index::Bm25Index(FromPartsTag, DocStore documents, double k1, double b)
    : documents_(std::move(documents)), k1_(k1), b_(b) {
  CA_CHECK(documents_ != nullptr && !documents_->empty(),
           "BM25 index needs at least one document");
  CA_CHECK(k1_ > 0.0 && b_ >= 0.0 && b_ <= 1.0, "invalid BM25 parameters");
}

Bm25Index Bm25Index::from_parts(
    DocStore documents, double k1, double b,
    std::vector<std::uint32_t> doc_token_counts,
    std::map<std::string, std::vector<Bm25Posting>> postings) {
  Bm25Index index(FromPartsTag{}, std::move(documents), k1, b);
  CA_CHECK(doc_token_counts.size() == index.documents_->size(),
           "BM25 parts: token-count table covers "
               << doc_token_counts.size() << " documents, store has "
               << index.documents_->size());
  index.doc_token_counts_ = std::move(doc_token_counts);
  index.postings_ = std::move(postings);
  for (const auto& [term, posting_list] : index.postings_) {
    CA_CHECK(!posting_list.empty(),
             "BM25 parts: term '" << term << "' has an empty postings list");
    for (const Bm25Posting& posting : posting_list) {
      CA_CHECK(posting.doc < index.documents_->size(),
               "BM25 parts: term '" << term << "' references document "
                                    << posting.doc << " outside the store");
    }
  }
  index.finalize_statistics();
  return index;
}

void Bm25Index::finalize_statistics() {
  double total_len = 0.0;
  for (const std::uint32_t count : doc_token_counts_) {
    total_len += static_cast<double>(count);
  }
  avg_doc_len_ = total_len / static_cast<double>(documents_->size());

  const auto n = static_cast<double>(documents_->size());
  for (const auto& [term, posting_list] : postings_) {
    const auto df = static_cast<double>(posting_list.size());
    // BM25+ style non-negative idf.
    idf_[term] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
}

const std::string& Bm25Index::document(std::size_t index) const {
  CA_CHECK(index < documents_->size(), "document index out of range");
  return (*documents_)[index];
}

std::vector<RetrievalHit> Bm25Index::query(std::string_view text,
                                           std::size_t top_k) const {
  // Aggregate the query to distinct terms (first-occurrence order) so a
  // repeated term contributes once instead of once per occurrence.
  const std::vector<std::string> terms = word_tokens(text);
  std::vector<std::string> distinct;
  distinct.reserve(terms.size());
  for (const std::string& term : terms) {
    if (std::find(distinct.begin(), distinct.end(), term) == distinct.end()) {
      distinct.push_back(term);
    }
  }

  std::vector<double> scores(documents_->size(), 0.0);
  for (const std::string& term : distinct) {
    const auto idf_it = idf_.find(term);
    if (idf_it == idf_.end()) continue;
    const auto postings_it = postings_.find(term);
    for (const Bm25Posting& posting : postings_it->second) {
      const auto tf = static_cast<double>(posting.tf);
      const double denom =
          tf + k1_ * (1.0 - b_ +
                      b_ * static_cast<double>(doc_token_counts_[posting.doc]) /
                          avg_doc_len_);
      scores[posting.doc] += idf_it->second * tf * (k1_ + 1.0) / denom;
    }
  }

  std::vector<RetrievalHit> hits;
  for (std::size_t d = 0; d < scores.size(); ++d) {
    if (scores[d] > 0.0) hits.push_back({d, scores[d]});
  }
  std::sort(hits.begin(), hits.end(), [](const RetrievalHit& a,
                                         const RetrievalHit& b_hit) {
    if (a.score != b_hit.score) return a.score > b_hit.score;
    return a.doc_index < b_hit.doc_index;
  });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace chipalign
