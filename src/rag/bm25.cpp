#include "rag/bm25.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

Bm25Index::Bm25Index(std::vector<std::string> documents, double k1, double b)
    : documents_(std::move(documents)), k1_(k1), b_(b) {
  CA_CHECK(!documents_.empty(), "BM25 index needs at least one document");
  CA_CHECK(k1_ > 0.0 && b_ >= 0.0 && b_ <= 1.0, "invalid BM25 parameters");

  doc_tokens_.reserve(documents_.size());
  doc_len_.reserve(documents_.size());
  double total_len = 0.0;
  for (std::size_t d = 0; d < documents_.size(); ++d) {
    doc_tokens_.push_back(word_tokens(documents_[d]));
    doc_len_.push_back(static_cast<double>(doc_tokens_.back().size()));
    total_len += doc_len_.back();

    // Record each document once per distinct term.
    std::vector<std::string> seen;
    for (const std::string& term : doc_tokens_.back()) {
      if (std::find(seen.begin(), seen.end(), term) == seen.end()) {
        seen.push_back(term);
        postings_[term].push_back(d);
      }
    }
  }
  avg_doc_len_ = total_len / static_cast<double>(documents_.size());

  const auto n = static_cast<double>(documents_.size());
  for (const auto& [term, docs] : postings_) {
    const auto df = static_cast<double>(docs.size());
    // BM25+ style non-negative idf.
    idf_[term] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
}

const std::string& Bm25Index::document(std::size_t index) const {
  CA_CHECK(index < documents_.size(), "document index out of range");
  return documents_[index];
}

std::vector<RetrievalHit> Bm25Index::query(std::string_view text,
                                           std::size_t top_k) const {
  const std::vector<std::string> terms = word_tokens(text);
  std::vector<double> scores(documents_.size(), 0.0);

  for (const std::string& term : terms) {
    const auto idf_it = idf_.find(term);
    if (idf_it == idf_.end()) continue;
    const auto postings_it = postings_.find(term);
    for (std::size_t d : postings_it->second) {
      const auto tf = static_cast<double>(
          std::count(doc_tokens_[d].begin(), doc_tokens_[d].end(), term));
      const double denom =
          tf + k1_ * (1.0 - b_ + b_ * doc_len_[d] / avg_doc_len_);
      scores[d] += idf_it->second * tf * (k1_ + 1.0) / denom;
    }
  }

  std::vector<RetrievalHit> hits;
  for (std::size_t d = 0; d < scores.size(); ++d) {
    if (scores[d] > 0.0) hits.push_back({d, scores[d]});
  }
  std::sort(hits.begin(), hits.end(), [](const RetrievalHit& a,
                                         const RetrievalHit& b_hit) {
    if (a.score != b_hit.score) return a.score > b_hit.score;
    return a.doc_index < b_hit.doc_index;
  });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace chipalign
