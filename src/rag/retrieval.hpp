#pragma once
/// \file retrieval.hpp
/// \brief Hybrid retrieval pipeline: BM25 + dense recall, rank-fusion rerank.
///
/// Mirrors the paper's three-stage setup (bge embeddings + BM25 retrieval +
/// bge reranker): both retrievers nominate candidates, and a reciprocal-rank
/// -fusion reranker produces the final ordering. Used to build the "RAG
/// Context" column of Table 1.
///
/// Production shape: the corpus is held once (one DocStore shared by the
/// lexical and dense indexes), the whole pipeline persists to one
/// checksummed index file (save()/load(), see index_store.hpp) so large
/// fact bases index once instead of per process, the dense side can route
/// through an IVF partition (ann_nlist/ann_nprobe) instead of a brute-force
/// scan, and retrieve_batch() fans independent queries across a ThreadPool
/// with results bitwise-identical to serial retrieve().

#include <string>
#include <vector>

#include "rag/ann.hpp"
#include "rag/bm25.hpp"
#include "rag/common.hpp"
#include "rag/embedder.hpp"

namespace chipalign {

class ThreadPool;

/// Pipeline knobs.
struct RetrievalConfig {
  std::size_t candidates_per_retriever = 6;  ///< recall depth before rerank
  double rrf_k = 10.0;                       ///< reciprocal-rank-fusion offset
  std::size_t embed_dim = 256;
  int embed_ngram = 3;
  /// Build an IVF partition over the dense embeddings (0 = keep the exact
  /// scan). Auto-sized (~sqrt(N)) when set to IvfConfig{}.nlist semantics.
  std::size_t ann_nlist = 0;
  /// Partitions probed per dense query when an ANN partition is present;
  /// 0 forces the exact scan even if one was built/loaded.
  std::size_t ann_nprobe = 8;
};

/// Immutable two-stage retrieval pipeline over a sentence corpus.
class RetrievalPipeline {
 public:
  /// Builds all indexes in memory over a shared corpus store.
  explicit RetrievalPipeline(DocStore corpus, RetrievalConfig config = {});

  /// Convenience: wraps the corpus into its own store first.
  explicit RetrievalPipeline(std::vector<std::string> corpus,
                             RetrievalConfig config = {});

  /// Durably persists every index to one checksummed file (index_store).
  void save(const std::string& path) const;

  /// Loads a persisted pipeline. Index parameters (BM25 k1/b, embedder
  /// dim/ngram, ANN partitions) come from the file; `config` supplies the
  /// query-time knobs (fusion depth, rrf_k, ann_nprobe). Rankings are
  /// bitwise-identical to the in-memory build the file was saved from.
  static RetrievalPipeline load(const std::string& path,
                                RetrievalConfig config = {});

  std::size_t corpus_size() const { return bm25_.size(); }

  /// Final reranked top-k hits (RRF score; higher is better). An empty or
  /// stop-word-only query returns no hits.
  std::vector<RetrievalHit> retrieve(const std::string& query,
                                     std::size_t top_k) const;

  /// Convenience: the top-k document texts.
  std::vector<std::string> retrieve_texts(const std::string& query,
                                          std::size_t top_k) const;

  /// Batched retrieval: one result list per query, bitwise-identical to
  /// calling retrieve() serially. \param pool fans queries across workers
  /// (each query writes only its own slot); null runs serially.
  std::vector<std::vector<RetrievalHit>> retrieve_batch(
      const std::vector<std::string>& queries, std::size_t top_k,
      ThreadPool* pool = nullptr) const;

  /// Batched retrieve_texts (same contract as retrieve_batch).
  std::vector<std::vector<std::string>> retrieve_texts_batch(
      const std::vector<std::string>& queries, std::size_t top_k,
      ThreadPool* pool = nullptr) const;

  const std::string& document(std::size_t index) const {
    return bm25_.document(index);
  }
  const DocStore& documents() const { return bm25_.documents(); }

  const RetrievalConfig& config() const { return config_; }
  const Bm25Index& bm25() const { return bm25_; }
  const DenseIndex& dense() const { return dense_; }
  const IvfIndex& ann() const { return ann_; }
  bool has_ann() const { return !ann_.empty(); }

 private:
  RetrievalPipeline(RetrievalConfig config, Bm25Index bm25, DenseIndex dense,
                    IvfIndex ann);

  /// Dense candidates via the IVF partition when present (and nprobe > 0),
  /// the exact scan otherwise.
  std::vector<RetrievalHit> dense_candidates(const std::string& query) const;

  RetrievalConfig config_;
  Bm25Index bm25_;
  DenseIndex dense_;
  IvfIndex ann_;
};

}  // namespace chipalign
