#pragma once
/// \file retrieval.hpp
/// \brief Hybrid retrieval pipeline: BM25 + dense recall, rank-fusion rerank.
///
/// Mirrors the paper's three-stage setup (bge embeddings + BM25 retrieval +
/// bge reranker): both retrievers nominate candidates, and a reciprocal-rank
/// -fusion reranker produces the final ordering. Used to build the "RAG
/// Context" column of Table 1.

#include <string>
#include <vector>

#include "rag/bm25.hpp"
#include "rag/embedder.hpp"

namespace chipalign {

/// Pipeline knobs.
struct RetrievalConfig {
  std::size_t candidates_per_retriever = 6;  ///< recall depth before rerank
  double rrf_k = 10.0;                       ///< reciprocal-rank-fusion offset
  std::size_t embed_dim = 256;
  int embed_ngram = 3;
};

/// Immutable two-stage retrieval pipeline over a sentence corpus.
class RetrievalPipeline {
 public:
  explicit RetrievalPipeline(std::vector<std::string> corpus,
                             RetrievalConfig config = {});

  std::size_t corpus_size() const { return bm25_.size(); }

  /// Final reranked top-k hits (RRF score; higher is better).
  std::vector<RetrievalHit> retrieve(const std::string& query,
                                     std::size_t top_k) const;

  /// Convenience: the top-k document texts.
  std::vector<std::string> retrieve_texts(const std::string& query,
                                          std::size_t top_k) const;

  const std::string& document(std::size_t index) const {
    return bm25_.document(index);
  }

 private:
  RetrievalConfig config_;
  Bm25Index bm25_;
  DenseIndex dense_;
};

}  // namespace chipalign
