#include "rag/ann.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

namespace {

/// Dot product of two dim-length float rows, accumulated in fp64 (the same
/// contract as HashedEmbedder::cosine, so IVF scores match exact scores
/// bitwise).
double dot(const float* a, const float* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

/// Index of the nearest centroid by dot product; ties toward lower index.
std::size_t nearest_centroid(const float* vec,
                             const std::vector<float>& centroids,
                             std::size_t nlist, std::size_t dim) {
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t c = 0; c < nlist; ++c) {
    const double score = dot(vec, centroids.data() + c * dim, dim);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

}  // namespace

IvfIndex IvfIndex::build(const std::vector<float>& embeddings,
                         std::size_t dim, const IvfConfig& config,
                         ThreadPool* pool) {
  CA_CHECK(dim > 0, "IVF build needs a positive dim");
  CA_CHECK(!embeddings.empty() && embeddings.size() % dim == 0,
           "IVF build: embedding block of " << embeddings.size()
                                            << " floats is not a multiple of "
                                               "dim "
                                            << dim);
  const std::size_t count = embeddings.size() / dim;

  std::size_t nlist = config.nlist;
  if (nlist == 0) {
    nlist = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(count))));
  }
  nlist = std::clamp<std::size_t>(nlist, 1, std::min<std::size_t>(count, 4096));

  // Deterministic stride subsample for k-means training.
  const std::size_t sample =
      std::min<std::size_t>(count, std::max<std::size_t>(config.train_sample,
                                                         nlist));
  const std::size_t stride = count / sample;
  std::vector<std::size_t> train;
  train.reserve(sample);
  for (std::size_t i = 0; i < sample; ++i) train.push_back(i * stride);

  // Init: spread seeds across the training sample.
  IvfIndex index;
  index.dim_ = dim;
  index.centroids_.resize(nlist * dim);
  for (std::size_t c = 0; c < nlist; ++c) {
    const std::size_t doc = train[c * train.size() / nlist];
    std::copy_n(embeddings.data() + doc * dim, dim,
                index.centroids_.data() + c * dim);
  }

  // Spherical k-means on the sample: assign to max-dot centroid, recompute
  // means, renormalize. Empty partitions keep their previous centroid.
  std::vector<double> sums(nlist * dim);
  std::vector<std::size_t> members(nlist);
  for (int iter = 0; iter < config.train_iters; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(members.begin(), members.end(), 0);
    for (const std::size_t doc : train) {
      const float* vec = embeddings.data() + doc * dim;
      const std::size_t c = nearest_centroid(vec, index.centroids_, nlist,
                                             dim);
      double* sum = sums.data() + c * dim;
      for (std::size_t i = 0; i < dim; ++i) sum[i] += vec[i];
      ++members[c];
    }
    for (std::size_t c = 0; c < nlist; ++c) {
      if (members[c] == 0) continue;
      const double* sum = sums.data() + c * dim;
      double norm_sq = 0.0;
      for (std::size_t i = 0; i < dim; ++i) norm_sq += sum[i] * sum[i];
      if (norm_sq <= 0.0) continue;
      const double inv = 1.0 / std::sqrt(norm_sq);
      float* centroid = index.centroids_.data() + c * dim;
      for (std::size_t i = 0; i < dim; ++i) {
        centroid[i] = static_cast<float>(sum[i] * inv);
      }
    }
  }

  // Final assignment of every document — the expensive O(N * nlist * dim)
  // pass. Each document writes only its own slot, so fanning it across the
  // pool keeps the partition lists bitwise-identical to a serial build.
  std::vector<std::uint32_t> assignment(count);
  const auto assign_one = [&](std::size_t doc) {
    assignment[doc] = static_cast<std::uint32_t>(nearest_centroid(
        embeddings.data() + doc * dim, index.centroids_, nlist, dim));
  };
  if (pool != nullptr) {
    pool->parallel_for(count, assign_one);
  } else {
    for (std::size_t doc = 0; doc < count; ++doc) assign_one(doc);
  }

  index.lists_.resize(nlist);
  for (std::size_t doc = 0; doc < count; ++doc) {
    index.lists_[assignment[doc]].push_back(
        static_cast<std::uint32_t>(doc));
  }
  return index;
}

IvfIndex IvfIndex::from_parts(std::size_t dim, std::vector<float> centroids,
                              std::vector<std::vector<std::uint32_t>> lists) {
  CA_CHECK(dim > 0, "IVF parts need a positive dim");
  CA_CHECK(!lists.empty() && centroids.size() == lists.size() * dim,
           "IVF parts: " << centroids.size() << " centroid floats do not "
                         << "cover " << lists.size() << " partitions x dim "
                         << dim);
  IvfIndex index;
  index.dim_ = dim;
  index.centroids_ = std::move(centroids);
  index.lists_ = std::move(lists);
  return index;
}

std::vector<RetrievalHit> IvfIndex::query(
    std::span<const float> query_vec, std::size_t top_k, std::size_t nprobe,
    const std::vector<float>& embeddings) const {
  CA_CHECK(!empty(), "query on an empty IVF index");
  CA_CHECK(query_vec.size() == dim_, "IVF query vector dim mismatch");
  CA_CHECK(embeddings.size() % dim_ == 0,
           "IVF query: embedding block mismatch");
  const std::size_t nlist = lists_.size();
  nprobe = std::clamp<std::size_t>(nprobe, 1, nlist);

  // Rank partitions by centroid similarity (ties toward lower index).
  std::vector<RetrievalHit> parts;
  parts.reserve(nlist);
  for (std::size_t c = 0; c < nlist; ++c) {
    parts.push_back(
        {c, dot(query_vec.data(), centroids_.data() + c * dim_, dim_)});
  }
  const auto by_score = [](const RetrievalHit& a, const RetrievalHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_index < b.doc_index;
  };
  std::partial_sort(parts.begin(), parts.begin() + nprobe, parts.end(),
                    by_score);

  // Exact scoring within the probed partitions.
  std::vector<RetrievalHit> hits;
  for (std::size_t p = 0; p < nprobe; ++p) {
    for (const std::uint32_t doc : lists_[parts[p].doc_index]) {
      const double sim =
          dot(query_vec.data(), embeddings.data() + doc * dim_, dim_);
      if (sim > 0.0) hits.push_back({doc, sim});
    }
  }
  std::sort(hits.begin(), hits.end(), by_score);
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace chipalign
