#pragma once
/// \file common.hpp
/// \brief Shared retrieval types: scored hits and the shared document store.
///
/// Every retriever (BM25, dense, ANN) scores documents out of one corpus.
/// The corpus is held exactly once, behind a shared_ptr, so a hybrid
/// pipeline holding a lexical and a dense index does not double resident
/// memory for large fact bases.

#include <memory>
#include <string>
#include <vector>

namespace chipalign {

/// A scored document reference returned by retrieval components.
struct RetrievalHit {
  std::size_t doc_index = 0;
  double score = 0.0;
};

/// Immutable corpus shared between retrievers (held once per pipeline).
using DocStore = std::shared_ptr<const std::vector<std::string>>;

/// Wraps a corpus into a shared store.
inline DocStore make_doc_store(std::vector<std::string> documents) {
  return std::make_shared<const std::vector<std::string>>(
      std::move(documents));
}

}  // namespace chipalign
