#include "rag/embedder.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

namespace {
/// FNV-1a over a byte window.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}
}  // namespace

HashedEmbedder::HashedEmbedder(std::size_t dim, int ngram)
    : dim_(dim), ngram_(ngram) {
  CA_CHECK(dim_ > 0, "embedder dim must be positive");
  CA_CHECK(ngram_ > 0, "ngram must be positive");
}

std::vector<float> HashedEmbedder::embed(std::string_view text) const {
  std::vector<float> vec(dim_, 0.0F);
  const std::string lowered = to_lower(text);
  const auto n = static_cast<std::size_t>(ngram_);
  if (lowered.size() >= n) {
    for (std::size_t i = 0; i + n <= lowered.size(); ++i) {
      const std::uint64_t h = fnv1a(std::string_view(lowered).substr(i, n));
      vec[static_cast<std::size_t>(h % dim_)] += 1.0F;
    }
  }
  double norm_sq = 0.0;
  for (float v : vec) norm_sq += static_cast<double>(v) * v;
  if (norm_sq > 0.0) {
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : vec) v *= inv;
  }
  return vec;
}

double HashedEmbedder::cosine(std::span<const float> a,
                              std::span<const float> b) {
  CA_CHECK(a.size() == b.size(), "embedding size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;  // inputs are L2-normalized
}

DenseIndex::DenseIndex(DocStore documents, HashedEmbedder embedder)
    : documents_(std::move(documents)), embedder_(embedder) {
  CA_CHECK(documents_ != nullptr && !documents_->empty(),
           "dense index needs at least one document");
  embeddings_.reserve(documents_->size() * embedder_.dim());
  for (const std::string& doc : *documents_) {
    const std::vector<float> vec = embedder_.embed(doc);
    embeddings_.insert(embeddings_.end(), vec.begin(), vec.end());
  }
}

DenseIndex::DenseIndex(std::vector<std::string> documents,
                       HashedEmbedder embedder)
    : DenseIndex(make_doc_store(std::move(documents)), embedder) {}

DenseIndex::DenseIndex(FromPartsTag, DocStore documents,
                       HashedEmbedder embedder)
    : documents_(std::move(documents)), embedder_(embedder) {
  CA_CHECK(documents_ != nullptr && !documents_->empty(),
           "dense index needs at least one document");
}

DenseIndex DenseIndex::from_parts(DocStore documents, HashedEmbedder embedder,
                                  std::vector<float> embeddings) {
  DenseIndex index(FromPartsTag{}, std::move(documents), embedder);
  CA_CHECK(embeddings.size() ==
               index.documents_->size() * index.embedder_.dim(),
           "dense parts: " << embeddings.size() << " floats do not cover "
                           << index.documents_->size() << " documents x dim "
                           << index.embedder_.dim());
  index.embeddings_ = std::move(embeddings);
  return index;
}

const std::string& DenseIndex::document(std::size_t index) const {
  CA_CHECK(index < documents_->size(), "document index out of range");
  return (*documents_)[index];
}

std::span<const float> DenseIndex::embedding(std::size_t index) const {
  CA_CHECK(index < documents_->size(), "document index out of range");
  return std::span<const float>(embeddings_).subspan(index * embedder_.dim(),
                                                     embedder_.dim());
}

std::vector<RetrievalHit> DenseIndex::query(std::string_view text,
                                            std::size_t top_k) const {
  return query_vec(embedder_.embed(text), top_k);
}

std::vector<RetrievalHit> DenseIndex::query_vec(
    std::span<const float> query_vec, std::size_t top_k) const {
  std::vector<RetrievalHit> hits;
  for (std::size_t d = 0; d < documents_->size(); ++d) {
    const double sim = HashedEmbedder::cosine(query_vec, embedding(d));
    if (sim > 0.0) hits.push_back({d, sim});
  }
  std::sort(hits.begin(), hits.end(),
            [](const RetrievalHit& a, const RetrievalHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_index < b.doc_index;
            });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace chipalign
