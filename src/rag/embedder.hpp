#pragma once
/// \file embedder.hpp
/// \brief Hashed character-n-gram text embedder and dense retrieval index.
///
/// Stands in for the paper's bge-large-en dense embedder: each character
/// trigram (over the lowercased text) is hashed into a fixed-dimension
/// bucket; the resulting count vector is L2-normalized. Cosine similarity of
/// such vectors is a serviceable semantic proxy for the short documentation
/// sentences in this repo's corpus.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rag/bm25.hpp"

namespace chipalign {

/// Stateless hashing embedder.
class HashedEmbedder {
 public:
  /// \param dim embedding dimensionality; \param ngram character n-gram size.
  explicit HashedEmbedder(std::size_t dim = 256, int ngram = 3);

  std::size_t dim() const { return dim_; }

  /// L2-normalized embedding (zero vector for texts shorter than n).
  std::vector<float> embed(std::string_view text) const;

  static double cosine(std::span<const float> a, std::span<const float> b);

 private:
  std::size_t dim_;
  int ngram_;
};

/// Brute-force cosine-similarity index over precomputed embeddings.
class DenseIndex {
 public:
  DenseIndex(std::vector<std::string> documents, HashedEmbedder embedder);

  std::size_t size() const { return documents_.size(); }
  const std::string& document(std::size_t index) const;

  /// Top-k documents by cosine similarity (zero-similarity hits omitted).
  std::vector<RetrievalHit> query(std::string_view text,
                                  std::size_t top_k) const;

 private:
  std::vector<std::string> documents_;
  HashedEmbedder embedder_;
  std::vector<std::vector<float>> embeddings_;
};

}  // namespace chipalign
