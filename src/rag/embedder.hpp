#pragma once
/// \file embedder.hpp
/// \brief Hashed character-n-gram text embedder and dense retrieval index.
///
/// Stands in for the paper's bge-large-en dense embedder: each character
/// trigram (over the lowercased text) is hashed into a fixed-dimension
/// bucket; the resulting count vector is L2-normalized. Cosine similarity of
/// such vectors is a serviceable semantic proxy for the short documentation
/// sentences in this repo's corpus.
///
/// DenseIndex stores the corpus embeddings as one flat [size * dim] float
/// block (cache-friendly to scan, trivially serializable) and reads its
/// documents out of the shared DocStore.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rag/common.hpp"

namespace chipalign {

/// Stateless hashing embedder.
class HashedEmbedder {
 public:
  /// \param dim embedding dimensionality; \param ngram character n-gram size.
  explicit HashedEmbedder(std::size_t dim = 256, int ngram = 3);

  std::size_t dim() const { return dim_; }
  int ngram() const { return ngram_; }

  /// L2-normalized embedding (zero vector for texts shorter than n).
  std::vector<float> embed(std::string_view text) const;

  static double cosine(std::span<const float> a, std::span<const float> b);

 private:
  std::size_t dim_;
  int ngram_;
};

/// Brute-force cosine-similarity index over precomputed embeddings.
class DenseIndex {
 public:
  /// Embeds every document of a shared store.
  DenseIndex(DocStore documents, HashedEmbedder embedder);

  /// Convenience: wraps the corpus into its own store first.
  DenseIndex(std::vector<std::string> documents, HashedEmbedder embedder);

  /// Reassembles an index from persisted embeddings (index_store); the
  /// stored floats are used as-is, so loaded similarities are bitwise
  /// identical to a fresh build.
  static DenseIndex from_parts(DocStore documents, HashedEmbedder embedder,
                               std::vector<float> embeddings);

  std::size_t size() const { return documents_->size(); }
  const std::string& document(std::size_t index) const;
  const DocStore& documents() const { return documents_; }
  const HashedEmbedder& embedder() const { return embedder_; }

  /// Flat [size * dim] embedding block.
  const std::vector<float>& embeddings() const { return embeddings_; }
  std::span<const float> embedding(std::size_t index) const;

  /// Top-k documents by cosine similarity (zero-similarity hits omitted).
  std::vector<RetrievalHit> query(std::string_view text,
                                  std::size_t top_k) const;

  /// Same, over an already-embedded query vector.
  std::vector<RetrievalHit> query_vec(std::span<const float> query_vec,
                                      std::size_t top_k) const;

 private:
  struct FromPartsTag {};
  DenseIndex(FromPartsTag, DocStore documents, HashedEmbedder embedder);

  DocStore documents_;
  HashedEmbedder embedder_;
  std::vector<float> embeddings_;  ///< flat [size * dim]
};

}  // namespace chipalign
