#pragma once
/// \file safetensors.hpp
/// \brief Reader/writer for the safetensors checkpoint format.
///
/// Layout: an 8-byte little-endian header length, a JSON header mapping
/// tensor names to {dtype, shape, data_offsets}, then the raw tensor bytes.
/// We support F32/F16/BF16 storage; tensors are decoded to fp32 on load.
/// Files written here are readable by the reference Python implementation
/// (and vice versa for the supported dtypes).

#include <map>
#include <string>

#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// A named-tensor bundle plus free-form string metadata (the "__metadata__"
/// entry of the safetensors header).
struct SafetensorsFile {
  std::map<std::string, Tensor> tensors;
  std::map<std::string, std::string> metadata;
};

/// Writes all tensors with the given storage dtype. Tensor bytes are laid out
/// in name-sorted order (std::map iteration), offsets contiguous from zero.
void save_safetensors(const std::string& path,
                      const std::map<std::string, Tensor>& tensors,
                      DType storage = DType::kF32,
                      const std::map<std::string, std::string>& metadata = {});

/// Loads a safetensors file, decoding every tensor to fp32. Throws Error on
/// malformed files (bad magic length, overlapping/oob offsets, unknown
/// dtypes).
SafetensorsFile load_safetensors(const std::string& path);

}  // namespace chipalign
