#pragma once
/// \file safetensors.hpp
/// \brief Reader/writer for the safetensors checkpoint format.
///
/// Layout: an 8-byte little-endian header length, a JSON header mapping
/// tensor names to {dtype, shape, data_offsets}, then the raw tensor bytes.
/// We support F32/F16/BF16/I8 storage; tensors are decoded to fp32 on load
/// (I8 codes decode to their exact integer values — per-row scales live in
/// companion tensors, see checkpoint.cpp).
/// Files written here are readable by the reference Python implementation
/// (and vice versa for the supported dtypes).
///
/// ## Deterministic byte output
///
/// save_safetensors() is bit-deterministic: given the same tensors, storage
/// dtype and metadata it always produces the same file bytes. The layout
/// contract (relied upon by the streaming shard writer, which must produce
/// byte-identical files without holding the whole checkpoint in memory) is:
///   * tensor data is laid out in name-sorted order (std::map iteration),
///     contiguous from offset 0 with no padding between tensors;
///   * the header JSON lists "__metadata__" first (when non-empty), then one
///     entry per tensor in the same name-sorted order, serialized compactly
///     (no whitespace) with keys in insertion order;
///   * the header text is padded with trailing spaces to an 8-byte boundary.
/// tests/test_safetensors.cpp pins this contract with a golden-bytes test.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// A named-tensor bundle plus free-form string metadata (the "__metadata__"
/// entry of the safetensors header).
struct SafetensorsFile {
  std::map<std::string, Tensor> tensors;
  std::map<std::string, std::string> metadata;
};

/// Byte range and type of one tensor as declared by a safetensors header.
/// Offsets are relative to the start of the data section.
struct SafetensorsTensorInfo {
  DType dtype = DType::kF32;
  Shape shape;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t byte_size() const { return end - begin; }
};

/// Parsed safetensors header: tensor directory plus metadata, without any
/// tensor data. data_begin is the absolute file offset of the data section.
struct SafetensorsHeader {
  std::map<std::string, SafetensorsTensorInfo> tensors;
  std::map<std::string, std::string> metadata;
  std::uint64_t data_begin = 0;
  std::uint64_t data_size = 0;
};

/// Parses and validates only the header of a safetensors file — O(header)
/// work and memory, never touching tensor data. Validation: well-formed
/// JSON, known dtypes, non-negative in-bounds offsets, byte counts matching
/// shape x dtype, and no overlapping data ranges. Throws Error on any
/// violation. This is the entry point for lazy shard readers.
SafetensorsHeader read_safetensors_header(const std::string& path);

/// Encodes a fp32 tensor into the raw storage bytes of `dtype`.
std::vector<std::uint8_t> encode_tensor_bytes(const Tensor& tensor,
                                              DType dtype);

/// Decodes raw storage bytes into a fp32 tensor; throws Error when the byte
/// count does not match shape x dtype.
Tensor decode_tensor_bytes(const std::uint8_t* bytes, std::size_t byte_count,
                           DType dtype, Shape shape);

/// Renders the canonical header text for the given tensor directory:
/// "__metadata__" first (when non-empty), then one entry per tensor in map
/// (name-sorted) order with the offsets given, compact JSON, space-padded to
/// an 8-byte boundary. Both save_safetensors() and the streaming shard
/// writer emit exactly this text — that shared code path is what makes the
/// two writers byte-identical.
std::string build_safetensors_header_text(
    const std::map<std::string, SafetensorsTensorInfo>& tensors,
    const std::map<std::string, std::string>& metadata);

/// Writes all tensors with the given storage dtype. Tensor bytes are laid out
/// in name-sorted order (std::map iteration), offsets contiguous from zero.
/// Bit-deterministic; see the layout contract in the file comment.
void save_safetensors(const std::string& path,
                      const std::map<std::string, Tensor>& tensors,
                      DType storage = DType::kF32,
                      const std::map<std::string, std::string>& metadata = {});

/// save_safetensors() with a per-tensor storage dtype (missing entries
/// default to F32). Same layout contract and byte determinism; the
/// single-dtype writer delegates here, so a uniform dtype map produces
/// byte-identical files to save_safetensors(). Int8 checkpoints use this to
/// store quantized weights as I8 next to their F32 ".quant_scale"
/// companions.
void save_safetensors_mixed(
    const std::string& path, const std::map<std::string, Tensor>& tensors,
    const std::map<std::string, DType>& dtypes,
    const std::map<std::string, std::string>& metadata = {});

/// Loads a safetensors file, decoding every tensor to fp32. Throws Error on
/// malformed files (bad magic length, overlapping/oob offsets, unknown
/// dtypes).
SafetensorsFile load_safetensors(const std::string& path);

}  // namespace chipalign
