#pragma once
/// \file json.hpp
/// \brief Minimal JSON value, parser and writer.
///
/// Supports the subset of JSON needed by the safetensors header and the
/// library's experiment configs: null, bool, number, string, array, object.
/// Object key order is preserved on parse and write, which matters for
/// byte-stable checkpoint headers.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace chipalign {

/// A JSON document node with value semantics.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Ordered key-value list; duplicate keys are rejected by the parser.
  using Members = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t)
      : type_(Type::kNull) {}  // NOLINT(google-explicit-constructor)
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(std::int64_t value) : type_(Type::kNumber),
      number_(static_cast<double>(value)) {}  // NOLINT
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}  // NOLINT
  Json(std::string value) : type_(Type::kString),
      string_(std::move(value)) {}  // NOLINT
  Json(const char* value) : Json(std::string(value)) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< truncates; checks integral range
  const std::string& as_string() const;

  // -- array API
  // ---------------------------------------------------------------
  std::size_t size() const;  ///< array length or object member count
  const Json& at(std::size_t index) const;
  void push_back(Json value);

  // -- object API
  // ---------------------------------------------------------------
  /// True when this is an object containing the key.
  bool contains(const std::string& key) const;
  /// Member access; throws if missing.
  const Json& at(const std::string& key) const;
  /// Inserts or overwrites a member (preserving first-insert order).
  void set(const std::string& key, Json value);
  const Members& members() const;

  /// Serializes to compact JSON text.
  std::string dump() const;

  /// Parses a complete JSON document; throws Error on malformed input or
  /// trailing garbage.
  static Json parse(std::string_view text);

 private:
  void append_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  Members object_;
};

}  // namespace chipalign
