#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace chipalign {

bool Json::as_bool() const {
  CA_CHECK(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_double() const {
  CA_CHECK(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  CA_CHECK(type_ == Type::kNumber, "JSON value is not a number");
  CA_CHECK(std::abs(number_) < 9.007199254740992e15,
           "number " << number_ << " exceeds exact integer range");
  const auto value = static_cast<std::int64_t>(number_);
  CA_CHECK(static_cast<double>(value) == number_,
           "number " << number_ << " is not integral");
  return value;
}

const std::string& Json::as_string() const {
  CA_CHECK(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  CA_THROW("size() on non-container JSON value");
}

const Json& Json::at(std::size_t index) const {
  CA_CHECK(type_ == Type::kArray, "index access on non-array JSON value");
  CA_CHECK(index < array_.size(), "JSON array index " << index
           << " out of range "
                                                      << array_.size());
  return array_[index];
}

void Json::push_back(Json value) {
  CA_CHECK(type_ == Type::kArray, "push_back on non-array JSON value");
  array_.push_back(std::move(value));
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  CA_CHECK(type_ == Type::kObject, "member access on non-object JSON value");
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  CA_THROW("JSON object has no member '" << key << "'");
}

void Json::set(const std::string& key, Json value) {
  CA_CHECK(type_ == Type::kObject, "set on non-object JSON value");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json::Members& Json::members() const {
  CA_CHECK(type_ == Type::kObject, "members() on non-object JSON value");
  return object_;
}

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  // Integers print without a decimal point (safetensors offsets must be ints).
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

void Json::append_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      append_number(out, number_);
      return;
    case Type::kString:
      append_escaped(out, string_);
      return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        array_[i].append_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        append_escaped(out, object_[i].first);
        out += ':';
        object_[i].second.append_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  append_to(out);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    CA_CHECK(pos_ == text_.size(),
             "trailing characters after JSON document at byte " << pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    CA_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    CA_CHECK(take() == c, "expected '" << c << "' at byte " << (pos_ - 1));
  }

  bool try_consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        CA_CHECK(try_consume("true"), "bad literal at byte " << pos_);
        return Json(true);
      case 'f':
        CA_CHECK(try_consume("false"), "bad literal at byte " << pos_);
        return Json(false);
      case 'n':
        CA_CHECK(try_consume("null"), "bad literal at byte " << pos_);
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      CA_CHECK(!obj.contains(key), "duplicate JSON key '" << key << "'");
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      CA_CHECK(c == ',', "expected ',' or '}' in object at byte "
               << (pos_ - 1));
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      CA_CHECK(c == ',', "expected ',' or ']' in array at byte " << (pos_ - 1));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              CA_THROW("bad \\u escape at byte " << pos_);
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // checkpoint headers are ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          CA_THROW("unknown escape '\\" << esc << "' at byte " << pos_);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-'
                                || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    CA_CHECK(pos_ > start, "expected a JSON value at byte " << start);
    double value = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto result = std::from_chars(begin, end, value);
    CA_CHECK(result.ec == std::errc() && result.ptr == end,
             "malformed number at byte " << start);
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace chipalign
