#include "io/safetensors.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "io/json.hpp"
#include "tensor/half.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"

namespace chipalign {

std::vector<std::uint8_t> encode_tensor_bytes(const Tensor& tensor,
                                              DType dtype) {
  const auto values = tensor.values();
  std::vector<std::uint8_t> bytes(values.size() * dtype_size(dtype));
  switch (dtype) {
    case DType::kF32: {
      std::memcpy(bytes.data(), values.data(), bytes.size());
      break;
    }
    case DType::kF16: {
      auto* out = reinterpret_cast<std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        out[i] = f32_to_f16_bits(values[i]);
      }
      break;
    }
    case DType::kBF16: {
      auto* out = reinterpret_cast<std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        out[i] = f32_to_bf16_bits(values[i]);
      }
      break;
    }
    case DType::kI8: {
      // Values are expected to be integer codes already (the checkpoint
      // layer quantizes and keeps per-row scales in a companion tensor);
      // round-to-nearest and clamp so arbitrary floats still encode sanely.
      auto* out = reinterpret_cast<std::int8_t*>(bytes.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        float q = std::nearbyintf(values[i]);
        if (q > 127.0F) q = 127.0F;
        if (q < -127.0F) q = -127.0F;
        out[i] = static_cast<std::int8_t>(q);
      }
      break;
    }
  }
  return bytes;
}

Tensor decode_tensor_bytes(const std::uint8_t* bytes, std::size_t byte_count,
                           DType dtype, Shape shape) {
  const std::int64_t numel = shape_numel(shape);
  CA_CHECK(byte_count == static_cast<std::size_t>(numel) * dtype_size(dtype),
           "tensor byte count " << byte_count << " does not match shape "
                                << shape_to_string(shape) << " dtype "
                                << dtype_name(dtype));
  std::vector<float> values(static_cast<std::size_t>(numel));
  switch (dtype) {
    case DType::kF32: {
      std::memcpy(values.data(), bytes, byte_count);
      break;
    }
    case DType::kF16: {
      const auto* in = reinterpret_cast<const std::uint16_t*>(bytes);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = f16_bits_to_f32(in[i]);
      }
      break;
    }
    case DType::kBF16: {
      const auto* in = reinterpret_cast<const std::uint16_t*>(bytes);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = bf16_bits_to_f32(in[i]);
      }
      break;
    }
    case DType::kI8: {
      const auto* in = reinterpret_cast<const std::int8_t*>(bytes);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = static_cast<float>(in[i]);
      }
      break;
    }
  }
  return Tensor(std::move(shape), std::move(values));
}

std::string build_safetensors_header_text(
    const std::map<std::string, SafetensorsTensorInfo>& tensors,
    const std::map<std::string, std::string>& metadata) {
  Json header = Json::object();
  if (!metadata.empty()) {
    Json meta = Json::object();
    for (const auto& [key, value] : metadata) meta.set(key, Json(value));
    header.set("__metadata__", std::move(meta));
  }
  for (const auto& [name, info] : tensors) {
    CA_CHECK(name != "__metadata__", "tensor name '__metadata__' is reserved");
    Json entry = Json::object();
    entry.set("dtype", Json(dtype_name(info.dtype)));
    Json shape = Json::array();
    for (std::int64_t dim : info.shape) shape.push_back(Json(dim));
    entry.set("shape", std::move(shape));
    Json offsets = Json::array();
    offsets.push_back(Json(static_cast<std::int64_t>(info.begin)));
    offsets.push_back(Json(static_cast<std::int64_t>(info.end)));
    entry.set("data_offsets", std::move(offsets));
    header.set(name, std::move(entry));
  }
  std::string text = header.dump();
  // Pad the header with spaces to 8-byte alignment, as the reference
  // implementation does.
  while (text.size() % 8 != 0) text += ' ';
  return text;
}

void save_safetensors(const std::string& path,
                      const std::map<std::string, Tensor>& tensors,
                      DType storage,
                      const std::map<std::string, std::string>& metadata) {
  std::map<std::string, DType> dtypes;
  for (const auto& [name, tensor] : tensors) dtypes.emplace(name, storage);
  save_safetensors_mixed(path, tensors, dtypes, metadata);
}

void save_safetensors_mixed(
    const std::string& path, const std::map<std::string, Tensor>& tensors,
    const std::map<std::string, DType>& dtypes,
    const std::map<std::string, std::string>& metadata) {
  std::map<std::string, SafetensorsTensorInfo> infos;
  std::vector<std::vector<std::uint8_t>> buffers;
  buffers.reserve(tensors.size());
  std::uint64_t offset = 0;
  for (const auto& [name, tensor] : tensors) {
    const auto it = dtypes.find(name);
    const DType dtype = it != dtypes.end() ? it->second : DType::kF32;
    buffers.push_back(encode_tensor_bytes(tensor, dtype));
    SafetensorsTensorInfo info;
    info.dtype = dtype;
    info.shape = tensor.shape();
    info.begin = offset;
    info.end = offset + buffers.back().size();
    offset = info.end;
    infos.emplace(name, std::move(info));
  }

  const std::string header_text = build_safetensors_header_text(infos,
                                                                metadata);

  // Stream into a temp file, then durably rename onto `path`: a crash
  // mid-save leaves the previous checkpoint (or nothing), never a torn one.
  CA_FAILPOINT("safetensors.save");
  const std::string tmp = fs_io::temp_path_for(path);
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    CA_CHECK(file.good(), "cannot open '" << tmp << "' for writing");
    const std::uint64_t header_len = header_text.size();
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
      len_bytes[i] = static_cast<std::uint8_t>((header_len >> (8 * i)) & 0xFF);
    }
    file.write(reinterpret_cast<const char*>(len_bytes), 8);
    file.write(header_text.data(),
               static_cast<std::streamsize>(header_text.size()));
    for (const auto& buffer : buffers) {
      file.write(reinterpret_cast<const char*>(buffer.data()),
                 static_cast<std::streamsize>(buffer.size()));
    }
    CA_CHECK(file.good(), "write failed for '" << tmp << "'");
  }
  fs_io::commit_file(tmp, path);
}

SafetensorsHeader read_safetensors_header(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  CA_CHECK(file.good(), "cannot open '" << path << "' for reading");
  file.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file.tellg());
  file.seekg(0, std::ios::beg);
  CA_CHECK(file_size >= 8, "'" << path
           << "' is too small to be a safetensors file");

  std::uint8_t len_bytes[8];
  file.read(reinterpret_cast<char*>(len_bytes), 8);
  std::uint64_t header_len = 0;
  for (int i = 7; i >= 0; --i) header_len = (header_len << 8) | len_bytes[i];
  CA_CHECK(header_len <= file_size - 8,
           "header length " << header_len << " exceeds file size "
               << file_size);

  std::string header_text(header_len, '\0');
  file.read(header_text.data(), static_cast<std::streamsize>(header_len));
  CA_CHECK(file.good(), "read failed for '" << path << "'");
  const Json header = Json::parse(header_text);
  CA_CHECK(header.is_object(), "safetensors header is not a JSON object");

  SafetensorsHeader out;
  out.data_begin = 8 + header_len;
  out.data_size = file_size - out.data_begin;

  for (const auto& [name, entry] : header.members()) {
    if (name == "__metadata__") {
      for (const auto& [key, value] : entry.members()) {
        out.metadata[key] = value.as_string();
      }
      continue;
    }
    SafetensorsTensorInfo info;
    info.dtype = dtype_from_name(entry.at("dtype").as_string());
    const Json& shape_json = entry.at("shape");
    for (std::size_t i = 0; i < shape_json.size(); ++i) {
      info.shape.push_back(shape_json.at(i).as_int());
    }
    const Json& offsets = entry.at("data_offsets");
    CA_CHECK(offsets.size() == 2, "data_offsets must have two entries");
    const std::int64_t begin = offsets.at(0).as_int();
    const std::int64_t end = offsets.at(1).as_int();
    CA_CHECK(begin >= 0 && begin <= end &&
                 static_cast<std::uint64_t>(end) <= out.data_size,
             "tensor '" << name << "' offsets [" << begin << ", " << end
                        << ") out of range " << out.data_size);
    info.begin = static_cast<std::uint64_t>(begin);
    info.end = static_cast<std::uint64_t>(end);
    const std::int64_t numel = shape_numel(info.shape);
    CA_CHECK(info.byte_size() ==
                 static_cast<std::uint64_t>(numel) * dtype_size(info.dtype),
             "tensor '" << name << "' byte count " << info.byte_size()
                        << " does not match shape "
                            << shape_to_string(info.shape)
                        << " dtype " << dtype_name(info.dtype));
    out.tensors.emplace(name, std::move(info));
  }

  // Reject overlapping data ranges: each byte of the data section belongs to
  // at most one tensor. (The reference format additionally requires exact
  // coverage; we tolerate gaps but never double ownership.)
  std::vector<const SafetensorsTensorInfo*> ranges;
  ranges.reserve(out.tensors.size());
  for (const auto& [name, info] : out.tensors) ranges.push_back(&info);
  std::sort(ranges.begin(), ranges.end(),
            [](const auto* a, const auto* b) { return a->begin < b->begin; });
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    CA_CHECK(ranges[i - 1]->end <= ranges[i]->begin,
             "overlapping data_offsets in '" << path << "': ["
                 << ranges[i - 1]->begin << ", " << ranges[i - 1]->end
                 << ") overlaps [" << ranges[i]->begin << ", "
                 << ranges[i]->end << ")");
  }
  return out;
}

SafetensorsFile load_safetensors(const std::string& path) {
  const SafetensorsHeader header = read_safetensors_header(path);

  std::ifstream file(path, std::ios::binary);
  CA_CHECK(file.good(), "cannot open '" << path << "' for reading");
  file.seekg(static_cast<std::streamoff>(header.data_begin), std::ios::beg);
  std::vector<std::uint8_t> data(header.data_size);
  file.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(header.data_size));
  CA_CHECK(file.good() || header.data_size == 0, "read failed for '" << path
           << "'");

  SafetensorsFile out;
  out.metadata = header.metadata;
  for (const auto& [name, info] : header.tensors) {
    out.tensors.emplace(name,
                        decode_tensor_bytes(data.data() + info.begin,
                                            info.byte_size(), info.dtype,
                                            info.shape));
  }
  return out;
}

}  // namespace chipalign
