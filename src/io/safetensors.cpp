#include "io/safetensors.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "io/json.hpp"
#include "tensor/half.hpp"
#include "util/error.hpp"

namespace chipalign {

namespace {

std::vector<std::uint8_t> encode_tensor(const Tensor& tensor, DType dtype) {
  const auto values = tensor.values();
  std::vector<std::uint8_t> bytes(values.size() * dtype_size(dtype));
  switch (dtype) {
    case DType::kF32: {
      std::memcpy(bytes.data(), values.data(), bytes.size());
      break;
    }
    case DType::kF16: {
      auto* out = reinterpret_cast<std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        out[i] = f32_to_f16_bits(values[i]);
      }
      break;
    }
    case DType::kBF16: {
      auto* out = reinterpret_cast<std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        out[i] = f32_to_bf16_bits(values[i]);
      }
      break;
    }
  }
  return bytes;
}

Tensor decode_tensor(const std::uint8_t* bytes, std::size_t byte_count,
                     DType dtype, Shape shape) {
  const std::int64_t numel = shape_numel(shape);
  CA_CHECK(byte_count == static_cast<std::size_t>(numel) * dtype_size(dtype),
           "tensor byte count " << byte_count << " does not match shape "
                                << shape_to_string(shape) << " dtype "
                                << dtype_name(dtype));
  std::vector<float> values(static_cast<std::size_t>(numel));
  switch (dtype) {
    case DType::kF32: {
      std::memcpy(values.data(), bytes, byte_count);
      break;
    }
    case DType::kF16: {
      const auto* in = reinterpret_cast<const std::uint16_t*>(bytes);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = f16_bits_to_f32(in[i]);
      }
      break;
    }
    case DType::kBF16: {
      const auto* in = reinterpret_cast<const std::uint16_t*>(bytes);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = bf16_bits_to_f32(in[i]);
      }
      break;
    }
  }
  return Tensor(std::move(shape), std::move(values));
}

}  // namespace

void save_safetensors(const std::string& path,
                      const std::map<std::string, Tensor>& tensors,
                      DType storage,
                      const std::map<std::string, std::string>& metadata) {
  Json header = Json::object();
  if (!metadata.empty()) {
    Json meta = Json::object();
    for (const auto& [key, value] : metadata) meta.set(key, Json(value));
    header.set("__metadata__", std::move(meta));
  }

  std::vector<std::vector<std::uint8_t>> buffers;
  buffers.reserve(tensors.size());
  std::size_t offset = 0;
  for (const auto& [name, tensor] : tensors) {
    CA_CHECK(name != "__metadata__", "tensor name '__metadata__' is reserved");
    buffers.push_back(encode_tensor(tensor, storage));
    const std::size_t end = offset + buffers.back().size();

    Json entry = Json::object();
    entry.set("dtype", Json(dtype_name(storage)));
    Json shape = Json::array();
    for (std::int64_t dim : tensor.shape()) shape.push_back(Json(dim));
    entry.set("shape", std::move(shape));
    Json offsets = Json::array();
    offsets.push_back(Json(static_cast<std::int64_t>(offset)));
    offsets.push_back(Json(static_cast<std::int64_t>(end)));
    entry.set("data_offsets", std::move(offsets));
    header.set(name, std::move(entry));
    offset = end;
  }

  std::string header_text = header.dump();
  // Pad the header with spaces to 8-byte alignment, as the reference
  // implementation does.
  while (header_text.size() % 8 != 0) header_text += ' ';

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  CA_CHECK(file.good(), "cannot open '" << path << "' for writing");
  const std::uint64_t header_len = header_text.size();
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>((header_len >> (8 * i)) & 0xFF);
  }
  file.write(reinterpret_cast<const char*>(len_bytes), 8);
  file.write(header_text.data(), static_cast<std::streamsize>(header_text.size()));
  for (const auto& buffer : buffers) {
    file.write(reinterpret_cast<const char*>(buffer.data()),
               static_cast<std::streamsize>(buffer.size()));
  }
  CA_CHECK(file.good(), "write failed for '" << path << "'");
}

SafetensorsFile load_safetensors(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  CA_CHECK(file.good(), "cannot open '" << path << "' for reading");
  file.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::size_t>(file.tellg());
  file.seekg(0, std::ios::beg);
  CA_CHECK(file_size >= 8, "'" << path << "' is too small to be a safetensors file");

  std::uint8_t len_bytes[8];
  file.read(reinterpret_cast<char*>(len_bytes), 8);
  std::uint64_t header_len = 0;
  for (int i = 7; i >= 0; --i) header_len = (header_len << 8) | len_bytes[i];
  CA_CHECK(header_len <= file_size - 8,
           "header length " << header_len << " exceeds file size " << file_size);

  std::string header_text(header_len, '\0');
  file.read(header_text.data(), static_cast<std::streamsize>(header_len));
  const Json header = Json::parse(header_text);
  CA_CHECK(header.is_object(), "safetensors header is not a JSON object");

  const std::size_t data_size = file_size - 8 - header_len;
  std::vector<std::uint8_t> data(data_size);
  file.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data_size));
  CA_CHECK(file.good(), "read failed for '" << path << "'");

  SafetensorsFile out;
  for (const auto& [name, entry] : header.members()) {
    if (name == "__metadata__") {
      for (const auto& [key, value] : entry.members()) {
        out.metadata[key] = value.as_string();
      }
      continue;
    }
    const DType dtype = dtype_from_name(entry.at("dtype").as_string());
    Shape shape;
    const Json& shape_json = entry.at("shape");
    for (std::size_t i = 0; i < shape_json.size(); ++i) {
      shape.push_back(shape_json.at(i).as_int());
    }
    const Json& offsets = entry.at("data_offsets");
    CA_CHECK(offsets.size() == 2, "data_offsets must have two entries");
    const auto begin = static_cast<std::size_t>(offsets.at(0).as_int());
    const auto end = static_cast<std::size_t>(offsets.at(1).as_int());
    CA_CHECK(begin <= end && end <= data_size,
             "tensor '" << name << "' offsets [" << begin << ", " << end
                        << ") out of range " << data_size);
    out.tensors.emplace(
        name, decode_tensor(data.data() + begin, end - begin, dtype,
                            std::move(shape)));
  }
  return out;
}

}  // namespace chipalign
