#pragma once
/// \file breadcrumbs.hpp
/// \brief Model Breadcrumbs merging (Davari & Belilovsky, 2024).
///
/// Like task arithmetic, but each task vector is masked to drop *both* tails
/// of its magnitude distribution: the smallest entries (noise) and the
/// largest entries (outliers that dominate interference). The surviving
/// "breadcrumb trail" of mid-magnitude deltas is combined linearly and added
/// back to the base model. Included as an additional baseline beyond the
/// paper's table; together with TIES (bottom-trim only) it brackets the
/// design space of magnitude-masked task arithmetic.
///
/// Masking fractions: MergeOptions::density keeps the top fraction as in
/// TIES, and breadcrumbs_outlier_frac additionally removes the very largest
/// entries from that kept set.

#include "merge/merger.hpp"

namespace chipalign {

/// "breadcrumbs" in the registry. Requires a base checkpoint.
class BreadcrumbsMerger final : public Merger {
 public:
  std::string name() const override { return "breadcrumbs"; }
  bool requires_base() const override { return true; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
