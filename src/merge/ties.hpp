#pragma once
/// \file ties.hpp
/// \brief TIES merging (Yadav et al., 2023): Trim, Elect Sign, Disjoint Merge.
///
/// Per tensor: (1) trim each task vector to its top `density` fraction by
/// magnitude; (2) elect a per-parameter sign from the lambda-weighted mass;
/// (3) average only the contributions agreeing with the elected sign;
/// (4) add tv_scale times the merged task vector back to the base.

#include "merge/merger.hpp"

namespace chipalign {

/// "ties" in the registry. Requires a base checkpoint.
class TiesMerger final : public Merger {
 public:
  std::string name() const override { return "ties"; }
  bool requires_base() const override { return true; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
