#include "merge/dare.hpp"

#include <vector>

#include "merge/tv_utils.hpp"
#include "tensor/tensor_ops.hpp"

namespace chipalign {

Tensor DareMerger::merge_tensor(const std::string& tensor_name,
                                const Tensor& chip, const Tensor& instruct,
                                const Tensor* base, const MergeOptions& options,
                                Rng& rng) const {
  CA_CHECK(base != nullptr, "DARE requires a base tensor");
  const double lambda_ = effective_lambda(options, tensor_name);
  Tensor tau_chip = ops::sub(chip, *base);
  Tensor tau_instruct = ops::sub(instruct, *base);

  const std::vector<double> keep(static_cast<std::size_t>(tau_chip.numel()),
                                 options.density);
  tv::stochastic_drop_rescale(tau_chip, keep, rng);
  tv::stochastic_drop_rescale(tau_instruct, keep, rng);

  Tensor combined = ops::add(
      ops::scaled(tau_chip, static_cast<float>(lambda_)),
      ops::scaled(tau_instruct, static_cast<float>(1.0 - lambda_)));
  ops::scale(combined.values(), static_cast<float>(options.tv_scale));
  return ops::add(*base, combined);
}

}  // namespace chipalign
