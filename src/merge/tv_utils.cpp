#include "merge/tv_utils.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace chipalign::tv {

void trim_by_magnitude(Tensor& task_vector, double density) {
  CA_CHECK(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
  if (density >= 1.0) return;
  auto values = task_vector.values();
  const std::size_t n = values.size();
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(density * static_cast<double>(n))));
  if (keep >= n) return;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Partial sort descending by |value|, ties by index for determinism.
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(keep),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     const float ma = std::abs(values[a]);
                     const float mb = std::abs(values[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  std::vector<bool> keep_mask(n, false);
  for (std::size_t i = 0; i < keep; ++i) keep_mask[order[i]] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep_mask[i]) values[i] = 0.0F;
  }
}

std::vector<std::int64_t> magnitude_ranks(const Tensor& task_vector) {
  const auto values = task_vector.values();
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const float ma = std::abs(values[a]);
    const float mb = std::abs(values[b]);
    if (ma != mb) return ma < mb;
    return a < b;
  });
  std::vector<std::int64_t> ranks(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    ranks[order[rank]] = static_cast<std::int64_t>(rank);
  }
  return ranks;
}

std::vector<int> elect_signs(const Tensor& tau_a, const Tensor& tau_b,
                             double weight_a, double weight_b) {
  CA_CHECK(tau_a.same_shape(tau_b), "elect_signs shape mismatch");
  const auto va = tau_a.values();
  const auto vb = tau_b.values();
  std::vector<int> signs(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    const double mass = weight_a * va[i] + weight_b * vb[i];
    signs[i] = mass > 0.0 ? 1 : (mass < 0.0 ? -1 : 0);
  }
  return signs;
}

Tensor disjoint_merge(const Tensor& tau_a, const Tensor& tau_b,
                      double weight_a, double weight_b,
                      const std::vector<int>& signs) {
  CA_CHECK(tau_a.same_shape(tau_b), "disjoint_merge shape mismatch");
  CA_CHECK(signs.size() == tau_a.values().size(), "signs size mismatch");
  Tensor out(tau_a.shape());
  const auto va = tau_a.values();
  const auto vb = tau_b.values();
  auto vo = out.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    const int sign = signs[i];
    if (sign == 0) continue;
    double num = 0.0;
    double den = 0.0;
    const bool a_agrees = (sign > 0) ? va[i] > 0.0F : va[i] < 0.0F;
    const bool b_agrees = (sign > 0) ? vb[i] > 0.0F : vb[i] < 0.0F;
    if (a_agrees) {
      num += weight_a * va[i];
      den += weight_a;
    }
    if (b_agrees) {
      num += weight_b * vb[i];
      den += weight_b;
    }
    vo[i] = den > 0.0 ? static_cast<float>(num / den) : 0.0F;
  }
  return out;
}

void stochastic_drop_rescale(Tensor& task_vector,
                             std::span<const double> keep_prob, Rng& rng) {
  auto values = task_vector.values();
  CA_CHECK(keep_prob.size() == values.size(), "keep_prob size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double p = keep_prob[i];
    CA_CHECK(p > 0.0 && p <= 1.0, "keep probability " << p << " out of (0, 1]");
    if (rng.bernoulli(p)) {
      values[i] = static_cast<float>(values[i] / p);
    } else {
      values[i] = 0.0F;
    }
  }
}

}  // namespace chipalign::tv
