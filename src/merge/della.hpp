#pragma once
/// \file della.hpp
/// \brief DELLA merging (Deep et al., 2024): magnitude-adaptive stochastic
/// pruning (MAGPRUNE) followed by TIES-style sign election and fusion.
///
/// Per tensor and per task vector: entries are ranked by magnitude and given
/// keep probabilities that vary linearly with rank inside
/// [density - della_window, density + della_window] (larger magnitudes keep
/// more often); kept entries are rescaled by 1/p so the task vector is
/// preserved in expectation. The pruned task vectors then go through sign
/// election and weighted disjoint merging as in TIES.

#include "merge/merger.hpp"

namespace chipalign {

/// "della" in the registry. Requires a base checkpoint. Stochastic: the
/// drop masks derive from MergeOptions::seed.
class DellaMerger final : public Merger {
 public:
  std::string name() const override { return "della"; }
  bool requires_base() const override { return true; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
