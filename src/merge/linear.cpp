#include "merge/linear.hpp"

#include "tensor/tensor_ops.hpp"

namespace chipalign {

Tensor LerpMerger::merge_tensor(const std::string& tensor_name,
                                const Tensor& chip, const Tensor& instruct,
                                const Tensor* /*base*/,
                                const MergeOptions& options,
                                Rng& /*rng*/) const {
  const double lambda_ = effective_lambda(options, tensor_name);
  return ops::scaled_sum(static_cast<float>(lambda_), chip,
                         static_cast<float>(1.0 - lambda_), instruct);
}

Tensor ModelSoupMerger::merge_tensor(const std::string& /*tensor_name*/,
                                     const Tensor& chip, const Tensor& instruct,
                                     const Tensor* /*base*/,
                                     const MergeOptions& /*options*/,
                                     Rng& /*rng*/) const {
  return ops::scaled_sum(0.5F, chip, 0.5F, instruct);
}

}  // namespace chipalign
