#pragma once
/// \file task_arithmetic.hpp
/// \brief Task-arithmetic merging (Ilharco et al., 2022).
///
/// Task vectors are the weight deltas of each specialized model from the
/// common base: tau = W_finetuned - W_base. The merged model adds a weighted
/// combination of both task vectors back to the base:
///
///   W = W_base + tv_scale * (lambda * tau_chip + (1-lambda) * tau_instruct)
///
/// With lambda = 0.5 and tv_scale = 1 this is the classic averaged-delta
/// formulation.

#include "merge/merger.hpp"

namespace chipalign {

/// "task_arithmetic" in the registry. Requires a base checkpoint.
class TaskArithmeticMerger final : public Merger {
 public:
  std::string name() const override { return "task_arithmetic"; }
  bool requires_base() const override { return true; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
