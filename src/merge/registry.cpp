#include "merge/registry.hpp"

#include "merge/breadcrumbs.hpp"
#include "merge/dare.hpp"
#include "merge/della.hpp"
#include "merge/geodesic.hpp"
#include "merge/geodesic_rowwise.hpp"
#include "merge/linear.hpp"
#include "merge/task_arithmetic.hpp"
#include "merge/ties.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

std::unique_ptr<Merger> create_merger(const std::string& name) {
  if (name == "chipalign") return std::make_unique<GeodesicMerger>();
  if (name == "chipalign_rowwise") {
    return std::make_unique<GeodesicRowwiseMerger>();
  }
  if (name == "lerp") return std::make_unique<LerpMerger>();
  if (name == "modelsoup") return std::make_unique<ModelSoupMerger>();
  if (name == "task_arithmetic") {
    return std::make_unique<TaskArithmeticMerger>();
  }
  if (name == "ties") return std::make_unique<TiesMerger>();
  if (name == "della") return std::make_unique<DellaMerger>();
  if (name == "dare") return std::make_unique<DareMerger>();
  if (name == "breadcrumbs") return std::make_unique<BreadcrumbsMerger>();
  CA_THROW("unknown merge method '" << name << "'; valid: "
                                    << join(merger_names(), ", "));
}

std::vector<std::string> merger_names() {
  return {"breadcrumbs", "chipalign", "chipalign_rowwise", "dare", "della",
          "lerp", "modelsoup", "task_arithmetic", "ties"};
}

}  // namespace chipalign
