#include "merge/geodesic.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.hpp"

namespace chipalign {

Tensor slerp_unit(const Tensor& unit_a, const Tensor& unit_b, double lambda,
                  double theta_epsilon) {
  CA_CHECK(unit_a.same_shape(unit_b), "slerp operands must share a shape");
  const double cos_theta =
      std::clamp(ops::dot(unit_a.values(), unit_b.values()), -1.0, 1.0);
  const double theta = std::acos(std::clamp(cos_theta, -1.0 + 1e-12,
                                            1.0 - 1e-12));

  if (theta < theta_epsilon || std::sin(theta) < theta_epsilon) {
    // Degenerate arc: LERP then renormalize back to the sphere.
    Tensor out = ops::scaled_sum(static_cast<float>(lambda), unit_a,
                                 static_cast<float>(1.0 - lambda), unit_b);
    const double n = ops::frobenius_norm(out);
    if (n > 0.0) ops::scale(out.values(), static_cast<float>(1.0 / n));
    return out;
  }

  const double inv_sin = 1.0 / std::sin(theta);
  const double coeff_a = std::sin(lambda * theta) * inv_sin;
  const double coeff_b = std::sin((1.0 - lambda) * theta) * inv_sin;
  return ops::scaled_sum(static_cast<float>(coeff_a), unit_a,
                         static_cast<float>(coeff_b), unit_b);
}

Tensor GeodesicMerger::merge_tensor(const std::string& tensor_name,
                                    const Tensor& chip, const Tensor& instruct,
                                    const Tensor* /*base*/,
                                    const MergeOptions& options,
                                    Rng& /*rng*/) const {
  const double lambda = effective_lambda(options, tensor_name);
  const double norm_chip = ops::frobenius_norm(chip);
  const double norm_instruct = ops::frobenius_norm(instruct);

  if (norm_chip == 0.0 || norm_instruct == 0.0) {
    // No direction on one side: geometric structure collapses, use LERP.
    return ops::scaled_sum(static_cast<float>(lambda), chip,
                           static_cast<float>(1.0 - lambda), instruct);
  }

  const Tensor unit_chip = ops::scaled(chip,
                                       static_cast<float>(1.0 / norm_chip));
  const Tensor unit_instruct =
      ops::scaled(instruct, static_cast<float>(1.0 / norm_instruct));

  Tensor merged =
      slerp_unit(unit_chip, unit_instruct, lambda, options.theta_epsilon);

  // Restore magnitude: geometric mean of the endpoint Frobenius norms
  // weighted by lambda (paper: Norm_chip^lambda * Norm_instruct^(1-lambda)).
  const double restored =
      std::pow(norm_chip, lambda) * std::pow(norm_instruct, 1.0 - lambda);
  ops::scale(merged.values(), static_cast<float>(restored));
  return merged;
}

}  // namespace chipalign
