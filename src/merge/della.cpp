#include "merge/della.hpp"

#include <algorithm>
#include <vector>

#include "merge/tv_utils.hpp"
#include "tensor/tensor_ops.hpp"

namespace chipalign {

namespace {

/// MAGPRUNE keep probabilities: linear in magnitude rank inside the window
/// around `density`, clamped to (0, 1].
std::vector<double> magprune_keep_probs(const Tensor& task_vector,
                                        double density, double window) {
  const std::vector<std::int64_t> ranks = tv::magnitude_ranks(task_vector);
  const auto n = static_cast<double>(ranks.size());
  std::vector<double> probs(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    // rank 0 = smallest magnitude -> lowest keep probability.
    const double frac = n > 1.0 ? static_cast<double>(ranks[i]) / (n - 1.0)
        : 1.0;
    const double p = density - window + 2.0 * window * frac;
    probs[i] = std::clamp(p, 1e-3, 1.0);
  }
  return probs;
}

}  // namespace

Tensor DellaMerger::merge_tensor(const std::string& tensor_name,
                                 const Tensor& chip, const Tensor& instruct,
                                 const Tensor* base,
                                     const MergeOptions& options,
                                 Rng& rng) const {
  CA_CHECK(base != nullptr, "DELLA requires a base tensor");
  const double lambda_ = effective_lambda(options, tensor_name);
  Tensor tau_chip = ops::sub(chip, *base);
  Tensor tau_instruct = ops::sub(instruct, *base);

  const std::vector<double> probs_chip =
      magprune_keep_probs(tau_chip, options.density, options.della_window);
  const std::vector<double> probs_instruct =
      magprune_keep_probs(tau_instruct, options.density, options.della_window);
  tv::stochastic_drop_rescale(tau_chip, probs_chip, rng);
  tv::stochastic_drop_rescale(tau_instruct, probs_instruct, rng);

  const double w_chip = lambda_;
  const double w_instruct = 1.0 - lambda_;
  const std::vector<int> signs =
      tv::elect_signs(tau_chip, tau_instruct, w_chip, w_instruct);
  Tensor merged =
      tv::disjoint_merge(tau_chip, tau_instruct, w_chip, w_instruct, signs);
  ops::scale(merged.values(), static_cast<float>(options.tv_scale));
  return ops::add(*base, merged);
}

}  // namespace chipalign
