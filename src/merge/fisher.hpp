#pragma once
/// \file fisher.hpp
/// \brief Fisher-weighted merging (Matena & Raffel, 2022) — an additional
/// baseline beyond the paper's table.
///
/// Each model's diagonal Fisher information acts as a per-parameter
/// importance weight:
///
///   W_m = (lambda * F_c ⊙ W_c + (1-lambda) * F_i ⊙ W_i)
///         / (lambda * F_c + (1-lambda) * F_i + eps)
///
/// Unlike the data-free methods, Fisher merging needs gradients through
/// each model (see train/fisher.hpp for the estimator), so the merger is
/// constructed with precomputed Fisher checkpoints rather than created via
/// the name registry.

#include "merge/merger.hpp"

namespace chipalign {

/// Importance-weighted elementwise merge. Fisher tensors must be
/// conformable with the models being merged and non-negative.
class FisherMerger final : public Merger {
 public:
  /// \param fisher_chip diagonal Fisher of the chip model;
  /// \param fisher_instruct diagonal Fisher of the instruct model;
  /// \param epsilon denominator floor (guards parameters with no signal,
  ///        where the merge degenerates to the lambda-weighted mean).
  FisherMerger(Checkpoint fisher_chip, Checkpoint fisher_instruct,
               double epsilon = 1e-12);

  std::string name() const override { return "fisher"; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;

 private:
  Checkpoint fisher_chip_;
  Checkpoint fisher_instruct_;
  double epsilon_;
};

}  // namespace chipalign
