#pragma once
/// \file linear.hpp
/// \brief Linear weight-space merging: LERP and Model Soup.
///
/// Model Soup (Wortsman et al., 2022) is uniform weight averaging; the
/// generalized form interpolates with weight lambda toward the chip model.
/// Both are the straight-line path through weight space that ChipAlign's
/// geodesic replaces.

#include "merge/merger.hpp"

namespace chipalign {

/// W = lambda * W_chip + (1 - lambda) * W_instruct ("lerp" in the registry).
class LerpMerger final : public Merger {
 public:
  std::string name() const override { return "lerp"; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

/// Uniform average of the two models, ignoring options.lambda
/// ("modelsoup" in the registry).
class ModelSoupMerger final : public Merger {
 public:
  std::string name() const override { return "modelsoup"; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
