#include "merge/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "merge/geodesic.hpp"
#include "tensor/tensor_ops.hpp"

namespace chipalign {

std::vector<TensorGeometry> analyze_geometry(const Checkpoint& chip,
                                             const Checkpoint& instruct,
                                             const Checkpoint* base,
                                             double lambda) {
  check_mergeable(chip, instruct);
  if (base != nullptr) check_mergeable(chip, *base);

  std::vector<TensorGeometry> report;
  for (const std::string& name : chip.names()) {
    const Tensor& wc = chip.at(name);
    const Tensor& wi = instruct.at(name);

    TensorGeometry g;
    g.name = name;
    g.numel = wc.numel();
    g.norm_chip = ops::frobenius_norm(wc);
    g.norm_instruct = ops::frobenius_norm(wi);

    if (g.norm_chip > 0.0 && g.norm_instruct > 0.0) {
      const double cos_theta =
          std::clamp(ops::cosine_similarity(wc, wi), -1.0, 1.0);
      g.theta = std::acos(cos_theta);

      const Tensor unit_c = ops::scaled(wc,
                                        static_cast<float>(1.0 / g.norm_chip));
      const Tensor unit_i =
          ops::scaled(wi, static_cast<float>(1.0 / g.norm_instruct));
      const Tensor on_arc = slerp_unit(unit_c, unit_i, lambda, 1e-6);
      const Tensor chord = ops::scaled_sum(static_cast<float>(lambda), unit_c,
                                           static_cast<float>(1.0 - lambda),
                                           unit_i);
      const double slerp_norm = ops::frobenius_norm(on_arc);
      if (slerp_norm > 0.0) {
        g.slerp_lerp_gap =
            ops::frobenius_norm(ops::sub(on_arc, chord)) / slerp_norm;
        g.has_slerp_lerp_gap = true;
      }
    }

    if (base != nullptr) {
      const Tensor tau_c = ops::sub(wc, base->at(name));
      const Tensor tau_i = ops::sub(wi, base->at(name));
      g.tv_cosine = ops::cosine_similarity(tau_c, tau_i);
      g.has_tv_cosine = true;
    }
    report.push_back(std::move(g));
  }
  return report;
}

GeometrySummary summarize_geometry(const std::vector<TensorGeometry>& report) {
  GeometrySummary s;
  if (report.empty()) return s;
  // Each mean runs over the tensors that actually produced the quantity:
  // averaging a defaulted 0 for e.g. tv_cosine without a base would dilute
  // the statistic toward 0 and make a no-base run look like orthogonal task
  // vectors. With no contributors the mean is NaN ("not measured").
  double tv_sum = 0.0;
  std::size_t tv_count = 0;
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (const TensorGeometry& g : report) {
    s.mean_theta += g.theta;
    s.max_theta = std::max(s.max_theta, g.theta);
    if (g.has_tv_cosine) {
      tv_sum += g.tv_cosine;
      ++tv_count;
    }
    if (g.has_slerp_lerp_gap) {
      gap_sum += g.slerp_lerp_gap;
      ++gap_count;
    }
  }
  s.mean_theta /= static_cast<double>(report.size());
  s.mean_tv_cosine = tv_count > 0
                         ? tv_sum / static_cast<double>(tv_count)
                         : std::numeric_limits<double>::quiet_NaN();
  s.mean_slerp_lerp_gap = gap_count > 0
                              ? gap_sum / static_cast<double>(gap_count)
                              : std::numeric_limits<double>::quiet_NaN();
  return s;
}

}  // namespace chipalign
