#include "merge/geodesic_rowwise.hpp"

#include <algorithm>
#include <cmath>

#include "merge/geodesic.hpp"
#include "tensor/tensor_ops.hpp"

namespace chipalign {

namespace {

/// SLERP + norm restoration on one row pair (spans of equal length).
void merge_row(std::span<const float> chip, std::span<const float> instruct,
               std::span<float> out, double lambda, double theta_epsilon) {
  const double norm_chip = ops::norm(chip);
  const double norm_instruct = ops::norm(instruct);
  if (norm_chip == 0.0 || norm_instruct == 0.0) {
    ops::scaled_sum(static_cast<float>(lambda), chip,
                    static_cast<float>(1.0 - lambda), instruct, out);
    return;
  }

  const double dot = ops::dot(chip, instruct) / (norm_chip * norm_instruct);
  const double cos_theta = std::clamp(dot, -1.0 + 1e-12, 1.0 - 1e-12);
  const double theta = std::acos(cos_theta);
  const double restored =
      std::pow(norm_chip, lambda) * std::pow(norm_instruct, 1.0 - lambda);

  double coeff_c;
  double coeff_i;
  if (theta < theta_epsilon || std::sin(theta) < theta_epsilon) {
    coeff_c = lambda;
    coeff_i = 1.0 - lambda;
  } else {
    const double inv_sin = 1.0 / std::sin(theta);
    coeff_c = std::sin(lambda * theta) * inv_sin;
    coeff_i = std::sin((1.0 - lambda) * theta) * inv_sin;
  }

  // Interpolate the unit rows in one fused pass (the per-element division by
  // the row norms folds into the coefficients), renormalize (the degenerate
  // LERP branch is off-sphere), then restore the geometric-mean magnitude.
  ops::scaled_sum(static_cast<float>(coeff_c / norm_chip), chip,
                  static_cast<float>(coeff_i / norm_instruct), instruct, out);
  const double merged_norm = ops::norm(out);
  const double scale = merged_norm > 0.0 ? restored / merged_norm : 0.0;
  ops::scale(out, static_cast<float>(scale));
}

}  // namespace

Tensor GeodesicRowwiseMerger::merge_tensor(const std::string& tensor_name,
                                           const Tensor& chip,
                                           const Tensor& instruct,
                                           const Tensor* base,
                                           const MergeOptions& options,
                                           Rng& rng) const {
  if (chip.rank() != 2) {
    // Rank-1 (norm gains) and other shapes: whole-tensor geodesic.
    return GeodesicMerger().merge_tensor(tensor_name, chip, instruct, base,
                                         options, rng);
  }
  const double lambda = effective_lambda(options, tensor_name);
  Tensor out(chip.shape());
  for (std::int64_t r = 0; r < chip.dim(0); ++r) {
    merge_row(chip.row(r), instruct.row(r), out.row(r), lambda,
              options.theta_epsilon);
  }
  return out;
}

}  // namespace chipalign
