#include "merge/task_arithmetic.hpp"

#include "tensor/tensor_ops.hpp"

namespace chipalign {

Tensor TaskArithmeticMerger::merge_tensor(const std::string& tensor_name,
                                          const Tensor& chip,
                                          const Tensor& instruct,
                                          const Tensor* base,
                                          const MergeOptions& options,
                                          Rng& /*rng*/) const {
  CA_CHECK(base != nullptr, "task arithmetic requires a base tensor");
  const double lambda_ = effective_lambda(options, tensor_name);
  const Tensor tau_chip = ops::sub(chip, *base);
  const Tensor tau_instruct = ops::sub(instruct, *base);

  Tensor combined = ops::add(
      ops::scaled(tau_chip, static_cast<float>(lambda_)),
      ops::scaled(tau_instruct, static_cast<float>(1.0 - lambda_)));
  ops::scale(combined.values(), static_cast<float>(options.tv_scale));
  return ops::add(*base, combined);
}

}  // namespace chipalign
