#include "merge/fisher.hpp"

#include "tensor/tensor_ops.hpp"

namespace chipalign {

FisherMerger::FisherMerger(Checkpoint fisher_chip, Checkpoint fisher_instruct,
                           double epsilon)
    : fisher_chip_(std::move(fisher_chip)),
      fisher_instruct_(std::move(fisher_instruct)),
      epsilon_(epsilon) {
  CA_CHECK(epsilon_ > 0.0, "epsilon must be positive");
  check_mergeable(fisher_chip_, fisher_instruct_);
  for (const std::string& name : fisher_chip_.names()) {
    for (float v : fisher_chip_.at(name).values()) {
      CA_CHECK(v >= 0.0F, "negative Fisher value in '" << name << "'");
    }
    for (float v : fisher_instruct_.at(name).values()) {
      CA_CHECK(v >= 0.0F, "negative Fisher value in '" << name << "'");
    }
  }
}

Tensor FisherMerger::merge_tensor(const std::string& tensor_name,
                                  const Tensor& chip, const Tensor& instruct,
                                  const Tensor* /*base*/,
                                  const MergeOptions& options,
                                  Rng& /*rng*/) const {
  const double lambda = effective_lambda(options, tensor_name);
  const Tensor& f_chip = fisher_chip_.at(tensor_name);
  const Tensor& f_instruct = fisher_instruct_.at(tensor_name);
  CA_CHECK(f_chip.same_shape(chip),
           "Fisher shape mismatch for '" << tensor_name << "'");

  Tensor out(chip.shape());
  const auto wc = chip.values();
  const auto wi = instruct.values();
  const auto fc = f_chip.values();
  const auto fi = f_instruct.values();
  auto wo = out.values();
  for (std::size_t i = 0; i < wo.size(); ++i) {
    const double weight_c = lambda * fc[i];
    const double weight_i = (1.0 - lambda) * fi[i];
    const double denom = weight_c + weight_i;
    if (denom > epsilon_) {
      wo[i] = static_cast<float>((weight_c * wc[i] + weight_i * wi[i]) / denom);
    } else {
      // No Fisher signal on either side: fall back to the plain mean.
      wo[i] = static_cast<float>(lambda * wc[i] + (1.0 - lambda) * wi[i]);
    }
  }
  return out;
}

}  // namespace chipalign
