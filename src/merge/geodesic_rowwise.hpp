#pragma once
/// \file geodesic_rowwise.hpp
/// \brief Row-wise variant of the ChipAlign geodesic merge (ablation).
///
/// The paper flattens each weight matrix onto one unit n-sphere. A natural
/// finer-grained alternative treats every *row* of a rank-2 tensor (one
/// output neuron's fan-in) as its own point on a smaller sphere, with
/// per-row norm restoration. Rank-1 tensors fall back to the whole-tensor
/// geodesic. Registered as "chipalign_rowwise"; compared against the paper's
/// formulation in bench_ablation_geometry.

#include "merge/merger.hpp"

namespace chipalign {

/// Per-row SLERP with per-row geometric norm restoration.
class GeodesicRowwiseMerger final : public Merger {
 public:
  std::string name() const override { return "chipalign_rowwise"; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
