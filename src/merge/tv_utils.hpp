#pragma once
/// \file tv_utils.hpp
/// \brief Shared task-vector machinery for TIES / DELLA / DARE.
///
/// Internal header (not part of the public merge API). All helpers operate
/// on flattened task vectors (W_finetuned - W_base).

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace chipalign::tv {

/// Zeroes all but the top `density` fraction of entries by |magnitude|.
/// Ties at the threshold keep lower indices first (deterministic). density
/// in (0, 1]; density == 1 keeps everything.
void trim_by_magnitude(Tensor& task_vector, double density);

/// Per-entry ranks by ascending |magnitude| (0 = smallest). Deterministic:
/// ties broken by index.
std::vector<std::int64_t> magnitude_ranks(const Tensor& task_vector);

/// Elects a per-entry sign from the weighted sum of the task vectors
/// ("mass" election of TIES). Returns +1 / -1 / 0 per entry.
std::vector<int> elect_signs(const Tensor& tau_a, const Tensor& tau_b,
                             double weight_a, double weight_b);

/// Weighted disjoint mean: for each entry, averages the contributions whose
/// sign agrees with the elected sign, weighting by the given model weights.
/// Entries whose contributions all disagree (or are zero) become 0.
Tensor disjoint_merge(const Tensor& tau_a, const Tensor& tau_b,
                      double weight_a, double weight_b,
                      const std::vector<int>& signs);

/// Bernoulli-keeps each entry with probability keep_prob[i] and rescales the
/// kept entries by 1 / keep_prob[i] (expected value preserved). keep_prob
/// entries must lie in (0, 1].
void stochastic_drop_rescale(Tensor& task_vector,
                             std::span<const double> keep_prob, Rng& rng);

}  // namespace chipalign::tv
