#include "merge/merger.hpp"

#include <atomic>
#include <vector>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace chipalign {

void validate_merge_options(const MergeOptions& options) {
  CA_CHECK(options.lambda >= 0.0 && options.lambda <= 1.0,
           "lambda must be in [0, 1], got " << options.lambda);
  for (const auto& [suffix, lambda] : options.lambda_overrides) {
    CA_CHECK(lambda >= 0.0 && lambda <= 1.0,
             "lambda override for '" << suffix << "' must be in [0, 1], got "
                                     << lambda);
  }
  CA_CHECK(options.density > 0.0 && options.density <= 1.0,
           "density must be in (0, 1], got " << options.density);
  CA_CHECK(options.theta_epsilon >= 0.0,
           "theta_epsilon must be >= 0, got " << options.theta_epsilon);
}

double effective_lambda(const MergeOptions& options,
                        const std::string& tensor_name) {
  for (const auto& [suffix, lambda] : options.lambda_overrides) {
    if (tensor_name.size() >= suffix.size() &&
        tensor_name.compare(tensor_name.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
      CA_CHECK(lambda >= 0.0 && lambda <= 1.0,
               "lambda override for '" << suffix << "' out of [0, 1]");
      return lambda;
    }
  }
  CA_CHECK(options.lambda >= 0.0 && options.lambda <= 1.0,
           "lambda must be in [0, 1], got " << options.lambda);
  return options.lambda;
}

Rng merge_tensor_rng(const MergeOptions& options, std::size_t index) {
  return Rng(options.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
}

Checkpoint merge_checkpoints(const Merger& merger, const Checkpoint& chip,
                             const Checkpoint& instruct,
                             const Checkpoint* base,
                             const MergeOptions& options,
                             const MergeProgressFn& progress) {
  check_mergeable(chip, instruct);
  if (merger.requires_base()) {
    CA_CHECK(base != nullptr,
             "merge method '" << merger.name()
                 << "' requires a base checkpoint");
    check_mergeable(chip, *base);
  }
  validate_merge_options(options);

  const std::vector<std::string> names = chip.names();
  std::vector<Tensor> merged(names.size());

  // One deterministic RNG stream per tensor, derived from the seed and the
  // tensor index, so results are independent of scheduling order.
  Timer timer;
  std::atomic<std::size_t> done{0};
  global_thread_pool().parallel_for(names.size(), [&](std::size_t i) {
    const std::string& name = names[i];
    Rng rng = merge_tensor_rng(options, i);
    const Tensor* base_tensor = base != nullptr ? &base->at(name) : nullptr;
    merged[i] = merger.merge_tensor(name, chip.at(name), instruct.at(name),
                                    base_tensor, options, rng);
    CA_CHECK(merged[i].same_shape(chip.at(name)),
             "merger '" << merger.name() << "' changed shape of '" << name
                 << "'");
    if (progress) progress(done.fetch_add(1) + 1, names.size());
  });

  Checkpoint out;
  out.config() = chip.config();
  out.config().name = chip.config().name + "+" + merger.name();
  for (std::size_t i = 0; i < names.size(); ++i) {
    out.put(names[i], std::move(merged[i]));
  }
  CA_LOG_DEBUG("merged " << names.size() << " tensors with '" << merger.name()
                         << "' in " << timer.milliseconds() << " ms");
  return out;
}

}  // namespace chipalign
