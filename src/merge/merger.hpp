#pragma once
/// \file merger.hpp
/// \brief Merger interface and the checkpoint-level merge driver.
///
/// A Merger fuses one pair of conformable weight tensors; merge_checkpoints()
/// applies it to every tensor of two checkpoints (optionally with a common
/// base checkpoint for task-vector methods), in parallel across tensors.
///
/// Convention (following the paper, §III): the *first* model is the chip /
/// domain model and the *second* is the instruction model. lambda = 1
/// recovers the chip model, lambda = 0 the instruction model.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/checkpoint.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Hyperparameters shared by all merge methods. Each method reads only the
/// fields it documents; defaults follow the source publications.
struct MergeOptions {
  /// Interpolation weight toward the chip model (paper default 0.6).
  double lambda = 0.6;

  /// Optional per-tensor lambda overrides: (name suffix, lambda) pairs,
  /// first match wins. Lets callers e.g. keep embeddings closer to the
  /// instruct model while pulling attention weights toward the chip model —
  /// an extension beyond the paper's single global lambda.
  std::vector<std::pair<std::string, double>> lambda_overrides;

  /// Fraction of task-vector entries *kept* by sparsifying methods
  /// (TIES "trim", DELLA/DARE drop rate = 1 - density).
  double density = 0.5;

  /// Scale applied to the merged task vector before adding it back to the
  /// base model (task arithmetic / TIES / DELLA / DARE).
  double tv_scale = 1.0;

  /// Half-width of DELLA's magnitude-ranked drop-probability window; the
  /// per-entry keep probability varies linearly in
  /// [density - window, density + window] with magnitude rank.
  double della_window = 0.1;

  /// Fraction of the largest-magnitude task-vector entries additionally
  /// masked by Model Breadcrumbs (its beta parameter; the publication's
  /// recommended range is a few percent).
  double breadcrumbs_outlier_frac = 0.02;

  /// Seed for stochastic methods (DELLA, DARE). Same seed => same merge.
  std::uint64_t seed = 0xC41BA11ULL;

  /// Angles below this (radians) use linear interpolation instead of SLERP
  /// to avoid dividing by sin(theta) ~ 0.
  double theta_epsilon = 1e-6;
};

/// Strategy interface: fuses one pair of same-shape tensors.
class Merger {
 public:
  virtual ~Merger() = default;

  /// Registry key, e.g. "chipalign", "ties".
  virtual std::string name() const = 0;

  /// True when the method needs the common base model's tensor (task-vector
  /// methods). merge_checkpoints() enforces availability.
  virtual bool requires_base() const { return false; }

  /// Fuses chip and instruct tensors (base may be nullptr when
  /// requires_base() is false). `rng` is a per-tensor deterministic stream.
  virtual Tensor merge_tensor(const std::string& tensor_name,
                              const Tensor& chip, const Tensor& instruct,
                              const Tensor* base, const MergeOptions& options,
                              Rng& rng) const = 0;
};

/// Validates every MergeOptions field with a documented domain: lambda and
/// all lambda overrides in [0, 1], density in (0, 1], theta_epsilon >= 0.
/// Both merge drivers call this up front, and callers (e.g. the CLI) can
/// invoke it early to fail before any checkpoint I/O.
/// \throws Error naming the offending field and value.
void validate_merge_options(const MergeOptions& options);

/// Resolves the interpolation weight for one tensor: the first matching
/// suffix in options.lambda_overrides, falling back to options.lambda.
/// All lambda-parameterized mergers consult this. Range-checks whichever
/// lambda it resolves — the base value too, not just overrides — so an
/// out-of-range lambda can never reach the interpolation math.
double effective_lambda(const MergeOptions& options,
                        const std::string& tensor_name);

/// Derives the deterministic per-tensor RNG stream for the tensor at
/// position `index` in the name-sorted tensor list. Both the in-memory
/// driver and the streaming engine seed from here, which is what makes the
/// two paths bit-identical for stochastic methods (DELLA, DARE).
Rng merge_tensor_rng(const MergeOptions& options, std::size_t index);

/// Progress callback: (tensors completed, total tensors). Invoked from
/// worker threads, possibly concurrently; implementations must be
/// thread-safe and cheap.
using MergeProgressFn = std::function<void(std::size_t done,
                                           std::size_t total)>;

/// Applies `merger` to every tensor of two conformable checkpoints.
/// \param base Common ancestor checkpoint for task-vector methods; must be
///   non-null and conformable when merger.requires_base().
/// \param progress Optional per-tensor completion callback.
/// \throws Error on non-conformable inputs or missing base.
Checkpoint merge_checkpoints(const Merger& merger, const Checkpoint& chip,
                             const Checkpoint& instruct,
                             const Checkpoint* base,
                             const MergeOptions& options,
                             const MergeProgressFn& progress = nullptr);

}  // namespace chipalign
