#pragma once
/// \file geometry.hpp
/// \brief Weight-space geometry diagnostics (the analysis behind §III-A).
///
/// These diagnostics quantify why the geodesic path differs from the linear
/// one: the angle Theta between normalized weight tensors, the cosine
/// between task vectors, and the divergence between SLERP and LERP at a
/// given lambda. Used by the ablation bench and the chip_assistant example.

#include <string>
#include <vector>

#include "model/checkpoint.hpp"

namespace chipalign {

/// Geometry of one tensor pair (chip vs instruct, optionally vs base).
struct TensorGeometry {
  std::string name;
  std::int64_t numel = 0;
  double norm_chip = 0.0;       ///< ||W_chip||_F
  double norm_instruct = 0.0;   ///< ||W_instruct||_F
  double theta = 0.0;           ///< arc angle between normalized tensors (rad)
  double tv_cosine = 0.0;       ///< cosine(task-vector chip, task-vector instruct); 0 without base
  double slerp_lerp_gap = 0.0;  ///< ||slerp(lambda) - lerp(lambda)||_F / ||slerp||_F
};

/// Per-tensor geometry of a model pair. `base` may be null (tv_cosine = 0).
/// `lambda` selects the interpolation point for the SLERP/LERP gap.
std::vector<TensorGeometry> analyze_geometry(const Checkpoint& chip,
                                             const Checkpoint& instruct,
                                             const Checkpoint* base,
                                             double lambda = 0.6);

/// Aggregate view over a geometry report.
struct GeometrySummary {
  double mean_theta = 0.0;
  double max_theta = 0.0;
  double mean_tv_cosine = 0.0;
  double mean_slerp_lerp_gap = 0.0;
};

GeometrySummary summarize_geometry(const std::vector<TensorGeometry>& report);

}  // namespace chipalign
