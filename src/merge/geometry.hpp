#pragma once
/// \file geometry.hpp
/// \brief Weight-space geometry diagnostics (the analysis behind §III-A).
///
/// These diagnostics quantify why the geodesic path differs from the linear
/// one: the angle Theta between normalized weight tensors, the cosine
/// between task vectors, and the divergence between SLERP and LERP at a
/// given lambda. Used by the ablation bench and the chip_assistant example.

#include <string>
#include <vector>

#include "model/checkpoint.hpp"

namespace chipalign {

/// Geometry of one tensor pair (chip vs instruct, optionally vs base).
struct TensorGeometry {
  std::string name;
  std::int64_t numel = 0;
  double norm_chip = 0.0;      ///< ||W_chip||_F
  double norm_instruct = 0.0;  ///< ||W_instruct||_F
  double theta = 0.0;          ///< arc angle between normalized tensors (rad)
  /// cosine(task-vector chip, task-vector instruct). Meaningful only when
  /// has_tv_cosine is true (a base checkpoint was given).
  double tv_cosine = 0.0;
  bool has_tv_cosine = false;
  /// ||slerp(lambda) - lerp(lambda)||_F / ||slerp||_F. Meaningful only when
  /// has_slerp_lerp_gap is true (both norms nonzero and the SLERP point is
  /// not itself zero).
  double slerp_lerp_gap = 0.0;
  bool has_slerp_lerp_gap = false;
};

/// Per-tensor geometry of a model pair. `base` may be null (tv_cosine = 0).
/// `lambda` selects the interpolation point for the SLERP/LERP gap.
std::vector<TensorGeometry> analyze_geometry(const Checkpoint& chip,
                                             const Checkpoint& instruct,
                                             const Checkpoint* base,
                                             double lambda = 0.6);

/// Aggregate view over a geometry report. Means that average an absent
/// quantity — tv_cosine without a base checkpoint, slerp_lerp_gap when no
/// tensor produced one — are NaN, never a silently-diluted average over
/// tensors that had nothing to report.
struct GeometrySummary {
  double mean_theta = 0.0;
  double max_theta = 0.0;
  /// Mean over tensors with has_tv_cosine; NaN when there are none.
  double mean_tv_cosine = 0.0;
  /// Mean over tensors with has_slerp_lerp_gap; NaN when there are none.
  double mean_slerp_lerp_gap = 0.0;
};

GeometrySummary summarize_geometry(const std::vector<TensorGeometry>& report);

}  // namespace chipalign
