#pragma once
/// \file dare.hpp
/// \brief DARE merging (Yu et al., 2024, "Language Models are Super Mario"):
/// uniform random Drop And REscale of task vectors before linear fusion.
///
/// Each task-vector entry survives with probability `density` and is
/// rescaled by 1/density (expectation preserving); the sparse task vectors
/// are then combined linearly with weight lambda and added to the base.
/// Included as an additional baseline beyond the paper's table (DELLA is
/// DARE + TIES machinery, so having plain DARE isolates the contribution of
/// sign election in the ablation bench).

#include "merge/merger.hpp"

namespace chipalign {

/// "dare" in the registry. Requires a base checkpoint. Stochastic.
class DareMerger final : public Merger {
 public:
  std::string name() const override { return "dare"; }
  bool requires_base() const override { return true; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

}  // namespace chipalign
