#include "merge/ties.hpp"

#include "merge/tv_utils.hpp"
#include "tensor/tensor_ops.hpp"

namespace chipalign {

Tensor TiesMerger::merge_tensor(const std::string& tensor_name,
                                const Tensor& chip, const Tensor& instruct,
                                const Tensor* base, const MergeOptions& options,
                                Rng& /*rng*/) const {
  CA_CHECK(base != nullptr, "TIES requires a base tensor");
  const double lambda_ = effective_lambda(options, tensor_name);
  Tensor tau_chip = ops::sub(chip, *base);
  Tensor tau_instruct = ops::sub(instruct, *base);

  tv::trim_by_magnitude(tau_chip, options.density);
  tv::trim_by_magnitude(tau_instruct, options.density);

  const double w_chip = lambda_;
  const double w_instruct = 1.0 - lambda_;
  const std::vector<int> signs =
      tv::elect_signs(tau_chip, tau_instruct, w_chip, w_instruct);
  Tensor merged = tv::disjoint_merge(tau_chip, tau_instruct, w_chip,
                                     w_instruct, signs);
  ops::scale(merged.values(), static_cast<float>(options.tv_scale));
  return ops::add(*base, merged);
}

}  // namespace chipalign
