#include "merge/breadcrumbs.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/tensor_ops.hpp"

namespace chipalign {

namespace {

/// Keeps entries whose |magnitude| rank lies in the band
/// [n - keep_count, n - outlier_count): i.e. the top `density` fraction
/// minus the top `outlier_frac` fraction. Everything else is zeroed.
void mask_to_band(Tensor& task_vector, double density, double outlier_frac) {
  const auto values = task_vector.values();
  const std::size_t n = values.size();
  if (n == 0) return;

  auto keep_count = static_cast<std::size_t>(
      std::llround(density * static_cast<double>(n)));
  auto outlier_count = static_cast<std::size_t>(
      std::llround(outlier_frac * static_cast<double>(n)));
  keep_count = std::min(keep_count, n);
  outlier_count = std::min(outlier_count, keep_count);
  if (keep_count == 0 || keep_count == outlier_count) {
    task_vector.fill(0.0F);
    return;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const float ma = std::abs(values[a]);
    const float mb = std::abs(values[b]);
    if (ma != mb) return ma > mb;  // descending magnitude
    return a < b;
  });

  std::vector<bool> keep(n, false);
  for (std::size_t rank = outlier_count; rank < keep_count; ++rank) {
    keep[order[rank]] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) values[i] = 0.0F;
  }
}

}  // namespace

Tensor BreadcrumbsMerger::merge_tensor(const std::string& tensor_name,
                                       const Tensor& chip,
                                       const Tensor& instruct,
                                       const Tensor* base,
                                       const MergeOptions& options,
                                       Rng& /*rng*/) const {
  CA_CHECK(base != nullptr, "breadcrumbs requires a base tensor");
  const double lambda = effective_lambda(options, tensor_name);
  Tensor tau_chip = ops::sub(chip, *base);
  Tensor tau_instruct = ops::sub(instruct, *base);

  mask_to_band(tau_chip, options.density, options.breadcrumbs_outlier_frac);
  mask_to_band(tau_instruct, options.density, options.breadcrumbs_outlier_frac);

  Tensor combined =
      ops::add(ops::scaled(tau_chip, static_cast<float>(lambda)),
               ops::scaled(tau_instruct, static_cast<float>(1.0 - lambda)));
  ops::scale(combined.values(), static_cast<float>(options.tv_scale));
  return ops::add(*base, combined);
}

}  // namespace chipalign
