#pragma once
/// \file geodesic.hpp
/// \brief ChipAlign's geodesic-interpolation merge (the paper's §III-B).
///
/// Each weight tensor is flattened, projected onto the unit n-sphere by its
/// Frobenius norm, interpolated along the great-circle arc (SLERP, Lemma
/// III.2), and rescaled by the geometric mean of the endpoint norms:
///
///   W_merge = Norm_chip^lambda * Norm_instruct^(1-lambda) * slerp(lambda)
///
/// Numerical edge cases:
///  * theta < theta_epsilon (near-identical directions): SLERP degenerates
///    to LERP of the normalized tensors; we use LERP and renormalize.
///  * theta near pi (antipodal): the geodesic is ill-defined; we clamp the
///    cosine into [-1+eps, 1-eps] which picks one of the great circles.
///  * zero-norm tensor on either side: falls back to plain LERP of the raw
///    tensors (no direction to interpolate).

#include "merge/merger.hpp"

namespace chipalign {

/// The paper's merge method ("chipalign" in the registry).
class GeodesicMerger final : public Merger {
 public:
  std::string name() const override { return "chipalign"; }

  Tensor merge_tensor(const std::string& tensor_name, const Tensor& chip,
                      const Tensor& instruct, const Tensor* base,
                      const MergeOptions& options, Rng& rng) const override;
};

/// Spherical interpolation of two *unit-norm flattened* tensors; exposed for
/// testing and for the geometry ablation. `lambda` weights the first operand
/// (paper convention: first = chip).
Tensor slerp_unit(const Tensor& unit_a, const Tensor& unit_b, double lambda,
                  double theta_epsilon);

}  // namespace chipalign
