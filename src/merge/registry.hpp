#pragma once
/// \file registry.hpp
/// \brief Name-based factory for merge methods.

#include <memory>
#include <string>
#include <vector>

#include "merge/merger.hpp"

namespace chipalign {

/// Creates a merger by registry name ("chipalign", "lerp", "modelsoup",
/// "task_arithmetic", "ties", "della", "dare"). Throws Error on unknown
/// names, listing the valid ones.
std::unique_ptr<Merger> create_merger(const std::string& name);

/// All registry names, sorted.
std::vector<std::string> merger_names();

}  // namespace chipalign
