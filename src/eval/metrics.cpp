#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "util/string_utils.hpp"

namespace chipalign {

std::size_t lcs_length(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling single-row DP.
  std::vector<std::size_t> prev(b.size() + 1, 0);
  std::vector<std::size_t> curr(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

namespace {

double f1(double precision, double recall) {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

std::map<std::string, int> counts(const std::vector<std::string>& tokens) {
  std::map<std::string, int> out;
  for (const std::string& token : tokens) ++out[token];
  return out;
}

}  // namespace

double rouge_l(std::string_view hypothesis, std::string_view reference) {
  const auto hyp = word_tokens(hypothesis);
  const auto ref = word_tokens(reference);
  if (hyp.empty() || ref.empty()) return 0.0;
  const auto lcs = static_cast<double>(lcs_length(hyp, ref));
  return f1(lcs / static_cast<double>(hyp.size()),
            lcs / static_cast<double>(ref.size()));
}

double rouge_1(std::string_view hypothesis, std::string_view reference) {
  const auto hyp = word_tokens(hypothesis);
  const auto ref = word_tokens(reference);
  if (hyp.empty() || ref.empty()) return 0.0;
  const auto hyp_counts = counts(hyp);
  const auto ref_counts = counts(ref);
  int overlap = 0;
  for (const auto& [token, count] : hyp_counts) {
    const auto it = ref_counts.find(token);
    if (it != ref_counts.end()) overlap += std::min(count, it->second);
  }
  return f1(static_cast<double>(overlap) / static_cast<double>(hyp.size()),
            static_cast<double>(overlap) / static_cast<double>(ref.size()));
}

double bleu(std::string_view hypothesis, std::string_view reference,
            int max_order) {
  const auto hyp = word_tokens(hypothesis);
  const auto ref = word_tokens(reference);
  if (hyp.empty() || ref.empty()) return 0.0;

  double log_precision_sum = 0.0;
  int orders_used = 0;
  for (int n = 1; n <= max_order; ++n) {
    const auto order = static_cast<std::size_t>(n);
    if (hyp.size() < order) break;
    ++orders_used;

    auto ngrams = [order](const std::vector<std::string>& tokens) {
      std::map<std::string, int> grams;
      for (std::size_t i = 0; i + order <= tokens.size(); ++i) {
        std::string key;
        for (std::size_t k = 0; k < order; ++k) {
          key += tokens[i + k];
          key += '\x1f';
        }
        ++grams[key];
      }
      return grams;
    };

    const auto hyp_grams = ngrams(hyp);
    const auto ref_grams = ngrams(ref);
    int matched = 0;
    int total = 0;
    for (const auto& [gram, count] : hyp_grams) {
      total += count;
      const auto it = ref_grams.find(gram);
      if (it != ref_grams.end()) matched += std::min(count, it->second);
    }
    // +1 smoothing for higher orders avoids log(0) on short sentences.
    double precision;
    if (n == 1) {
      if (matched == 0) return 0.0;
      precision = static_cast<double>(matched) / static_cast<double>(total);
    } else {
      precision = (static_cast<double>(matched) + 1.0) /
                  (static_cast<double>(total) + 1.0);
    }
    log_precision_sum += std::log(precision);
  }
  if (orders_used == 0) return 0.0;

  const double geo_mean = std::exp(log_precision_sum / orders_used);
  const double ratio =
      static_cast<double>(hyp.size()) / static_cast<double>(ref.size());
  const double brevity = ratio >= 1.0 ? 1.0 : std::exp(1.0 - 1.0 / ratio);
  return brevity * geo_mean;
}

double token_f1(std::string_view hypothesis, std::string_view reference) {
  return rouge_1(hypothesis, reference);  // identical definition
}

}  // namespace chipalign
