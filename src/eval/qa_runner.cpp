#include "eval/qa_runner.hpp"

#include <algorithm>

#include "data/corpus.hpp"
#include "eval/grader.hpp"
#include "eval/metrics.hpp"
#include "nn/infer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

namespace {

/// Accumulates (category, score) pairs into CategoryScores.
class ScoreAccumulator {
 public:
  void add(const std::string& category, double score) {
    sums_[category] += score;
    ++counts_[category];
    total_sum_ += score;
    ++total_count_;
  }

  CategoryScores finish() const {
    CategoryScores out;
    for (const auto& [category, sum] : sums_) {
      out.by_category[category] = sum / counts_.at(category);
      out.counts[category] = counts_.at(category);
    }
    out.all = total_count_ > 0 ? total_sum_ / total_count_ : 0.0;
    return out;
  }

 private:
  std::map<std::string, double> sums_;
  std::map<std::string, int> counts_;
  double total_sum_ = 0.0;
  int total_count_ = 0;
};

GenerateOptions answer_options() {
  GenerateOptions options;
  options.max_new_tokens = 96;
  options.temperature = 0.0;  // paper sets temperature to 0 for all models
  return options;
}

/// Runs score_one(i) for every item index, serially or across `pool`, and
/// returns the per-index results. The deterministic-parallelism rule lives
/// here: each index writes only its own slot, the caller reduces the slots
/// in index order, and the model inference inside score_one is bitwise
/// deterministic — so the reduction consumes identical values in identical
/// order at any thread count.
template <typename Result, typename Fn>
std::vector<Result> map_items(std::size_t count, ThreadPool* pool,
                              const Fn& score_one) {
  std::vector<Result> results(count);
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) results[i] = score_one(i);
  } else {
    pool->parallel_for(count,
                       [&](std::size_t i) { results[i] = score_one(i); });
  }
  return results;
}

/// One item's contribution: the category it lands in plus its score(s).
struct ItemScore {
  std::string category;
  double score = 0.0;
};

CategoryScores reduce_in_order(const std::vector<ItemScore>& scores) {
  ScoreAccumulator acc;
  for (const ItemScore& s : scores) acc.add(s.category, s.score);
  return acc.finish();
}

}  // namespace

CategoryScores run_openroad_eval(const TransformerModel& model,
                                 const std::vector<QaEvalItem>& items,
                                 const RetrievalPipeline* rag,
                                 std::size_t rag_top_k, ThreadPool* pool) {
  CA_CHECK(!items.empty(), "OpenROAD eval set is empty");
  // Retrieval runs as one batch up front (fanned across the pool); per-query
  // results are bitwise-identical to serial retrieve_texts calls, so the
  // prompts — and the scores — are unchanged.
  std::vector<std::vector<std::string>> rag_chunks;
  if (rag != nullptr) {
    std::vector<std::string> questions;
    questions.reserve(items.size());
    for (const QaEvalItem& item : items) questions.push_back(item.question);
    rag_chunks = rag->retrieve_texts_batch(questions, rag_top_k, pool);
  }
  const auto scores = map_items<ItemScore>(
      items.size(), pool, [&](std::size_t index) {
        const QaEvalItem& item = items[index];
        const std::vector<std::string> chunks =
            rag != nullptr ? rag_chunks[index]
                           : std::vector<std::string>{item.golden_context};
        const std::string prompt = qa_prompt(
            instruction_header(item.instructions), chunks, item.question);
        const std::string response = generate(model, prompt, answer_options(),
                                              /*stop_at_newline=*/true);
        return ItemScore{domain_name(item.domain),
                         rouge_l(response, item.golden_answer)};
      });
  return reduce_in_order(scores);
}

CategoryScores run_industrial_eval(const TransformerModel& model,
                                   const std::vector<IndustrialItem>& items,
                                   const RetrievalPipeline& rag,
                                   bool multi_turn, std::size_t rag_top_k,
                                   ThreadPool* pool) {
  CA_CHECK(!items.empty(), "industrial eval set is empty");
  // Both turns' questions are known up front (turn 2 retrieves by its own
  // question, not by the model's turn-1 answer), so all retrieval runs as
  // two batches before any generation — identical chunks to the serial
  // per-item calls.
  std::vector<std::string> turn1_questions;
  std::vector<std::string> turn2_questions;
  for (const IndustrialItem& item : items) {
    CA_CHECK(item.turns.size() >= 2, "industrial items need two turns");
    turn1_questions.push_back(item.turns[0].question);
    turn2_questions.push_back(item.turns[1].question);
  }
  const auto turn1_chunks =
      rag.retrieve_texts_batch(turn1_questions, rag_top_k, pool);
  const auto turn2_chunks =
      multi_turn ? rag.retrieve_texts_batch(turn2_questions, rag_top_k, pool)
                 : std::vector<std::vector<std::string>>{};
  const auto scores = map_items<ItemScore>(
      items.size(), pool, [&](std::size_t index) {
        const IndustrialItem& item = items[index];
        const std::string header = instruction_header(item.instructions);

        // Turn 1.
        const std::vector<std::string>& chunks1 = turn1_chunks[index];
        const std::string prompt1 =
            qa_prompt(header, chunks1, item.turns[0].question);
        const std::string response1 = generate(model, prompt1,
                                               answer_options(),
                                               /*stop_at_newline=*/true);
        const int grade1 = rubric_grade(response1, item.turns[0].golden_answer,
                                        item.instructions);

        if (!multi_turn) {
          return ItemScore{domain_name(item.domain),
                           static_cast<double>(grade1)};
        }

        // Turn 2: the follow-up sees the first exchange (with the model's
        // own answer) plus retrieved context for the new question.
        std::vector<std::string> chunks2 = chunks1;
        for (const std::string& chunk : turn2_chunks[index]) {
          if (std::find(chunks2.begin(), chunks2.end(), chunk) ==
              chunks2.end()) {
            chunks2.push_back(chunk);
          }
        }
        std::string prompt2 = qa_prompt(header, chunks2,
                                        item.turns[0].question);
        prompt2 += response1 + "\n";
        prompt2 += "q: " + item.turns[1].question + "\n";
        prompt2 += "out: ";
        const std::string response2 = generate(model, prompt2,
                                               answer_options(),
                                               /*stop_at_newline=*/true);
        const int grade2 = rubric_grade(response2, item.turns[1].golden_answer,
                                        item.instructions);

        return ItemScore{domain_name(item.domain), 0.5 * (grade1 + grade2)};
      });
  return reduce_in_order(scores);
}

std::map<std::string, CategoryScores> run_openroad_eval_metrics(
    const TransformerModel& model, const std::vector<QaEvalItem>& items,
    ThreadPool* pool) {
  CA_CHECK(!items.empty(), "OpenROAD eval set is empty");
  struct MetricScores {
    std::string category;
    double rouge_l = 0.0;
    double rouge_1 = 0.0;
    double bleu = 0.0;
    double token_f1 = 0.0;
  };
  const auto scores = map_items<MetricScores>(
      items.size(), pool, [&](std::size_t index) {
        const QaEvalItem& item = items[index];
        const std::string prompt =
            qa_prompt(instruction_header(item.instructions),
                      {item.golden_context}, item.question);
        const std::string response = generate(model, prompt, answer_options(),
                                              /*stop_at_newline=*/true);
        return MetricScores{domain_name(item.domain),
                            rouge_l(response, item.golden_answer),
                            rouge_1(response, item.golden_answer),
                            bleu(response, item.golden_answer),
                            token_f1(response, item.golden_answer)};
      });
  std::map<std::string, ScoreAccumulator> accs;
  for (const MetricScores& s : scores) {
    accs["rouge_l"].add(s.category, s.rouge_l);
    accs["rouge_1"].add(s.category, s.rouge_1);
    accs["bleu"].add(s.category, s.bleu);
    accs["token_f1"].add(s.category, s.token_f1);
  }
  std::map<std::string, CategoryScores> out;
  for (const auto& [metric, acc] : accs) out[metric] = acc.finish();
  return out;
}

CategoryScores run_mcq_eval(const TransformerModel& model,
                            const std::vector<McqItem>& items,
                            ThreadPool* pool) {
  CA_CHECK(!items.empty(), "MCQ eval set is empty");
  const CharTokenizer& tok = tokenizer();
  const auto scores = map_items<ItemScore>(
      items.size(), pool, [&](std::size_t index) {
        const McqItem& item = items[index];
        const std::string prompt = qa_prompt("", {}, item.question);
        const std::vector<TokenId> context =
            tok.encode(prompt, /*add_bos=*/true);

        // Prefill the shared question once, snapshot, and score every
        // choice from the snapshot. Restoring the KV prefix puts the
        // session in exactly the state a fresh prefill of `context` would,
        // so each choice's mean logprob is bitwise-identical to the
        // re-prefilling mean_logprob() path.
        InferenceSession session(model);
        const std::vector<float> context_logits = session.prefill(context);
        const InferenceSession::Snapshot prefix = session.snapshot();

        double best_score = -1e300;
        int best_choice = -1;
        for (std::size_t c = 0; c < item.choices.size(); ++c) {
          if (c > 0) session.restore(prefix);
          const std::vector<TokenId> continuation =
              tok.encode(item.choices[c]);
          const double score =
              continuation_logprob(session, context_logits, continuation) /
              static_cast<double>(continuation.size());
          if (score > best_score) {
            best_score = score;
            best_choice = static_cast<int>(c);
          }
        }
        return ItemScore{domain_name(item.domain),
                         best_choice == item.correct_index ? 1.0 : 0.0};
      });
  return reduce_in_order(scores);
}

}  // namespace chipalign
