#include "eval/qa_runner.hpp"

#include <algorithm>

#include "data/corpus.hpp"
#include "eval/grader.hpp"
#include "eval/metrics.hpp"
#include "nn/infer.hpp"
#include "util/error.hpp"

namespace chipalign {

namespace {

/// Accumulates (category, score) pairs into CategoryScores.
class ScoreAccumulator {
 public:
  void add(const std::string& category, double score) {
    sums_[category] += score;
    ++counts_[category];
    total_sum_ += score;
    ++total_count_;
  }

  CategoryScores finish() const {
    CategoryScores out;
    for (const auto& [category, sum] : sums_) {
      out.by_category[category] = sum / counts_.at(category);
      out.counts[category] = counts_.at(category);
    }
    out.all = total_count_ > 0 ? total_sum_ / total_count_ : 0.0;
    return out;
  }

 private:
  std::map<std::string, double> sums_;
  std::map<std::string, int> counts_;
  double total_sum_ = 0.0;
  int total_count_ = 0;
};

GenerateOptions answer_options() {
  GenerateOptions options;
  options.max_new_tokens = 96;
  options.temperature = 0.0;  // paper sets temperature to 0 for all models
  return options;
}

}  // namespace

CategoryScores run_openroad_eval(const TransformerModel& model,
                                 const std::vector<QaEvalItem>& items,
                                 const RetrievalPipeline* rag,
                                 std::size_t rag_top_k) {
  CA_CHECK(!items.empty(), "OpenROAD eval set is empty");
  ScoreAccumulator acc;
  for (const QaEvalItem& item : items) {
    std::vector<std::string> chunks;
    if (rag != nullptr) {
      chunks = rag->retrieve_texts(item.question, rag_top_k);
    } else {
      chunks.push_back(item.golden_context);
    }
    const std::string prompt = qa_prompt(instruction_header(item.instructions),
                                         chunks, item.question);
    const std::string response =
        generate(model, prompt, answer_options(), /*stop_at_newline=*/true);
    acc.add(domain_name(item.domain), rouge_l(response, item.golden_answer));
  }
  return acc.finish();
}

CategoryScores run_industrial_eval(const TransformerModel& model,
                                   const std::vector<IndustrialItem>& items,
                                   const RetrievalPipeline& rag,
                                   bool multi_turn, std::size_t rag_top_k) {
  CA_CHECK(!items.empty(), "industrial eval set is empty");
  ScoreAccumulator acc;
  for (const IndustrialItem& item : items) {
    CA_CHECK(item.turns.size() >= 2, "industrial items need two turns");
    const std::string header = instruction_header(item.instructions);

    // Turn 1.
    const std::vector<std::string> chunks1 =
        rag.retrieve_texts(item.turns[0].question, rag_top_k);
    const std::string prompt1 =
        qa_prompt(header, chunks1, item.turns[0].question);
    const std::string response1 =
        generate(model, prompt1, answer_options(), /*stop_at_newline=*/true);
    const int grade1 =
        rubric_grade(response1, item.turns[0].golden_answer, item.instructions);

    if (!multi_turn) {
      acc.add(domain_name(item.domain), static_cast<double>(grade1));
      continue;
    }

    // Turn 2: the follow-up sees the first exchange (with the model's own
    // answer) plus retrieved context for the new question.
    std::vector<std::string> chunks2 = chunks1;
    for (const std::string& chunk :
         rag.retrieve_texts(item.turns[1].question, rag_top_k)) {
      if (std::find(chunks2.begin(), chunks2.end(), chunk) == chunks2.end()) {
        chunks2.push_back(chunk);
      }
    }
    std::string prompt2 = qa_prompt(header, chunks2, item.turns[0].question);
    prompt2 += response1 + "\n";
    prompt2 += "q: " + item.turns[1].question + "\n";
    prompt2 += "out: ";
    const std::string response2 =
        generate(model, prompt2, answer_options(), /*stop_at_newline=*/true);
    const int grade2 =
        rubric_grade(response2, item.turns[1].golden_answer, item.instructions);

    acc.add(domain_name(item.domain), 0.5 * (grade1 + grade2));
  }
  return acc.finish();
}

std::map<std::string, CategoryScores> run_openroad_eval_metrics(
    const TransformerModel& model, const std::vector<QaEvalItem>& items) {
  CA_CHECK(!items.empty(), "OpenROAD eval set is empty");
  std::map<std::string, ScoreAccumulator> accs;
  for (const QaEvalItem& item : items) {
    const std::string prompt =
        qa_prompt(instruction_header(item.instructions), {item.golden_context},
                  item.question);
    const std::string response =
        generate(model, prompt, answer_options(), /*stop_at_newline=*/true);
    const std::string category = domain_name(item.domain);
    accs["rouge_l"].add(category, rouge_l(response, item.golden_answer));
    accs["rouge_1"].add(category, rouge_1(response, item.golden_answer));
    accs["bleu"].add(category, bleu(response, item.golden_answer));
    accs["token_f1"].add(category, token_f1(response, item.golden_answer));
  }
  std::map<std::string, CategoryScores> out;
  for (const auto& [metric, acc] : accs) out[metric] = acc.finish();
  return out;
}

CategoryScores run_mcq_eval(const TransformerModel& model,
                            const std::vector<McqItem>& items) {
  CA_CHECK(!items.empty(), "MCQ eval set is empty");
  const CharTokenizer& tok = tokenizer();
  ScoreAccumulator acc;
  for (const McqItem& item : items) {
    const std::string prompt = qa_prompt("", {}, item.question);
    const std::vector<TokenId> context = tok.encode(prompt, /*add_bos=*/true);

    double best_score = -1e300;
    int best_choice = -1;
    for (std::size_t c = 0; c < item.choices.size(); ++c) {
      const std::vector<TokenId> continuation = tok.encode(item.choices[c]);
      const double score = mean_logprob(model, context, continuation);
      if (score > best_score) {
        best_score = score;
        best_choice = static_cast<int>(c);
      }
    }
    acc.add(domain_name(item.domain),
            best_choice == item.correct_index ? 1.0 : 0.0);
  }
  return acc.finish();
}

}  // namespace chipalign
