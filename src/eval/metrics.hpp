#pragma once
/// \file metrics.hpp
/// \brief Text-generation metrics: ROUGE-L/1, BLEU, token F1.
///
/// All metrics operate on lowercased alphanumeric word tokens (see
/// word_tokens()), matching the common ROUGE/BLEU preprocessing. ROUGE-L is
/// the paper's Table 1 metric; BLEU is implemented because the paper
/// discusses (and rejects) it; token F1 feeds the rubric grader of Table 2.

#include <string_view>
#include <vector>

namespace chipalign {

/// Length of the longest common subsequence of two token sequences.
std::size_t lcs_length(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// ROUGE-L F1 between a hypothesis and a reference. 0 when either is empty.
double rouge_l(std::string_view hypothesis, std::string_view reference);

/// ROUGE-1 (unigram) F1 with clipped counts.
double rouge_1(std::string_view hypothesis, std::string_view reference);

/// Sentence BLEU with up to 4-gram precision, +1 smoothing for n >= 2, and
/// the standard brevity penalty. 0 when either side is empty.
double bleu(std::string_view hypothesis, std::string_view reference,
            int max_order = 4);

/// SQuAD-style token-multiset F1.
double token_f1(std::string_view hypothesis, std::string_view reference);

}  // namespace chipalign
