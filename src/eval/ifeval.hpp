#pragma once
/// \file ifeval.hpp
/// \brief IFEval-style instruction-following evaluation harness (Table 3).
///
/// For each prompt the model's response is checked against every instruction
/// programmatically. As in IFEval, accuracy is reported at two levels:
/// prompt level (all instructions of a prompt satisfied) and instruction
/// level (each instruction counted separately), each in strict and loose
/// variants.

#include <vector>

#include "data/qa_bench.hpp"
#include "nn/transformer.hpp"

namespace chipalign {

/// Aggregate IFEval accuracies, all in [0, 1].
struct IfEvalResult {
  double prompt_strict = 0.0;
  double prompt_loose = 0.0;
  double instruction_strict = 0.0;
  double instruction_loose = 0.0;
  int prompt_count = 0;
  int instruction_count = 0;
};

/// Runs the model (greedy decoding) over the IFEval set and scores it.
IfEvalResult run_ifeval(const TransformerModel& model,
                        const std::vector<IfEvalItem>& items);

}  // namespace chipalign
