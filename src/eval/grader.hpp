#pragma once
/// \file grader.hpp
/// \brief Deterministic rubric grader standing in for the paper's GPT-4
/// grader on the industrial chip QA benchmark.
///
/// The paper's grader compares a response with the golden answer and assigns
/// a score in {0, 25, 50, 75, 100}. Our deterministic rubric maps token-F1
/// similarity to the same bands and deducts one band when the response
/// violates any of the prompt's instructions — mirroring how Figure 6's
/// grader punished answers that ignored the grounding instruction.

#include <string>
#include <vector>

#include "data/instructions.hpp"

namespace chipalign {

/// Grades a response against the golden answer. Returns 0/25/50/75/100.
int rubric_grade(const std::string& response, const std::string& golden,
                 const std::vector<InstructionKind>& instructions);

}  // namespace chipalign
