#pragma once
/// \file qa_runner.hpp
/// \brief Generation-benchmark harnesses: OpenROAD QA (Table 1 / Figure 8),
/// industrial chip QA (Table 2) and multiple-choice QA (Figure 7).
///
/// Every runner optionally fans items across a caller-supplied ThreadPool.
/// Parallelism is deterministic by construction: per-item results are
/// gathered into a slot indexed by item, then reduced in item order, and the
/// per-item inference itself runs on the bitwise-deterministic kernel layer
/// — so scores are identical to the serial path at any thread count. RAG
/// contexts are fetched as one retrieve_texts_batch up front (itself fanned
/// across the same pool, bitwise-equal to serial retrieval) before any
/// generation starts.

#include <map>
#include <string>
#include <vector>

#include "data/qa_bench.hpp"
#include "nn/transformer.hpp"
#include "rag/retrieval.hpp"

namespace chipalign {

class ThreadPool;

/// Per-category and overall score of a generation benchmark.
struct CategoryScores {
  std::map<std::string, double> by_category;  ///< category -> mean score
  std::map<std::string, int> counts;
  double all = 0.0;  ///< mean over every item
};

/// Runs the OpenROAD-style QA benchmark with ROUGE-L scoring.
/// \param rag null => golden context (the item's own doc sentence); non-null
///   => context is retrieved from the corpus by the question (Table 1's two
///   column groups).
/// \param pool null => serial; else items are scored concurrently across the
///   pool (same scores, gathered by item index).
CategoryScores run_openroad_eval(const TransformerModel& model,
                                 const std::vector<QaEvalItem>& items,
                                 const RetrievalPipeline* rag,
                                 std::size_t rag_top_k = 2,
                                 ThreadPool* pool = nullptr);

/// Runs the industrial QA benchmark with the rubric grader (0..100).
/// Contexts always come from RAG (as in the paper). In multi-turn mode the
/// model's own first-turn answer is embedded in the second-turn prompt and
/// both turns are graded.
CategoryScores run_industrial_eval(const TransformerModel& model,
                                   const std::vector<IndustrialItem>& items,
                                   const RetrievalPipeline& rag,
                                   bool multi_turn,
                                   std::size_t rag_top_k = 2,
                                   ThreadPool* pool = nullptr);

/// Multiple-choice accuracy by length-normalized log-likelihood (closed
/// book, no instructions — Figure 7's setting). Each item prefills its
/// question once, snapshots the KV cache, and scores every choice from the
/// snapshot — bitwise-identical scores to re-prefilling per choice at a
/// fraction of the cost.
CategoryScores run_mcq_eval(const TransformerModel& model,
                            const std::vector<McqItem>& items,
                            ThreadPool* pool = nullptr);

/// One generation pass over the OpenROAD eval scored under several metrics
/// at once ("rouge_l", "rouge_1", "bleu", "token_f1"). Backs the paper's
/// §IV-A claim that ROUGE-L is the most representative metric for this
/// benchmark. Golden context only (rag = null semantics of
/// run_openroad_eval).
std::map<std::string, CategoryScores> run_openroad_eval_metrics(
    const TransformerModel& model, const std::vector<QaEvalItem>& items,
    ThreadPool* pool = nullptr);

}  // namespace chipalign
