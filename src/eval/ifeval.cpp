#include "eval/ifeval.hpp"

#include "nn/infer.hpp"
#include "util/error.hpp"

namespace chipalign {

IfEvalResult run_ifeval(const TransformerModel& model,
                        const std::vector<IfEvalItem>& items) {
  CA_CHECK(!items.empty(), "IFEval set is empty");
  IfEvalResult result;

  GenerateOptions options;
  options.max_new_tokens = 96;

  int prompt_strict_ok = 0;
  int prompt_loose_ok = 0;
  int instr_strict_ok = 0;
  int instr_loose_ok = 0;
  for (const IfEvalItem& item : items) {
    const std::string response =
        generate(model, item.prompt, options, /*stop_at_newline=*/true);

    bool all_strict = true;
    bool all_loose = true;
    for (InstructionKind kind : item.instructions) {
      const bool strict = verify_strict(kind, response);
      const bool loose = verify_loose(kind, response);
      instr_strict_ok += strict ? 1 : 0;
      instr_loose_ok += loose ? 1 : 0;
      all_strict = all_strict && strict;
      all_loose = all_loose && loose;
      ++result.instruction_count;
    }
    prompt_strict_ok += all_strict ? 1 : 0;
    prompt_loose_ok += all_loose ? 1 : 0;
    ++result.prompt_count;
  }

  result.prompt_strict =
      static_cast<double>(prompt_strict_ok) / result.prompt_count;
  result.prompt_loose =
      static_cast<double>(prompt_loose_ok) / result.prompt_count;
  result.instruction_strict =
      static_cast<double>(instr_strict_ok) / result.instruction_count;
  result.instruction_loose =
      static_cast<double>(instr_loose_ok) / result.instruction_count;
  return result;
}

}  // namespace chipalign
