#include "eval/grader.hpp"

#include <algorithm>

#include "eval/metrics.hpp"

namespace chipalign {

int rubric_grade(const std::string& response, const std::string& golden,
                 const std::vector<InstructionKind>& instructions) {
  const double similarity = token_f1(response, golden);
  int band;
  if (similarity >= 0.85) {
    band = 4;
  } else if (similarity >= 0.60) {
    band = 3;
  } else if (similarity >= 0.35) {
    band = 2;
  } else if (similarity >= 0.12) {
    band = 1;
  } else {
    band = 0;
  }

  // One band off for instruction violations (strict check, like the
  // "not supported by context" deductions in the paper's Figure 6).
  const bool violated =
      std::any_of(instructions.begin(), instructions.end(),
                  [&](InstructionKind kind) {
                    return !verify_strict(kind, response);
                  });
  if (violated && band > 0) --band;

  return band * 25;
}

}  // namespace chipalign
