#pragma once
/// \file session_state.hpp
/// \brief Per-session mutable inference state: KV cache, position, RNG.
///
/// The serving engine's Model/session split: TransformerModel is the
/// immutable shared Model (weights + config — safe to read from any number
/// of concurrent sessions), and SessionState is everything that belongs to
/// one conversation: the per-layer KV cache, the decode position and the
/// sampler RNG stream. A state is bound to a model *shape* (n_layers,
/// kv_dim) rather than to a model instance, and its cache capacity may be
/// smaller than config.max_seq_len so that a server can admit many short
/// sessions under one KV byte budget.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "model/model_config.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Mutable per-session decode state. Plain data, movable, no model pointer:
/// decode_step()/batched_decode_step() pair it with the shared model.
struct SessionState {
  /// \param capacity_tokens KV rows per layer; the session can consume at
  ///   most this many tokens. Must be in (0, config.max_seq_len].
  SessionState(const ModelConfig& config, std::int64_t capacity_tokens,
               std::uint64_t sampler_seed = 7)
      : capacity(capacity_tokens),
        kv_dim(config.n_kv_heads * config.head_dim()),
        layer_stride(capacity_tokens * kv_dim),
        n_layers(config.n_layers),
        rng(sampler_seed) {
    CA_CHECK(capacity > 0 && capacity <= config.max_seq_len,
             "session KV capacity " << capacity << " out of range (1.."
                                    << config.max_seq_len << ")");
    const auto floats = static_cast<std::size_t>(n_layers * layer_stride);
    // new[] without value-initialization: the cache starts dead and every
    // position is written by a decode step before any read of it.
    k_cache.reset(new float[floats]);
    v_cache.reset(new float[floats]);
  }

  float* k_at(std::int64_t layer, std::int64_t pos) {
    return k_cache.get() + layer * layer_stride + pos * kv_dim;
  }
  float* v_at(std::int64_t layer, std::int64_t pos) {
    return v_cache.get() + layer * layer_stride + pos * kv_dim;
  }
  const float* k_at(std::int64_t layer, std::int64_t pos) const {
    return k_cache.get() + layer * layer_stride + pos * kv_dim;
  }
  const float* v_at(std::int64_t layer, std::int64_t pos) const {
    return v_cache.get() + layer * layer_stride + pos * kv_dim;
  }

  /// Bytes of KV cache this state owns (what a server's admission budget
  /// charges for). Computable without constructing the state.
  static std::size_t kv_bytes_for(const ModelConfig& config,
                                  std::int64_t capacity_tokens) {
    const std::int64_t kv = config.n_kv_heads * config.head_dim();
    return 2 * static_cast<std::size_t>(config.n_layers * capacity_tokens *
                                        kv) *
           sizeof(float);
  }
  std::size_t kv_bytes() const {
    return 2 * static_cast<std::size_t>(n_layers * layer_stride) *
           sizeof(float);
  }

  std::int64_t position = 0;  ///< tokens consumed so far
  std::int64_t capacity = 0;  ///< KV rows per layer
  std::int64_t kv_dim = 0;
  std::int64_t layer_stride = 0;  ///< capacity * kv_dim floats per layer
  std::int64_t n_layers = 0;

  // Per layer: [capacity, kv_dim] caches, flattened into one block each.
  // Deliberately not value-initialized — entries past `position` are dead.
  std::unique_ptr<float[]> k_cache;
  std::unique_ptr<float[]> v_cache;

  Rng rng;  ///< per-session sampler stream (temperature decoding)
};

}  // namespace chipalign
