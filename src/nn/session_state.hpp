#pragma once
/// \file session_state.hpp
/// \brief Per-session mutable inference state: KV cache, position, RNG.
///
/// The serving engine's Model/session split: TransformerModel is the
/// immutable shared Model (weights + config — safe to read from any number
/// of concurrent sessions), and SessionState is everything that belongs to
/// one conversation: the per-layer KV cache, the decode position and the
/// sampler RNG stream. A state is bound to a model *shape* (n_layers,
/// kv_dim) rather than to a model instance, and its cache capacity may be
/// smaller than config.max_seq_len so that a server can admit many short
/// sessions under one KV byte budget.
///
/// The cache stores rows in kF32 (exact) or kF16 (half the bytes; each row
/// is rounded to nearest-even on store and dequantized exactly on read, so
/// fp16-KV decode stays bitwise run-to-run deterministic — see DESIGN.md
/// §4i).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

#include "model/model_config.hpp"
#include "tensor/dtype.hpp"
#include "tensor/half.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Mutable per-session decode state. Plain data, movable, no model pointer:
/// decode_step()/batched_decode_step() pair it with the shared model.
struct SessionState {
  /// \param capacity_tokens KV rows per layer; the session can consume at
  ///   most this many tokens. Must be in (0, config.max_seq_len].
  /// \param kv_type cache storage dtype: kF32 or kF16.
  SessionState(const ModelConfig& config, std::int64_t capacity_tokens,
               std::uint64_t sampler_seed = 7, DType kv_type = DType::kF32)
      : capacity(capacity_tokens),
        kv_dim(config.n_kv_heads * config.head_dim()),
        layer_stride(capacity_tokens * kv_dim),
        n_layers(config.n_layers),
        kv_dtype(kv_type),
        rng(sampler_seed) {
    CA_CHECK(capacity > 0 && capacity <= config.max_seq_len,
             "session KV capacity " << capacity << " out of range (1.."
                                    << config.max_seq_len << ")");
    CA_CHECK(kv_dtype == DType::kF32 || kv_dtype == DType::kF16,
             "KV cache dtype must be F32 or F16, got "
                 << dtype_name(kv_dtype));
    const auto bytes = static_cast<std::size_t>(n_layers * layer_stride) *
                       dtype_size(kv_dtype);
    // new[] without value-initialization: the cache starts dead and every
    // position is written by a decode step before any read of it.
    k_cache.reset(new unsigned char[bytes]);
    v_cache.reset(new unsigned char[bytes]);
  }

  std::size_t kv_elem_size() const { return dtype_size(kv_dtype); }

  /// Raw pointer to the row for (layer, pos), in storage dtype. Rows are
  /// kv_dim elements of kv_elem_size() bytes; this is the accessor generic
  /// code (prefix-cache copies) uses.
  unsigned char* k_raw(std::int64_t layer, std::int64_t pos) {
    return k_cache.get() +
           static_cast<std::size_t>(layer * layer_stride + pos * kv_dim) *
               kv_elem_size();
  }
  unsigned char* v_raw(std::int64_t layer, std::int64_t pos) {
    return v_cache.get() +
           static_cast<std::size_t>(layer * layer_stride + pos * kv_dim) *
               kv_elem_size();
  }
  const unsigned char* k_raw(std::int64_t layer, std::int64_t pos) const {
    return k_cache.get() +
           static_cast<std::size_t>(layer * layer_stride + pos * kv_dim) *
               kv_elem_size();
  }
  const unsigned char* v_raw(std::int64_t layer, std::int64_t pos) const {
    return v_cache.get() +
           static_cast<std::size_t>(layer * layer_stride + pos * kv_dim) *
               kv_elem_size();
  }

  // fp32 views (valid only for a kF32 cache).
  float* k_at(std::int64_t layer, std::int64_t pos) {
    return reinterpret_cast<float*>(k_raw(layer, pos));
  }
  float* v_at(std::int64_t layer, std::int64_t pos) {
    return reinterpret_cast<float*>(v_raw(layer, pos));
  }
  const float* k_at(std::int64_t layer, std::int64_t pos) const {
    return reinterpret_cast<const float*>(k_raw(layer, pos));
  }
  const float* v_at(std::int64_t layer, std::int64_t pos) const {
    return reinterpret_cast<const float*>(v_raw(layer, pos));
  }

  // fp16 bit-pattern views (valid only for a kF16 cache).
  const std::uint16_t* k16_at(std::int64_t layer, std::int64_t pos) const {
    return reinterpret_cast<const std::uint16_t*>(k_raw(layer, pos));
  }
  const std::uint16_t* v16_at(std::int64_t layer, std::int64_t pos) const {
    return reinterpret_cast<const std::uint16_t*>(v_raw(layer, pos));
  }

  /// Writes one fp32 row into the cache, converting to the storage dtype
  /// (bit copy for kF32, round-to-nearest-even for kF16).
  void store_k_row(std::int64_t layer, std::int64_t pos, const float* src) {
    store_row(k_raw(layer, pos), src);
  }
  void store_v_row(std::int64_t layer, std::int64_t pos, const float* src) {
    store_row(v_raw(layer, pos), src);
  }

  /// Rewinds the session to `pos`, discarding every later token (the KV
  /// rollback primitive speculative decoding uses to drop rejected draft
  /// rows). O(1): the cache is lazy, so rows at or past the position are
  /// dead and a subsequent decode step simply overwrites them. `pos` must
  /// be in [0, position].
  void truncate(std::int64_t pos) {
    CA_CHECK(pos >= 0 && pos <= position,
             "truncate to " << pos << " outside [0, " << position << "]");
    position = pos;
  }

  /// Bytes of KV cache this state owns (what a server's admission budget
  /// charges for). Computable without constructing the state.
  static std::size_t kv_bytes_for(const ModelConfig& config,
                                  std::int64_t capacity_tokens,
                                  DType kv_type = DType::kF32) {
    const std::int64_t kv = config.n_kv_heads * config.head_dim();
    return 2 * static_cast<std::size_t>(config.n_layers * capacity_tokens *
                                        kv) *
           dtype_size(kv_type);
  }
  std::size_t kv_bytes() const {
    return 2 * static_cast<std::size_t>(n_layers * layer_stride) *
           kv_elem_size();
  }

  std::int64_t position = 0;  ///< tokens consumed so far
  std::int64_t capacity = 0;  ///< KV rows per layer
  std::int64_t kv_dim = 0;
  std::int64_t layer_stride = 0;  ///< capacity * kv_dim elements per layer
  std::int64_t n_layers = 0;
  DType kv_dtype = DType::kF32;  ///< cache storage dtype (kF32 or kF16)

  // Per layer: [capacity, kv_dim] caches, flattened into one block each,
  // stored as kv_dtype elements. Deliberately not value-initialized —
  // entries past `position` are dead.
  std::unique_ptr<unsigned char[]> k_cache;
  std::unique_ptr<unsigned char[]> v_cache;

  Rng rng;  ///< per-session sampler stream (temperature decoding)

 private:
  void store_row(unsigned char* dst, const float* src) {
    if (kv_dtype == DType::kF32) {
      std::memcpy(dst, src, static_cast<std::size_t>(kv_dim) * sizeof(float));
      return;
    }
    auto* out = reinterpret_cast<std::uint16_t*>(dst);
    for (std::int64_t i = 0; i < kv_dim; ++i) out[i] = f32_to_f16_bits(src[i]);
  }
};

}  // namespace chipalign
