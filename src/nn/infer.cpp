#include "nn/infer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/kernels.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

namespace {

/// y = W x with W [out, in] row-major, on the kernel layer: every output
/// row is the contract-reduced dot product, fanned over the global thread
/// pool when large enough (bitwise identical at any pool size).
void matvec(const Tensor& w, std::span<const float> x, std::span<float> y) {
  const std::int64_t out_dim = w.dim(0);
  const std::int64_t in_dim = w.dim(1);
  CA_CHECK(static_cast<std::int64_t>(x.size()) == in_dim, "matvec input size");
  CA_CHECK(static_cast<std::int64_t>(y.size()) == out_dim,
           "matvec output size");
  kernels::parallel_matvec(w.data(), x.data(), y.data(), out_dim, in_dim);
}

void rmsnorm_row(std::span<const float> x, std::span<const float> gain,
                 double eps, std::span<float> y) {
  double mean_sq = 0.0;
  for (float v : x) mean_sq += static_cast<double>(v) * v;
  mean_sq /= static_cast<double>(x.size());
  const auto r = static_cast<float>(1.0 / std::sqrt(mean_sq + eps));
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * r * gain[i];
}

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

}  // namespace

InferenceSession::InferenceSession(const TransformerModel& model)
    : model_(model) {
  const auto& config = model_.config();
  kv_dim_ = config.n_kv_heads * config.head_dim();
  layer_stride_ = config.max_seq_len * kv_dim_;
  const auto cache_floats =
      static_cast<std::size_t>(config.n_layers * layer_stride_);
  // new[] without value-initialization: the cache starts dead and each
  // position is written by step() before any read of it.
  k_cache_.reset(new float[cache_floats]);
  v_cache_.reset(new float[cache_floats]);

  x_.resize(static_cast<std::size_t>(config.d_model));
  normed_.resize(static_cast<std::size_t>(config.d_model));
  q_.resize(static_cast<std::size_t>(config.d_model));
  att_.resize(static_cast<std::size_t>(config.d_model));
  proj_.resize(static_cast<std::size_t>(config.d_model));
  gate_.resize(static_cast<std::size_t>(config.d_ff));
  up_.resize(static_cast<std::size_t>(config.d_ff));
  scores_.resize(static_cast<std::size_t>(config.max_seq_len));
  logits_.resize(static_cast<std::size_t>(config.vocab_size));
}

void InferenceSession::reset() { position_ = 0; }

InferenceSession::Snapshot InferenceSession::snapshot() const {
  Snapshot snap;
  snap.position = position_;
  const std::int64_t n_layers = model_.config().n_layers;
  const std::int64_t live = position_ * kv_dim_;
  snap.k.resize(static_cast<std::size_t>(n_layers * live));
  snap.v.resize(static_cast<std::size_t>(n_layers * live));
  for (std::int64_t layer = 0; layer < n_layers; ++layer) {
    std::copy_n(k_cache_.get() + layer * layer_stride_, live,
                snap.k.data() + layer * live);
    std::copy_n(v_cache_.get() + layer * layer_stride_, live,
                snap.v.data() + layer * live);
  }
  return snap;
}

void InferenceSession::restore(const Snapshot& snap) {
  const auto& config = model_.config();
  CA_CHECK(snap.position >= 0 && snap.position <= config.max_seq_len,
           "snapshot position " << snap.position << " out of range");
  const std::int64_t live = snap.position * kv_dim_;
  CA_CHECK(static_cast<std::int64_t>(snap.k.size()) ==
                   config.n_layers * live &&
               snap.k.size() == snap.v.size(),
           "snapshot cache size does not match this model");
  for (std::int64_t layer = 0; layer < config.n_layers; ++layer) {
    std::copy_n(snap.k.data() + layer * live, live,
                k_cache_.get() + layer * layer_stride_);
    std::copy_n(snap.v.data() + layer * live, live,
                v_cache_.get() + layer * layer_stride_);
  }
  position_ = snap.position;
}

const std::vector<float>& InferenceSession::step(TokenId token) {
  const auto& config = model_.config();
  CA_CHECK(position_ < config.max_seq_len,
           "KV cache full at position " << position_);
  CA_CHECK(token >= 0 && token < config.vocab_size,
           "token id " << token << " out of vocab");

  const std::int64_t d = config.d_model;
  const std::int64_t hd = config.head_dim();
  const std::int64_t n_heads = config.n_heads;
  const std::int64_t n_kv = config.n_kv_heads;
  const std::int64_t group = n_heads / n_kv;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
  const std::int64_t pos = position_;

  const auto embed_row = model_.embed().value.row(token);
  std::copy(embed_row.begin(), embed_row.end(), x_.begin());

  for (std::size_t layer = 0; layer < model_.blocks().size(); ++layer) {
    const TransformerBlock& block = model_.blocks()[layer];
    float* layer_k = k_cache_.get() + layer * layer_stride_;
    float* layer_v = v_cache_.get() + layer * layer_stride_;
    float* k_new = layer_k + pos * kv_dim_;
    float* v_new = layer_v + pos * kv_dim_;

    rmsnorm_row(x_, block.input_norm.value.values(), config.norm_eps, normed_);
    matvec(block.q_proj.value, normed_, q_);
    matvec(block.k_proj.value, normed_,
           std::span<float>(k_new, static_cast<std::size_t>(kv_dim_)));
    matvec(block.v_proj.value, normed_,
           std::span<float>(v_new, static_cast<std::size_t>(kv_dim_)));

    for (std::int64_t h = 0; h < n_heads; ++h) {
      model_.rotary().apply(
          std::span<float>(q_.data() + h * hd, static_cast<std::size_t>(hd)),
              pos);
    }
    for (std::int64_t h = 0; h < n_kv; ++h) {
      model_.rotary().apply(
          std::span<float>(k_new + h * hd, static_cast<std::size_t>(hd)), pos);
    }

    std::fill(att_.begin(), att_.end(), 0.0F);
    for (std::int64_t h = 0; h < n_heads; ++h) {
      const std::int64_t kvh = h / group;
      const float* q_h = q_.data() + h * hd;
      for (std::int64_t j = 0; j <= pos; ++j) {
        const float* k_j = layer_k + j * kv_dim_ + kvh * hd;
        scores_[static_cast<std::size_t>(j)] =
            static_cast<float>(
                kernels::dot(q_h, k_j, static_cast<std::size_t>(hd))) *
            scale;
      }
      ops::softmax_inplace(
          std::span<float>(scores_.data(), static_cast<std::size_t>(pos + 1)));
      float* att_h = att_.data() + h * hd;
      for (std::int64_t j = 0; j <= pos; ++j) {
        const float p = scores_[static_cast<std::size_t>(j)];
        const float* v_j = layer_v + j * kv_dim_ + kvh * hd;
        kernels::axpy(p, v_j, att_h, static_cast<std::size_t>(hd));
      }
    }

    matvec(block.o_proj.value, att_, proj_);
    for (std::int64_t i = 0; i < d; ++i) {
      x_[static_cast<std::size_t>(i)] += proj_[static_cast<std::size_t>(i)];
    }

    rmsnorm_row(x_, block.post_norm.value.values(), config.norm_eps, normed_);
    matvec(block.gate_proj.value, normed_, gate_);
    matvec(block.up_proj.value, normed_, up_);
    for (std::size_t i = 0; i < gate_.size(); ++i) {
      gate_[i] = gate_[i] * sigmoid(gate_[i]) * up_[i];
    }
    matvec(block.down_proj.value, gate_, proj_);
    for (std::int64_t i = 0; i < d; ++i) {
      x_[static_cast<std::size_t>(i)] += proj_[static_cast<std::size_t>(i)];
    }
  }

  rmsnorm_row(x_, model_.final_norm().value.values(), config.norm_eps,
              normed_);
  // The [vocab, d] tied LM head dominates per-token cost; parallel_matvec
  // shards its output rows across the pool.
  matvec(model_.embed().value, normed_, logits_);
  ++position_;
  return logits_;
}

std::vector<float> InferenceSession::prefill(
    const std::vector<TokenId>& tokens) {
  CA_CHECK(!tokens.empty(), "prefill on empty prompt");
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) step(tokens[i]);
  return step(tokens.back());
}

std::int64_t sample_from_probs(std::span<const float> probs, double u) {
  CA_CHECK(!probs.empty(), "sample_from_probs on empty distribution");
  // Renormalized CDF: scale the uniform draw by the actual probability mass
  // so rounding in the running sum cannot push the threshold past the total
  // and silently select the final index (the pre-fix failure mode when
  // softmax output summed to slightly less than 1).
  double total = 0.0;
  for (const float p : probs) total += p;
  CA_CHECK(total > 0.0 && std::isfinite(total),
           "sample_from_probs needs positive finite mass");
  const double threshold = u * total;
  double cum = 0.0;
  std::int64_t last_nonzero = -1;
  for (std::size_t t = 0; t < probs.size(); ++t) {
    if (probs[t] <= 0.0F) continue;
    last_nonzero = static_cast<std::int64_t>(t);
    cum += probs[t];
    if (threshold < cum) return last_nonzero;
  }
  // Rounding residue at the very top of the CDF: clamp to the last index
  // that actually carries probability.
  return last_nonzero;
}

std::string generate(const TransformerModel& model, std::string_view prompt,
                     const GenerateOptions& options, bool stop_at_newline) {
  const CharTokenizer& tok = tokenizer();
  std::vector<TokenId> prompt_tokens = tok.encode(prompt, /*add_bos=*/true);
  const std::int64_t budget = model.config().max_seq_len -
                              static_cast<std::int64_t>(prompt_tokens.size());
  CA_CHECK(budget > 0, "prompt fills the whole context window");

  InferenceSession session(model);
  std::vector<float> logits = session.prefill(prompt_tokens);

  Rng rng(options.seed);
  const TokenId newline_id = tok.char_to_id('\n');
  std::vector<TokenId> generated;
  const std::int64_t max_new = std::min<std::int64_t>(options.max_new_tokens,
                                                      budget);
  for (std::int64_t i = 0; i < max_new; ++i) {
    TokenId next;
    if (options.temperature <= 0.0) {
      next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(logits.data(), logits.size())));
    } else {
      std::vector<float> probs = logits;
      const auto inv_temp = static_cast<float>(1.0 / options.temperature);
      for (float& v : probs) v *= inv_temp;
      ops::softmax_inplace(std::span<float>(probs.data(), probs.size()));
      next = static_cast<TokenId>(sample_from_probs(
          std::span<const float>(probs.data(), probs.size()), rng.uniform()));
    }
    if (next == CharTokenizer::kEos) break;
    if (stop_at_newline && next == newline_id) break;
    generated.push_back(next);
    logits = session.step(next);
  }
  return tok.decode(generated);
}

double continuation_logprob(InferenceSession& session,
                            std::span<const float> logits,
                            const std::vector<TokenId>& continuation) {
  CA_CHECK(!continuation.empty(),
           "continuation_logprob requires non-empty continuation");
  double total = 0.0;
  std::span<const float> row = logits;
  for (std::size_t i = 0; i < continuation.size(); ++i) {
    const double lse = ops::log_sum_exp(row);
    total +=
        static_cast<double>(row[static_cast<std::size_t>(continuation[i])]) -
        lse;
    if (i + 1 < continuation.size()) row = session.step(continuation[i]);
  }
  return total;
}

double sequence_logprob(const TransformerModel& model,
                        const std::vector<TokenId>& context,
                        const std::vector<TokenId>& continuation) {
  CA_CHECK(!context.empty(), "sequence_logprob requires non-empty context");
  InferenceSession session(model);
  // Feed the context; the logits after its last token predict continuation[0].
  const std::vector<float> logits = session.prefill(context);
  return continuation_logprob(session, logits, continuation);
}

double mean_logprob(const TransformerModel& model,
                    const std::vector<TokenId>& context,
                    const std::vector<TokenId>& continuation) {
  return sequence_logprob(model, context, continuation) /
         static_cast<double>(continuation.size());
}

}  // namespace chipalign
