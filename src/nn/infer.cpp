#include "nn/infer.hpp"

#include <cmath>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

namespace {

/// y = W x with W [out, in] row-major.
void matvec(const Tensor& w, std::span<const float> x, std::span<float> y) {
  const std::int64_t out_dim = w.dim(0);
  const std::int64_t in_dim = w.dim(1);
  CA_CHECK(static_cast<std::int64_t>(x.size()) == in_dim, "matvec input size");
  CA_CHECK(static_cast<std::int64_t>(y.size()) == out_dim,
           "matvec output size");
  for (std::int64_t o = 0; o < out_dim; ++o) {
    const float* w_row = w.data() + o * in_dim;
    double acc = 0.0;
    for (std::int64_t i = 0; i < in_dim; ++i) {
      acc += static_cast<double>(w_row[i]) * x[static_cast<std::size_t>(i)];
    }
    y[static_cast<std::size_t>(o)] = static_cast<float>(acc);
  }
}

void rmsnorm_row(std::span<const float> x, std::span<const float> gain,
                 double eps, std::span<float> y) {
  double mean_sq = 0.0;
  for (float v : x) mean_sq += static_cast<double>(v) * v;
  mean_sq /= static_cast<double>(x.size());
  const auto r = static_cast<float>(1.0 / std::sqrt(mean_sq + eps));
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * r * gain[i];
}

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

}  // namespace

InferenceSession::InferenceSession(const TransformerModel& model)
    : model_(model) {
  const auto& config = model_.config();
  const std::size_t cache_floats = static_cast<std::size_t>(
      config.max_seq_len * config.n_kv_heads * config.head_dim());
  k_cache_.assign(static_cast<std::size_t>(config.n_layers),
                  std::vector<float>(cache_floats, 0.0F));
  v_cache_ = k_cache_;
}

void InferenceSession::reset() {
  position_ = 0;
  for (auto& layer : k_cache_) std::fill(layer.begin(), layer.end(), 0.0F);
  for (auto& layer : v_cache_) std::fill(layer.begin(), layer.end(), 0.0F);
}

std::vector<float> InferenceSession::step(TokenId token) {
  const auto& config = model_.config();
  CA_CHECK(position_ < config.max_seq_len,
           "KV cache full at position " << position_);
  CA_CHECK(token >= 0 && token < config.vocab_size,
           "token id " << token << " out of vocab");

  const std::int64_t d = config.d_model;
  const std::int64_t hd = config.head_dim();
  const std::int64_t n_heads = config.n_heads;
  const std::int64_t n_kv = config.n_kv_heads;
  const std::int64_t group = n_heads / n_kv;
  const std::int64_t kv_dim = n_kv * hd;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
  const std::int64_t pos = position_;

  std::vector<float> x(model_.embed().value.row(token).begin(),
                       model_.embed().value.row(token).end());
  std::vector<float> normed(static_cast<std::size_t>(d));
  std::vector<float> q(static_cast<std::size_t>(d));
  std::vector<float> att(static_cast<std::size_t>(d));
  std::vector<float> proj(static_cast<std::size_t>(d));
  std::vector<float> gate(static_cast<std::size_t>(config.d_ff));
  std::vector<float> up(static_cast<std::size_t>(config.d_ff));
  std::vector<float> scores(static_cast<std::size_t>(pos + 1));

  for (std::size_t layer = 0; layer < model_.blocks().size(); ++layer) {
    const TransformerBlock& block = model_.blocks()[layer];
    float* k_new = k_cache_[layer].data() + pos * kv_dim;
    float* v_new = v_cache_[layer].data() + pos * kv_dim;

    rmsnorm_row(x, block.input_norm.value.values(), config.norm_eps, normed);
    matvec(block.q_proj.value, normed, q);
    matvec(block.k_proj.value, normed,
           std::span<float>(k_new, static_cast<std::size_t>(kv_dim)));
    matvec(block.v_proj.value, normed,
           std::span<float>(v_new, static_cast<std::size_t>(kv_dim)));

    for (std::int64_t h = 0; h < n_heads; ++h) {
      model_.rotary().apply(
          std::span<float>(q.data() + h * hd, static_cast<std::size_t>(hd)),
              pos);
    }
    for (std::int64_t h = 0; h < n_kv; ++h) {
      model_.rotary().apply(
          std::span<float>(k_new + h * hd, static_cast<std::size_t>(hd)), pos);
    }

    std::fill(att.begin(), att.end(), 0.0F);
    for (std::int64_t h = 0; h < n_heads; ++h) {
      const std::int64_t kvh = h / group;
      const float* q_h = q.data() + h * hd;
      for (std::int64_t j = 0; j <= pos; ++j) {
        const float* k_j = k_cache_[layer].data() + j * kv_dim + kvh * hd;
        double acc = 0.0;
        for (std::int64_t u = 0; u < hd; ++u) {
          acc += static_cast<double>(q_h[u]) * k_j[u];
        }
        scores[static_cast<std::size_t>(j)] = static_cast<float>(acc) * scale;
      }
      ops::softmax_inplace(
          std::span<float>(scores.data(), static_cast<std::size_t>(pos + 1)));
      float* att_h = att.data() + h * hd;
      for (std::int64_t j = 0; j <= pos; ++j) {
        const float p = scores[static_cast<std::size_t>(j)];
        const float* v_j = v_cache_[layer].data() + j * kv_dim + kvh * hd;
        for (std::int64_t u = 0; u < hd; ++u) att_h[u] += p * v_j[u];
      }
    }

    matvec(block.o_proj.value, att, proj);
    for (std::int64_t i = 0; i < d; ++i) {
      x[static_cast<std::size_t>(i)] += proj[static_cast<std::size_t>(i)];
    }

    rmsnorm_row(x, block.post_norm.value.values(), config.norm_eps, normed);
    matvec(block.gate_proj.value, normed, gate);
    matvec(block.up_proj.value, normed, up);
    for (std::size_t i = 0; i < gate.size(); ++i) {
      gate[i] = gate[i] * sigmoid(gate[i]) * up[i];
    }
    matvec(block.down_proj.value, gate, proj);
    for (std::int64_t i = 0; i < d; ++i) {
      x[static_cast<std::size_t>(i)] += proj[static_cast<std::size_t>(i)];
    }
  }

  rmsnorm_row(x, model_.final_norm().value.values(), config.norm_eps, normed);
  std::vector<float> logits(static_cast<std::size_t>(config.vocab_size));
  matvec(model_.embed().value, normed, logits);
  ++position_;
  return logits;
}

std::vector<float> InferenceSession::prefill(
    const std::vector<TokenId>& tokens) {
  CA_CHECK(!tokens.empty(), "prefill on empty prompt");
  std::vector<float> logits;
  for (TokenId token : tokens) logits = step(token);
  return logits;
}

std::string generate(const TransformerModel& model, std::string_view prompt,
                     const GenerateOptions& options, bool stop_at_newline) {
  const CharTokenizer& tok = tokenizer();
  std::vector<TokenId> prompt_tokens = tok.encode(prompt, /*add_bos=*/true);
  const std::int64_t budget = model.config().max_seq_len -
                              static_cast<std::int64_t>(prompt_tokens.size());
  CA_CHECK(budget > 0, "prompt fills the whole context window");

  InferenceSession session(model);
  std::vector<float> logits = session.prefill(prompt_tokens);

  Rng rng(options.seed);
  const TokenId newline_id = tok.char_to_id('\n');
  std::vector<TokenId> generated;
  const std::int64_t max_new = std::min<std::int64_t>(options.max_new_tokens,
                                                      budget);
  for (std::int64_t i = 0; i < max_new; ++i) {
    TokenId next;
    if (options.temperature <= 0.0) {
      next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(logits.data(), logits.size())));
    } else {
      std::vector<float> probs = logits;
      const auto inv_temp = static_cast<float>(1.0 / options.temperature);
      for (float& v : probs) v *= inv_temp;
      ops::softmax_inplace(std::span<float>(probs.data(), probs.size()));
      double u = rng.uniform();
      next = static_cast<TokenId>(probs.size() - 1);
      for (std::size_t t = 0; t < probs.size(); ++t) {
        u -= probs[t];
        if (u <= 0.0) {
          next = static_cast<TokenId>(t);
          break;
        }
      }
    }
    if (next == CharTokenizer::kEos) break;
    if (stop_at_newline && next == newline_id) break;
    generated.push_back(next);
    logits = session.step(next);
  }
  return tok.decode(generated);
}

double sequence_logprob(const TransformerModel& model,
                        const std::vector<TokenId>& context,
                        const std::vector<TokenId>& continuation) {
  CA_CHECK(!context.empty(), "sequence_logprob requires non-empty context");
  CA_CHECK(!continuation.empty(),
           "sequence_logprob requires non-empty continuation");
  InferenceSession session(model);
  // Feed the context; the logits after its last token predict continuation[0].
  std::vector<float> logits = session.prefill(context);
  double total = 0.0;
  for (std::size_t i = 0; i < continuation.size(); ++i) {
    const double lse =
        ops::log_sum_exp(std::span<const float>(logits.data(), logits.size()));
    total += static_cast<double>(
                 logits[static_cast<std::size_t>(continuation[i])]) -
             lse;
    if (i + 1 < continuation.size()) logits = session.step(continuation[i]);
  }
  return total;
}

double mean_logprob(const TransformerModel& model,
                    const std::vector<TokenId>& context,
                    const std::vector<TokenId>& continuation) {
  return sequence_logprob(model, context, continuation) /
         static_cast<double>(continuation.size());
}

}  // namespace chipalign
