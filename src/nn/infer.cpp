#include "nn/infer.hpp"

#include <algorithm>
#include <cmath>

#include "nn/spec_decode.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

InferenceSession::InferenceSession(const TransformerModel& model)
    : model_(model),
      state_(model.config(), model.config().max_seq_len),
      scratch_(model.config(), /*max_batch=*/1) {
  logits_.resize(static_cast<std::size_t>(model.config().vocab_size));
}

void InferenceSession::reset() { state_.position = 0; }

InferenceSession::Snapshot InferenceSession::snapshot() const {
  Snapshot snap;
  snap.position = state_.position;
  snap.n_layers = state_.n_layers;
  snap.kv_dim = state_.kv_dim;
  const std::int64_t live = state_.position * state_.kv_dim;
  snap.k.resize(static_cast<std::size_t>(state_.n_layers * live));
  snap.v.resize(static_cast<std::size_t>(state_.n_layers * live));
  for (std::int64_t layer = 0; layer < state_.n_layers; ++layer) {
    std::copy_n(state_.k_at(layer, 0), live, snap.k.data() + layer * live);
    std::copy_n(state_.v_at(layer, 0), live, snap.v.data() + layer * live);
  }
  return snap;
}

void InferenceSession::restore(const Snapshot& snap) {
  CA_CHECK(snap.position >= 0 && snap.position <= state_.capacity,
           "snapshot position " << snap.position
                                << " exceeds session KV capacity "
                                << state_.capacity);
  CA_CHECK(snap.n_layers == state_.n_layers && snap.kv_dim == state_.kv_dim,
           "snapshot geometry (n_layers "
               << snap.n_layers << ", kv_dim " << snap.kv_dim
               << ") was taken over a different model than this session's "
                  "(n_layers "
               << state_.n_layers << ", kv_dim " << state_.kv_dim << ")");
  const std::int64_t live = snap.position * state_.kv_dim;
  CA_CHECK(static_cast<std::int64_t>(snap.k.size()) ==
                   state_.n_layers * live &&
               snap.k.size() == snap.v.size(),
           "snapshot cache holds " << snap.k.size() << " floats, expected "
                                   << state_.n_layers * live
                                   << " for position " << snap.position);
  for (std::int64_t layer = 0; layer < state_.n_layers; ++layer) {
    std::copy_n(snap.k.data() + layer * live, live, state_.k_at(layer, 0));
    std::copy_n(snap.v.data() + layer * live, live, state_.v_at(layer, 0));
  }
  state_.position = snap.position;
}

const std::vector<float>& InferenceSession::step(TokenId token) {
  decode_step(model_, state_, scratch_, token,
              std::span<float>(logits_.data(), logits_.size()));
  return logits_;
}

std::span<const float> InferenceSession::verify(
    std::span<const TokenId> tokens) {
  const auto block_len = static_cast<std::int64_t>(tokens.size());
  CA_CHECK(block_len > 0, "verify on empty token block");
  DecodeScratch* scratch = &scratch_;
  if (block_len > 1) {
    if (verify_scratch_ == nullptr || verify_scratch_->max_batch < block_len) {
      verify_scratch_ =
          std::make_unique<DecodeScratch>(model_.config(), block_len);
    }
    scratch = verify_scratch_.get();
  }
  verify_logits_.resize(static_cast<std::size_t>(
      block_len * model_.config().vocab_size));
  verify_step(model_, state_, *scratch, tokens,
              std::span<float>(verify_logits_.data(), verify_logits_.size()));
  return std::span<const float>(verify_logits_.data(), verify_logits_.size());
}

void InferenceSession::truncate(std::int64_t pos) { state_.truncate(pos); }

std::vector<float> InferenceSession::prefill(
    const std::vector<TokenId>& tokens) {
  CA_CHECK(!tokens.empty(), "prefill on empty prompt");
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) step(tokens[i]);
  return step(tokens.back());
}

std::int64_t sample_from_probs(std::span<const float> probs, double u) {
  CA_CHECK(!probs.empty(), "sample_from_probs on empty distribution");
  // Renormalized CDF: scale the uniform draw by the actual probability mass
  // so rounding in the running sum cannot push the threshold past the total
  // and silently select the final index (the pre-fix failure mode when
  // softmax output summed to slightly less than 1).
  double total = 0.0;
  for (const float p : probs) total += p;
  CA_CHECK(total > 0.0 && std::isfinite(total),
           "sample_from_probs needs positive finite mass");
  const double threshold = u * total;
  double cum = 0.0;
  std::int64_t last_nonzero = -1;
  for (std::size_t t = 0; t < probs.size(); ++t) {
    if (probs[t] <= 0.0F) continue;
    last_nonzero = static_cast<std::int64_t>(t);
    cum += probs[t];
    if (threshold < cum) return last_nonzero;
  }
  // Rounding residue at the very top of the CDF: clamp to the last index
  // that actually carries probability.
  return last_nonzero;
}

std::string generate(const TransformerModel& model, std::string_view prompt,
                     const GenerateOptions& options, bool stop_at_newline) {
  if (options.speculative && options.temperature <= 0.0) {
    return speculative_generate(model, prompt, options, stop_at_newline);
  }
  const CharTokenizer& tok = tokenizer();
  std::vector<TokenId> prompt_tokens = tok.encode(prompt, /*add_bos=*/true);
  const std::int64_t budget = model.config().max_seq_len -
                              static_cast<std::int64_t>(prompt_tokens.size());
  CA_CHECK(budget > 0, "prompt fills the whole context window");

  InferenceSession session(model);
  std::vector<float> logits = session.prefill(prompt_tokens);

  Rng rng(options.seed);
  const TokenId newline_id = tok.char_to_id('\n');
  std::vector<TokenId> generated;
  const std::int64_t max_new = std::min<std::int64_t>(options.max_new_tokens,
                                                      budget);
  for (std::int64_t i = 0; i < max_new; ++i) {
    TokenId next;
    if (options.temperature <= 0.0) {
      next = static_cast<TokenId>(
          ops::argmax(std::span<const float>(logits.data(), logits.size())));
    } else {
      std::vector<float> probs = logits;
      const auto inv_temp = static_cast<float>(1.0 / options.temperature);
      for (float& v : probs) v *= inv_temp;
      ops::softmax_inplace(std::span<float>(probs.data(), probs.size()));
      next = static_cast<TokenId>(sample_from_probs(
          std::span<const float>(probs.data(), probs.size()), rng.uniform()));
    }
    if (next == CharTokenizer::kEos) break;
    if (stop_at_newline && next == newline_id) break;
    generated.push_back(next);
    logits = session.step(next);
  }
  return tok.decode(generated);
}

double continuation_logprob(InferenceSession& session,
                            std::span<const float> logits,
                            const std::vector<TokenId>& continuation) {
  CA_CHECK(!continuation.empty(),
           "continuation_logprob requires non-empty continuation");
  double total = 0.0;
  std::span<const float> row = logits;
  for (std::size_t i = 0; i < continuation.size(); ++i) {
    const double lse = ops::log_sum_exp(row);
    total +=
        static_cast<double>(row[static_cast<std::size_t>(continuation[i])]) -
        lse;
    if (i + 1 < continuation.size()) row = session.step(continuation[i]);
  }
  return total;
}

double sequence_logprob(const TransformerModel& model,
                        const std::vector<TokenId>& context,
                        const std::vector<TokenId>& continuation) {
  CA_CHECK(!context.empty(), "sequence_logprob requires non-empty context");
  InferenceSession session(model);
  // Feed the context; the logits after its last token predict continuation[0].
  const std::vector<float> logits = session.prefill(context);
  return continuation_logprob(session, logits, continuation);
}

double mean_logprob(const TransformerModel& model,
                    const std::vector<TokenId>& context,
                    const std::vector<TokenId>& continuation) {
  return sequence_logprob(model, context, continuation) /
         static_cast<double>(continuation.size());
}

}  // namespace chipalign
