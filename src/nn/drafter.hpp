#pragma once
/// \file drafter.hpp
/// \brief Draft-token proposers for speculative decoding.
///
/// A Drafter guesses the next few tokens of a sequence so the target model
/// can verify the whole guess in one multi-token verify_step() instead of
/// one pass per token (nn/decode.hpp). Correctness never depends on the
/// drafter: greedy acceptance (nn/spec_decode.hpp) compares each drafted
/// token against the target model's own argmax, so a bad drafter only costs
/// speed. Drafters therefore don't have to be deterministic for output
/// determinism — but both implementations here are, which keeps end-to-end
/// runs bitwise reproducible in wall-clock too.
///
/// PromptLookupDrafter is the zero-cost default: chip-design QA answers
/// copy long spans from the prompt (retrieved context, signal names, code),
/// so matching the last n-gram of the generated suffix against the earlier
/// context and proposing the tokens that followed it gets long accepted
/// runs with no second model at all. SelfSpeculativeDrafter runs the target
/// model's own int8-quantized weights as a cheap draft pass — a real draft
/// model with guaranteed vocabulary/tokenizer agreement and ~4x smaller
/// weight traffic.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/decode.hpp"
#include "nn/session_state.hpp"
#include "nn/transformer.hpp"

namespace chipalign {

/// Proposes up to `max_tokens` continuation tokens for `context` (every
/// token consumed so far: prompt + generated, in order). Returns how many
/// tokens were written to the front of `out` (0 = no proposal; the caller
/// falls back to plain one-token decode). out.size() >= max_tokens.
class Drafter {
 public:
  virtual ~Drafter() = default;
  virtual std::size_t draft(std::span<const TokenId> context,
                            std::size_t max_tokens,
                            std::span<TokenId> out) = 0;
  /// Forgets any per-sequence state; call between independent sequences.
  virtual void reset() {}
};

/// Prompt-lookup (n-gram) drafting: find the most recent earlier occurrence
/// of the longest matching suffix n-gram (n from ngram_max down to
/// ngram_min) and propose the tokens that followed it, extending the
/// continuation cyclically when it reaches the end of the context (a suffix
/// repeating with period p predicts the next tokens with the same period).
/// O(n * len) scan per call, no model, no allocation. Stateless across
/// calls.
class PromptLookupDrafter : public Drafter {
 public:
  explicit PromptLookupDrafter(std::int64_t ngram_min = 1,
                               std::int64_t ngram_max = 3);

  std::size_t draft(std::span<const TokenId> context, std::size_t max_tokens,
                    std::span<TokenId> out) override;

 private:
  std::int64_t ngram_min_;
  std::int64_t ngram_max_;
};

/// Self-speculative drafting: greedy decode on an int8-quantized copy of
/// the target model. Keeps its own KV session across calls and rewinds to
/// the longest common prefix when the caller's context diverges from what
/// was previously fed (rejected drafts), so each call costs one decode step
/// per *new* context token plus one per proposed token.
class SelfSpeculativeDrafter : public Drafter {
 public:
  /// Builds the draft model by round-tripping the target's weights through
  /// a checkpoint (dequantizing if the target is already quantized) and
  /// quantizing the copy to int8.
  explicit SelfSpeculativeDrafter(const TransformerModel& target);

  std::size_t draft(std::span<const TokenId> context, std::size_t max_tokens,
                    std::span<TokenId> out) override;
  void reset() override;

 private:
  TransformerModel draft_model_;
  SessionState state_;
  DecodeScratch scratch_;
  std::vector<float> logits_;
  std::vector<TokenId> fed_;  ///< tokens the draft session has consumed
};

}  // namespace chipalign
