#include "nn/rotary.hpp"

#include <cmath>

#include "util/error.hpp"

namespace chipalign {

RotaryCache::RotaryCache(std::int64_t head_dim, std::int64_t max_seq_len,
                         double theta)
    : head_dim_(head_dim), max_seq_len_(max_seq_len) {
  CA_CHECK(head_dim > 0 && head_dim % 2 == 0, "RoPE head_dim must be even");
  CA_CHECK(max_seq_len > 0, "RoPE max_seq_len must be positive");
  CA_CHECK(theta > 0.0, "RoPE theta must be positive");

  const std::int64_t half = head_dim / 2;
  cos_.resize(static_cast<std::size_t>(max_seq_len * half));
  sin_.resize(static_cast<std::size_t>(max_seq_len * half));
  for (std::int64_t pos = 0; pos < max_seq_len; ++pos) {
    for (std::int64_t u = 0; u < half; ++u) {
      const double freq = std::pow(
          theta, -2.0 * static_cast<double>(u) / static_cast<double>(head_dim));
      const double angle = static_cast<double>(pos) * freq;
      cos_[static_cast<std::size_t>(pos * half + u)] =
          static_cast<float>(std::cos(angle));
      sin_[static_cast<std::size_t>(pos * half + u)] =
          static_cast<float>(std::sin(angle));
    }
  }
}

void RotaryCache::apply(std::span<float> head_vec, std::int64_t pos) const {
  CA_CHECK(static_cast<std::int64_t>(head_vec.size()) == head_dim_,
           "RoPE vector length " << head_vec.size() << " != head_dim "
               << head_dim_);
  CA_CHECK(pos >= 0 && pos < max_seq_len_, "RoPE position " << pos
           << " out of range");
  const std::int64_t half = head_dim_ / 2;
  const float* c = cos_.data() + pos * half;
  const float* s = sin_.data() + pos * half;
  for (std::int64_t u = 0; u < half; ++u) {
    const float x0 = head_vec[static_cast<std::size_t>(2 * u)];
    const float x1 = head_vec[static_cast<std::size_t>(2 * u + 1)];
    head_vec[static_cast<std::size_t>(2 * u)] = x0 * c[u] - x1 * s[u];
    head_vec[static_cast<std::size_t>(2 * u + 1)] = x0 * s[u] + x1 * c[u];
  }
}

void RotaryCache::apply_inverse(std::span<float> head_vec,
                                std::int64_t pos) const {
  CA_CHECK(static_cast<std::int64_t>(head_vec.size()) == head_dim_,
           "RoPE vector length " << head_vec.size() << " != head_dim "
               << head_dim_);
  CA_CHECK(pos >= 0 && pos < max_seq_len_, "RoPE position " << pos
           << " out of range");
  const std::int64_t half = head_dim_ / 2;
  const float* c = cos_.data() + pos * half;
  const float* s = sin_.data() + pos * half;
  for (std::int64_t u = 0; u < half; ++u) {
    const float x0 = head_vec[static_cast<std::size_t>(2 * u)];
    const float x1 = head_vec[static_cast<std::size_t>(2 * u + 1)];
    head_vec[static_cast<std::size_t>(2 * u)] = x0 * c[u] + x1 * s[u];
    head_vec[static_cast<std::size_t>(2 * u + 1)] = -x0 * s[u] + x1 * c[u];
  }
}

}  // namespace chipalign
