#include "nn/decode.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/kernels.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

namespace {

/// y = W x with W [out, in] row-major, on the kernel layer: every output
/// row is the contract-reduced dot product, fanned over the global thread
/// pool when large enough (bitwise identical at any pool size). Dispatches
/// on the parameter's storage dtype: quantized weights run the dequantizing
/// kernel variants, which share the fp32 reduction contract.
void project(const Parameter& p, std::span<const float> x,
             std::span<float> y) {
  const std::int64_t out_dim = p.quantized() ? p.qvalue.rows : p.value.dim(0);
  const std::int64_t in_dim = p.quantized() ? p.qvalue.cols : p.value.dim(1);
  CA_CHECK(static_cast<std::int64_t>(x.size()) == in_dim, "matvec input size");
  CA_CHECK(static_cast<std::int64_t>(y.size()) == out_dim,
           "matvec output size");
  if (!p.quantized()) {
    kernels::parallel_matvec(p.value.data(), x.data(), y.data(), out_dim,
                             in_dim);
    return;
  }
  switch (p.qvalue.dtype) {
    case DType::kF16:
      kernels::parallel_matvec_f16(p.qvalue.half.data(), x.data(), y.data(),
                                   out_dim, in_dim);
      return;
    case DType::kBF16:
      kernels::parallel_matvec_bf16(p.qvalue.half.data(), x.data(), y.data(),
                                    out_dim, in_dim);
      return;
    case DType::kI8:
      kernels::parallel_matvec_i8(p.qvalue.q.data(), p.qvalue.scales.data(),
                                  x.data(), y.data(), out_dim, in_dim);
      return;
    default:
      CA_THROW("unsupported weight dtype " << dtype_name(p.qvalue.dtype));
  }
}

/// Copies the embedding row for `token` into x, dequantizing when the
/// embedding is stored quantized (the same per-element reconstruction the
/// tied LM-head matvec applies).
void embed_lookup(const Parameter& embed, TokenId token, std::span<float> x) {
  if (embed.quantized()) {
    dequantize_row(embed.qvalue, token, x.data());
    return;
  }
  const auto row = embed.value.row(token);
  std::copy(row.begin(), row.end(), x.begin());
}

void rmsnorm_row(std::span<const float> x, std::span<const float> gain,
                 double eps, std::span<float> y) {
  double mean_sq = 0.0;
  for (float v : x) mean_sq += static_cast<double>(v) * v;
  mean_sq /= static_cast<double>(x.size());
  const auto r = static_cast<float>(1.0 / std::sqrt(mean_sq + eps));
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * r * gain[i];
}

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

/// gate[i] = gate[i] * sigmoid(gate[i]) * up[i] — the SwiGLU combine,
/// shared by the serial and batched paths so their float ops agree exactly.
void swiglu_row(std::span<float> gate, std::span<const float> up) {
  for (std::size_t i = 0; i < gate.size(); ++i) {
    gate[i] = gate[i] * sigmoid(gate[i]) * up[i];
  }
}

void add_row(std::span<float> x, std::span<const float> delta) {
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += delta[i];
}

/// Causal GQA attention for one session at `pos` in `layer`; k/v for `pos`
/// must already be written (RoPE'd and dtype-converted) into the state's
/// cache. Reads q [d], writes att [d] using scores [>= pos+1] as scratch.
/// Identical code serves the serial and batched paths; an fp16 cache swaps
/// dot/axpy for their exactly-dequantizing fp16 variants.
void attention_row(const TransformerModel& model, const SessionState& state,
                   std::int64_t layer, std::int64_t pos,
                   std::span<const float> q, std::span<float> att,
                   std::span<float> scores) {
  const auto& config = model.config();
  const std::int64_t hd = config.head_dim();
  const std::int64_t n_heads = config.n_heads;
  const std::int64_t group = n_heads / config.n_kv_heads;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
  const bool half_kv = state.kv_dtype == DType::kF16;
  const float* layer_k = half_kv ? nullptr : state.k_at(layer, 0);
  const float* layer_v = half_kv ? nullptr : state.v_at(layer, 0);
  const std::uint16_t* layer_k16 = half_kv ? state.k16_at(layer, 0) : nullptr;
  const std::uint16_t* layer_v16 = half_kv ? state.v16_at(layer, 0) : nullptr;

  std::fill(att.begin(), att.end(), 0.0F);
  for (std::int64_t h = 0; h < n_heads; ++h) {
    const std::int64_t kvh = h / group;
    const float* q_h = q.data() + h * hd;
    const std::int64_t head_off = kvh * hd;
    if (half_kv) {
      ops::attention_scores_f16(q_h, layer_k16 + head_off, state.kv_dim,
                                pos + 1, hd, scale, scores.data());
    } else {
      ops::attention_scores(q_h, layer_k + head_off, state.kv_dim, pos + 1,
                            hd, scale, scores.data());
    }
    ops::softmax_inplace(
        std::span<float>(scores.data(), static_cast<std::size_t>(pos + 1)));
    float* att_h = att.data() + h * hd;
    if (half_kv) {
      ops::attention_mix_f16(scores.data(), layer_v16 + head_off,
                             state.kv_dim, pos + 1, hd, att_h);
    } else {
      ops::attention_mix(scores.data(), layer_v + head_off, state.kv_dim,
                         pos + 1, hd, att_h);
    }
  }
}

void check_step_args(const ModelConfig& config, const SessionState& state,
                     TokenId token) {
  CA_CHECK(state.position < state.capacity,
           "session KV cache full at position " << state.position
                                                << " (capacity "
                                                << state.capacity << ")");
  CA_CHECK(state.kv_dim == config.n_kv_heads * config.head_dim() &&
               state.n_layers == config.n_layers,
           "session state shape (n_layers " << state.n_layers << ", kv_dim "
                                            << state.kv_dim
                                            << ") does not match this model");
  CA_CHECK(token >= 0 && token < config.vocab_size,
           "token id " << token << " out of vocab");
}

/// One projection for the whole batch: c[out, B] = W @ X^T via matmul_nt
/// (each c[o][b] is the contract-reduced dot of W row o and X row b — the
/// exact bits matvec would produce for session b), then transposed into the
/// row-major [B, out] destination. Dispatches on the parameter's storage
/// dtype like project().
void batched_project(const Parameter& p, const float* x, float* y,
                     std::int64_t batch, DecodeScratch& scratch) {
  const std::int64_t out_dim = p.quantized() ? p.qvalue.rows : p.value.dim(0);
  const std::int64_t in_dim = p.quantized() ? p.qvalue.cols : p.value.dim(1);
  float* staged = scratch.nt_out.data();
  if (!p.quantized()) {
    kernels::matmul_nt(p.value.data(), x, staged, out_dim, in_dim, batch);
  } else {
    switch (p.qvalue.dtype) {
      case DType::kF16:
        kernels::matmul_nt_f16(p.qvalue.half.data(), x, staged, out_dim,
                               in_dim, batch);
        break;
      case DType::kBF16:
        kernels::matmul_nt_bf16(p.qvalue.half.data(), x, staged, out_dim,
                                in_dim, batch);
        break;
      case DType::kI8:
        kernels::matmul_nt_i8(p.qvalue.q.data(), p.qvalue.scales.data(), x,
                              staged, out_dim, in_dim, batch);
        break;
      default:
        CA_THROW("unsupported weight dtype " << dtype_name(p.qvalue.dtype));
    }
  }
  for (std::int64_t b = 0; b < batch; ++b) {
    float* y_b = y + b * out_dim;
    for (std::int64_t o = 0; o < out_dim; ++o) y_b[o] = staged[o * batch + b];
  }
}

}  // namespace

DecodeScratch::DecodeScratch(const ModelConfig& config,
                             std::int64_t batch_limit)
    : max_batch(batch_limit) {
  CA_CHECK(max_batch > 0, "DecodeScratch needs max_batch > 0");
  const auto b = static_cast<std::size_t>(max_batch);
  const auto d = static_cast<std::size_t>(config.d_model);
  const auto d_ff = static_cast<std::size_t>(config.d_ff);
  const auto kv =
      static_cast<std::size_t>(config.n_kv_heads * config.head_dim());
  x.resize(b * d);
  normed.resize(b * d);
  q.resize(b * d);
  att.resize(b * d);
  proj.resize(b * d);
  gate.resize(b * d_ff);
  up.resize(b * d_ff);
  k_new.resize(b * kv);
  v_new.resize(b * kv);
  const auto max_out = std::max<std::size_t>(
      {d, d_ff, kv, static_cast<std::size_t>(config.vocab_size)});
  nt_out.resize(max_out * b);
  scores.resize(b * static_cast<std::size_t>(config.max_seq_len));
}

void decode_step(const TransformerModel& model, SessionState& state,
                 DecodeScratch& scratch, TokenId token,
                 std::span<float> logits) {
  const auto& config = model.config();
  check_step_args(config, state, token);
  CA_CHECK(static_cast<std::int64_t>(logits.size()) == config.vocab_size,
           "decode_step logits size");

  const auto d = static_cast<std::size_t>(config.d_model);
  const std::int64_t hd = config.head_dim();
  const std::int64_t pos = state.position;
  const auto kv = static_cast<std::size_t>(state.kv_dim);

  const std::span<float> x(scratch.x.data(), d);
  const std::span<float> normed(scratch.normed.data(), d);
  const std::span<float> q(scratch.q.data(), d);
  const std::span<float> att(scratch.att.data(), d);
  const std::span<float> proj(scratch.proj.data(), d);
  const std::span<float> gate(scratch.gate.data(),
                              static_cast<std::size_t>(config.d_ff));
  const std::span<float> up(scratch.up.data(),
                            static_cast<std::size_t>(config.d_ff));
  const std::span<float> scores(scratch.scores.data(),
                                static_cast<std::size_t>(config.max_seq_len));

  embed_lookup(model.embed(), token, x);

  for (std::size_t layer = 0; layer < model.blocks().size(); ++layer) {
    const TransformerBlock& block = model.blocks()[layer];
    const auto l = static_cast<std::int64_t>(layer);
    // Fresh K/V rows are computed and RoPE'd in fp32 scratch, then stored
    // through the cache's dtype converter (bit copy for an fp32 cache).
    const std::span<float> k_new(scratch.k_new.data(), kv);
    const std::span<float> v_new(scratch.v_new.data(), kv);

    rmsnorm_row(x, block.input_norm.value.values(), config.norm_eps, normed);
    project(block.q_proj, normed, q);
    project(block.k_proj, normed, k_new);
    project(block.v_proj, normed, v_new);

    for (std::int64_t h = 0; h < config.n_heads; ++h) {
      model.rotary().apply(
          std::span<float>(q.data() + h * hd, static_cast<std::size_t>(hd)),
          pos);
    }
    for (std::int64_t h = 0; h < config.n_kv_heads; ++h) {
      model.rotary().apply(
          std::span<float>(k_new.data() + h * hd,
                           static_cast<std::size_t>(hd)),
          pos);
    }
    state.store_k_row(l, pos, k_new.data());
    state.store_v_row(l, pos, v_new.data());

    attention_row(model, state, l, pos, q, att, scores);

    project(block.o_proj, att, proj);
    add_row(x, proj);

    rmsnorm_row(x, block.post_norm.value.values(), config.norm_eps, normed);
    project(block.gate_proj, normed, gate);
    project(block.up_proj, normed, up);
    swiglu_row(gate, up);
    project(block.down_proj, gate, proj);
    add_row(x, proj);
  }

  rmsnorm_row(x, model.final_norm().value.values(), config.norm_eps, normed);
  // The [vocab, d] tied LM head dominates per-token cost; parallel_matvec
  // shards its output rows across the pool.
  project(model.embed(), normed, logits);
  ++state.position;
}

void batched_decode_step(const TransformerModel& model,
                         std::span<SessionState* const> states,
                         std::span<const TokenId> tokens,
                         DecodeScratch& scratch, std::span<float> logits,
                         ThreadPool* pool) {
  const auto& config = model.config();
  const auto batch = static_cast<std::int64_t>(states.size());
  CA_CHECK(batch > 0, "batched_decode_step on empty batch");
  CA_CHECK(batch <= scratch.max_batch,
           "batch " << batch << " exceeds scratch capacity "
                    << scratch.max_batch);
  CA_CHECK(static_cast<std::int64_t>(tokens.size()) == batch,
           "batched_decode_step token count");
  CA_CHECK(static_cast<std::int64_t>(logits.size()) ==
               batch * config.vocab_size,
           "batched_decode_step logits size");
  if (batch == 1) {
    // Single-row batches take the matvec path (identical bits, and
    // parallel_matvec fans the big logits projection over the pool, which
    // a one-row matmul_nt cannot).
    decode_step(model, *states[0], scratch, tokens[0], logits);
    return;
  }
  for (std::int64_t b = 0; b < batch; ++b) {
    check_step_args(config, *states[b], tokens[b]);
    // A session state may appear in at most one row: the per-row KV writes
    // and attention reads assume disjoint caches, and an aliased state would
    // corrupt both rows silently (the serving engine's batch former must
    // never emit duplicates — e.g. when re-forming a batch after a mid-batch
    // cancellation or deadline eviction).
    for (std::int64_t a = 0; a < b; ++a) {
      CA_CHECK(states[a] != states[b],
               "batched_decode_step: session state aliased at rows "
                   << a << " and " << b);
    }
  }

  const auto d = static_cast<std::size_t>(config.d_model);
  const auto d_ff = static_cast<std::size_t>(config.d_ff);
  const std::int64_t hd = config.head_dim();
  const auto kv = static_cast<std::size_t>(config.n_kv_heads * hd);
  const auto seq = static_cast<std::size_t>(config.max_seq_len);
  const auto row_f = [](std::vector<float>& buf, std::int64_t b,
                        std::size_t dim) {
    return std::span<float>(buf.data() + static_cast<std::size_t>(b) * dim,
                            dim);
  };

  for (std::int64_t b = 0; b < batch; ++b) {
    embed_lookup(model.embed(), tokens[b], row_f(scratch.x, b, d));
  }

  // Per-session work (KV write, RoPE, attention) is independent across the
  // batch and writes disjoint rows, so fanning it over the pool changes
  // nothing but wall-clock.
  const auto for_each_row = [&](const std::function<void(std::size_t)>& fn) {
    if (pool != nullptr && batch > 1) {
      pool->parallel_for(static_cast<std::size_t>(batch), fn);
    } else {
      for (std::int64_t b = 0; b < batch; ++b) {
        fn(static_cast<std::size_t>(b));
      }
    }
  };

  for (std::size_t layer = 0; layer < model.blocks().size(); ++layer) {
    const TransformerBlock& block = model.blocks()[layer];

    for (std::int64_t b = 0; b < batch; ++b) {
      rmsnorm_row(row_f(scratch.x, b, d), block.input_norm.value.values(),
                  config.norm_eps, row_f(scratch.normed, b, d));
    }
    batched_project(block.q_proj, scratch.normed.data(), scratch.q.data(),
                    batch, scratch);
    batched_project(block.k_proj, scratch.normed.data(),
                    scratch.k_new.data(), batch, scratch);
    batched_project(block.v_proj, scratch.normed.data(),
                    scratch.v_new.data(), batch, scratch);

    for_each_row([&](std::size_t bi) {
      const auto b = static_cast<std::int64_t>(bi);
      SessionState& state = *states[b];
      const std::int64_t pos = state.position;
      const std::int64_t l = static_cast<std::int64_t>(layer);
      float* k_new = scratch.k_new.data() + bi * kv;
      const std::span<float> q = row_f(scratch.q, b, d);
      for (std::int64_t h = 0; h < config.n_heads; ++h) {
        model.rotary().apply(
            std::span<float>(q.data() + h * hd, static_cast<std::size_t>(hd)),
            pos);
      }
      for (std::int64_t h = 0; h < config.n_kv_heads; ++h) {
        model.rotary().apply(
            std::span<float>(k_new + h * hd, static_cast<std::size_t>(hd)),
            pos);
      }
      state.store_k_row(l, pos, k_new);
      state.store_v_row(l, pos, scratch.v_new.data() + bi * kv);
      attention_row(model, state, l, pos, q, row_f(scratch.att, b, d),
                    row_f(scratch.scores, b, seq));
    });

    batched_project(block.o_proj, scratch.att.data(), scratch.proj.data(),
                    batch, scratch);
    for (std::int64_t b = 0; b < batch; ++b) {
      add_row(row_f(scratch.x, b, d), row_f(scratch.proj, b, d));
    }

    for (std::int64_t b = 0; b < batch; ++b) {
      rmsnorm_row(row_f(scratch.x, b, d), block.post_norm.value.values(),
                  config.norm_eps, row_f(scratch.normed, b, d));
    }
    batched_project(block.gate_proj, scratch.normed.data(),
                    scratch.gate.data(), batch, scratch);
    batched_project(block.up_proj, scratch.normed.data(), scratch.up.data(),
                    batch, scratch);
    for (std::int64_t b = 0; b < batch; ++b) {
      swiglu_row(row_f(scratch.gate, b, d_ff), row_f(scratch.up, b, d_ff));
    }
    batched_project(block.down_proj, scratch.gate.data(),
                    scratch.proj.data(), batch, scratch);
    for (std::int64_t b = 0; b < batch; ++b) {
      add_row(row_f(scratch.x, b, d), row_f(scratch.proj, b, d));
    }
  }

  for (std::int64_t b = 0; b < batch; ++b) {
    rmsnorm_row(row_f(scratch.x, b, d), model.final_norm().value.values(),
                config.norm_eps, row_f(scratch.normed, b, d));
  }
  batched_project(model.embed(), scratch.normed.data(), logits.data(), batch,
                  scratch);
  for (std::int64_t b = 0; b < batch; ++b) ++states[b]->position;
}

void verify_step(const TransformerModel& model, SessionState& state,
                 DecodeScratch& scratch, std::span<const TokenId> tokens,
                 std::span<float> logits, ThreadPool* pool) {
  const auto& config = model.config();
  const auto block_len = static_cast<std::int64_t>(tokens.size());
  CA_CHECK(block_len > 0, "verify_step on empty token block");
  CA_CHECK(block_len <= scratch.max_batch,
           "verify block " << block_len << " exceeds scratch capacity "
                           << scratch.max_batch);
  CA_CHECK(static_cast<std::int64_t>(logits.size()) ==
               block_len * config.vocab_size,
           "verify_step logits size");
  if (block_len == 1) {
    // One-token blocks take the matvec path: bit-identical (the kernel
    // contract), and parallel_matvec fans the logits row over the pool.
    decode_step(model, state, scratch, tokens[0], logits);
    return;
  }
  CA_CHECK(state.position + block_len <= state.capacity,
           "verify block of " << block_len << " tokens overflows KV capacity "
                              << state.capacity << " at position "
                              << state.position);
  check_step_args(config, state, tokens[0]);
  for (std::int64_t t = 1; t < block_len; ++t) {
    CA_CHECK(tokens[t] >= 0 && tokens[t] < config.vocab_size,
             "token id " << tokens[t] << " out of vocab");
  }

  const auto d = static_cast<std::size_t>(config.d_model);
  const auto d_ff = static_cast<std::size_t>(config.d_ff);
  const std::int64_t hd = config.head_dim();
  const auto kv = static_cast<std::size_t>(config.n_kv_heads * hd);
  const auto seq = static_cast<std::size_t>(config.max_seq_len);
  const std::int64_t pos0 = state.position;
  const auto row_f = [](std::vector<float>& buf, std::int64_t t,
                        std::size_t dim) {
    return std::span<float>(buf.data() + static_cast<std::size_t>(t) * dim,
                            dim);
  };

  for (std::int64_t t = 0; t < block_len; ++t) {
    embed_lookup(model.embed(), tokens[t], row_f(scratch.x, t, d));
  }

  // Rows fan over the pool in two waves per layer: first every row's RoPE +
  // KV store (disjoint cache rows), then — only once ALL block rows are in
  // the cache — every row's attention, since row t reads the K/V this block
  // just stored for rows 0..t. Within a wave rows are independent, so any
  // pool size produces identical bits.
  const auto for_each_row = [&](const std::function<void(std::size_t)>& fn) {
    if (pool != nullptr) {
      pool->parallel_for(static_cast<std::size_t>(block_len), fn);
    } else {
      for (std::int64_t t = 0; t < block_len; ++t) {
        fn(static_cast<std::size_t>(t));
      }
    }
  };

  for (std::size_t layer = 0; layer < model.blocks().size(); ++layer) {
    const TransformerBlock& block = model.blocks()[layer];
    const auto l = static_cast<std::int64_t>(layer);

    for (std::int64_t t = 0; t < block_len; ++t) {
      rmsnorm_row(row_f(scratch.x, t, d), block.input_norm.value.values(),
                  config.norm_eps, row_f(scratch.normed, t, d));
    }
    batched_project(block.q_proj, scratch.normed.data(), scratch.q.data(),
                    block_len, scratch);
    batched_project(block.k_proj, scratch.normed.data(),
                    scratch.k_new.data(), block_len, scratch);
    batched_project(block.v_proj, scratch.normed.data(),
                    scratch.v_new.data(), block_len, scratch);

    for_each_row([&](std::size_t ti) {
      const auto t = static_cast<std::int64_t>(ti);
      const std::int64_t pos = pos0 + t;
      float* k_new = scratch.k_new.data() + ti * kv;
      const std::span<float> q = row_f(scratch.q, t, d);
      for (std::int64_t h = 0; h < config.n_heads; ++h) {
        model.rotary().apply(
            std::span<float>(q.data() + h * hd, static_cast<std::size_t>(hd)),
            pos);
      }
      for (std::int64_t h = 0; h < config.n_kv_heads; ++h) {
        model.rotary().apply(
            std::span<float>(k_new + h * hd, static_cast<std::size_t>(hd)),
            pos);
      }
      state.store_k_row(l, pos, k_new);
      state.store_v_row(l, pos, scratch.v_new.data() + ti * kv);
    });
    for_each_row([&](std::size_t ti) {
      const auto t = static_cast<std::int64_t>(ti);
      attention_row(model, state, l, pos0 + t, row_f(scratch.q, t, d),
                    row_f(scratch.att, t, d), row_f(scratch.scores, t, seq));
    });

    batched_project(block.o_proj, scratch.att.data(), scratch.proj.data(),
                    block_len, scratch);
    for (std::int64_t t = 0; t < block_len; ++t) {
      add_row(row_f(scratch.x, t, d), row_f(scratch.proj, t, d));
    }

    for (std::int64_t t = 0; t < block_len; ++t) {
      rmsnorm_row(row_f(scratch.x, t, d), block.post_norm.value.values(),
                  config.norm_eps, row_f(scratch.normed, t, d));
    }
    batched_project(block.gate_proj, scratch.normed.data(),
                    scratch.gate.data(), block_len, scratch);
    batched_project(block.up_proj, scratch.normed.data(), scratch.up.data(),
                    block_len, scratch);
    for (std::int64_t t = 0; t < block_len; ++t) {
      swiglu_row(row_f(scratch.gate, t, d_ff), row_f(scratch.up, t, d_ff));
    }
    batched_project(block.down_proj, scratch.gate.data(),
                    scratch.proj.data(), block_len, scratch);
    for (std::int64_t t = 0; t < block_len; ++t) {
      add_row(row_f(scratch.x, t, d), row_f(scratch.proj, t, d));
    }
  }

  for (std::int64_t t = 0; t < block_len; ++t) {
    rmsnorm_row(row_f(scratch.x, t, d), model.final_norm().value.values(),
                config.norm_eps, row_f(scratch.normed, t, d));
  }
  batched_project(model.embed(), scratch.normed.data(), logits.data(),
                  block_len, scratch);
  state.position += block_len;
}

}  // namespace chipalign
