#pragma once
/// \file rotary.hpp
/// \brief Rotary positional embedding (RoPE) tables and application.
///
/// RoPE rotates each even/odd feature pair of q and k by a position- and
/// frequency-dependent angle. The rotation is orthogonal, so the backward
/// pass is the inverse rotation applied to the gradient.

#include <cstdint>
#include <span>
#include <vector>

namespace chipalign {

/// Precomputed cos/sin tables for all positions up to max_seq_len.
class RotaryCache {
 public:
  /// \param head_dim must be even; \param theta RoPE base (e.g. 10000).
  RotaryCache(std::int64_t head_dim, std::int64_t max_seq_len, double theta);

  std::int64_t head_dim() const { return head_dim_; }
  std::int64_t max_seq_len() const { return max_seq_len_; }

  /// Rotates one head vector (length head_dim) in place for position `pos`.
  void apply(std::span<float> head_vec, std::int64_t pos) const;

  /// Applies the inverse rotation (used for gradients).
  void apply_inverse(std::span<float> head_vec, std::int64_t pos) const;

 private:
  std::int64_t head_dim_;
  std::int64_t max_seq_len_;
  std::vector<float> cos_;  ///< [max_seq_len, head_dim/2]
  std::vector<float> sin_;  ///< [max_seq_len, head_dim/2]
};

}  // namespace chipalign
