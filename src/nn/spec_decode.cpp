#include "nn/spec_decode.hpp"

#include <algorithm>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

SpecWalkResult spec_accept_walk(std::span<const float> rows,
                                std::int64_t vocab,
                                std::span<const TokenId> drafts,
                                const std::function<bool(TokenId)>& stop,
                                const std::function<bool(TokenId)>& emit) {
  const auto n_rows = static_cast<std::int64_t>(drafts.size()) + 1;
  CA_CHECK(static_cast<std::int64_t>(rows.size()) == n_rows * vocab,
           "spec_accept_walk: " << rows.size() << " logits for " << n_rows
                                << " rows of vocab " << vocab);
  SpecWalkResult result;
  for (std::int64_t i = 0; i < n_rows; ++i) {
    const std::span<const float> row(
        rows.data() + static_cast<std::size_t>(i * vocab),
        static_cast<std::size_t>(vocab));
    const auto next = static_cast<TokenId>(ops::argmax(row));
    if (stop(next)) {
      result.stopped = true;
      break;
    }
    const bool matched =
        i < static_cast<std::int64_t>(drafts.size()) &&
        next == drafts[static_cast<std::size_t>(i)];
    if (matched) ++result.accepted;
    const bool budget_left = emit(next);
    ++result.emitted;
    result.last = next;
    // A mismatching row still emitted a valid token (all its context was
    // accepted), but the rows after it scored a rejected continuation.
    if (!matched || !budget_left) break;
  }
  result.consumed = 1 + result.accepted;
  return result;
}

std::vector<TokenId> speculative_decode_tokens(
    InferenceSession& session, std::span<const float> prefill_logits,
    std::span<const TokenId> prompt, Drafter& drafter, std::int64_t draft_k,
    std::int64_t max_new, bool stop_at_newline,
    SpecDecodeStats* stats) {
  CA_CHECK(draft_k >= 0, "negative draft_k " << draft_k);
  const CharTokenizer& tok = tokenizer();
  const TokenId newline_id = tok.char_to_id('\n');
  const auto stop = [&](TokenId t) {
    return t == CharTokenizer::kEos || (stop_at_newline && t == newline_id);
  };

  std::vector<TokenId> out;
  if (max_new <= 0) return out;

  // The first new token comes straight off the prefill row — exactly the
  // first iteration of the plain greedy loop.
  const auto first = static_cast<TokenId>(ops::argmax(prefill_logits));
  if (stop(first)) return out;
  out.push_back(first);

  std::vector<TokenId> context(prompt.begin(), prompt.end());
  context.push_back(first);
  std::vector<TokenId> draft_buf(static_cast<std::size_t>(draft_k));
  std::vector<TokenId> block;
  TokenId pending = first;  // emitted, not yet fed

  while (static_cast<std::int64_t>(out.size()) < max_new) {
    const std::int64_t pos0 = session.position();
    const std::int64_t k =
        std::min<std::int64_t>(draft_k, session.capacity() - pos0 - 1);
    std::size_t drafted = 0;
    if (k > 0) {
      drafted = drafter.draft(
          std::span<const TokenId>(context.data(), context.size()),
          static_cast<std::size_t>(k),
          std::span<TokenId>(draft_buf.data(), draft_buf.size()));
    }
    block.clear();
    block.push_back(pending);
    block.insert(block.end(), draft_buf.begin(),
                 draft_buf.begin() + static_cast<std::ptrdiff_t>(drafted));

    const std::span<const float> rows = session.verify(
        std::span<const TokenId>(block.data(), block.size()));
    const SpecWalkResult walk = spec_accept_walk(
        rows, session.vocab_size(),
        std::span<const TokenId>(block.data() + 1, drafted), stop,
        [&](TokenId t) {
          out.push_back(t);
          context.push_back(t);
          return static_cast<std::int64_t>(out.size()) < max_new;
        });
    session.truncate(pos0 + walk.consumed);
    if (stats != nullptr) {
      ++stats->verify_passes;
      stats->drafted += static_cast<std::int64_t>(drafted);
      stats->accepted += walk.accepted;
      stats->emitted += walk.emitted;
    }
    if (walk.stopped) break;
    pending = walk.last;
  }
  return out;
}

std::string speculative_generate(const TransformerModel& model,
                                 std::string_view prompt,
                                 const GenerateOptions& options,
                                 bool stop_at_newline, Drafter* drafter,
                                 SpecDecodeStats* stats) {
  CA_CHECK(options.temperature <= 0.0,
           "speculative_generate is greedy-only (temperature "
               << options.temperature << ")");
  const CharTokenizer& tok = tokenizer();
  const std::vector<TokenId> prompt_tokens =
      tok.encode(prompt, /*add_bos=*/true);
  const std::int64_t budget =
      model.config().max_seq_len -
      static_cast<std::int64_t>(prompt_tokens.size());
  CA_CHECK(budget > 0, "prompt fills the whole context window");

  InferenceSession session(model);
  const std::vector<float> logits = session.prefill(prompt_tokens);
  const std::int64_t max_new =
      std::min<std::int64_t>(options.max_new_tokens, budget);

  PromptLookupDrafter fallback(options.ngram_min, options.ngram_max);
  Drafter& active = drafter != nullptr ? *drafter : fallback;
  const std::vector<TokenId> generated = speculative_decode_tokens(
      session, std::span<const float>(logits.data(), logits.size()),
      std::span<const TokenId>(prompt_tokens.data(), prompt_tokens.size()),
      active, options.draft_k, max_new, stop_at_newline, stats);
  return tok.decode(generated);
}

}  // namespace chipalign
