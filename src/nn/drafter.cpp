#include "nn/drafter.hpp"

#include <algorithm>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

PromptLookupDrafter::PromptLookupDrafter(std::int64_t ngram_min,
                                         std::int64_t ngram_max)
    : ngram_min_(ngram_min), ngram_max_(ngram_max) {
  CA_CHECK(ngram_min_ >= 1 && ngram_max_ >= ngram_min_,
           "prompt-lookup needs 1 <= ngram_min <= ngram_max, got ["
               << ngram_min_ << ", " << ngram_max_ << "]");
}

std::size_t PromptLookupDrafter::draft(std::span<const TokenId> context,
                                       std::size_t max_tokens,
                                       std::span<TokenId> out) {
  CA_CHECK(out.size() >= max_tokens, "prompt-lookup draft buffer too small");
  if (max_tokens == 0) return 0;
  const auto len = static_cast<std::int64_t>(context.size());
  // Longest n-gram first: a longer suffix match is stronger evidence the
  // continuation repeats too. Among equal-length matches the most recent
  // wins — generated text tends to continue its own latest pattern.
  const std::int64_t n_hi = std::min<std::int64_t>(ngram_max_, len - 1);
  for (std::int64_t n = n_hi; n >= ngram_min_; --n) {
    const TokenId* suffix = context.data() + (len - n);
    for (std::int64_t start = len - n - 1; start >= 0; --start) {
      if (!std::equal(suffix, suffix + n, context.data() + start)) continue;
      // start <= len - n - 1, so at least one token follows the match.
      // The continuation past the end of the context is extended
      // cyclically: a suffix matching `period` tokens before the end means
      // the tail repeats with that period, and the best guess is that it
      // keeps doing so. (Without this, a generation stuck on a short cycle
      // — the copy-heaviest case there is — would only ever get
      // period-many tokens per draft, however large max_tokens is.)
      const std::int64_t follow = start + n;
      const auto period = static_cast<std::size_t>(len - follow);
      for (std::size_t i = 0; i < max_tokens; ++i) {
        out[i] = context[static_cast<std::size_t>(follow) + i % period];
      }
      return max_tokens;
    }
  }
  return 0;
}

SelfSpeculativeDrafter::SelfSpeculativeDrafter(const TransformerModel& target)
    : draft_model_(TransformerModel::from_checkpoint(target.to_checkpoint())),
      state_(draft_model_.config(), draft_model_.config().max_seq_len),
      scratch_(draft_model_.config(), /*max_batch=*/1) {
  draft_model_.quantize_weights(DType::kI8);
  logits_.resize(static_cast<std::size_t>(draft_model_.config().vocab_size));
}

void SelfSpeculativeDrafter::reset() {
  state_.truncate(0);
  fed_.clear();
}

std::size_t SelfSpeculativeDrafter::draft(std::span<const TokenId> context,
                                          std::size_t max_tokens,
                                          std::span<TokenId> out) {
  CA_CHECK(out.size() >= max_tokens, "self-spec draft buffer too small");
  CA_CHECK(!context.empty(), "self-spec draft on empty context");
  const std::span<float> logits(logits_.data(), logits_.size());

  // Rewind to the longest common prefix with what this session already
  // consumed (the caller's context loses our rejected drafts), then feed
  // only the delta. The KV rows past the prefix are dead after truncate().
  std::size_t lcp = 0;
  while (lcp < fed_.size() && lcp < context.size() &&
         fed_[lcp] == context[lcp]) {
    ++lcp;
  }
  // logits_ describes whatever was fed LAST, which after a rewind is not
  // the final context token — always re-feed at least that one so the
  // first argmax below continues the caller's context, not a stale draft.
  if (lcp >= context.size()) lcp = context.size() - 1;
  state_.truncate(static_cast<std::int64_t>(lcp));
  fed_.resize(lcp);

  for (std::size_t i = lcp; i < context.size(); ++i) {
    if (state_.position >= state_.capacity) return 0;
    decode_step(draft_model_, state_, scratch_, context[i], logits);
    fed_.push_back(context[i]);
  }

  std::size_t drafted = 0;
  while (drafted < max_tokens) {
    const auto next = static_cast<TokenId>(
        ops::argmax(std::span<const float>(logits_.data(), logits_.size())));
    out[drafted++] = next;
    // The last proposal's own logits are never needed; skip its feed so a
    // draft call costs exactly `drafted` steps past the context delta.
    if (drafted == max_tokens || state_.position >= state_.capacity) break;
    decode_step(draft_model_, state_, scratch_, next, logits);
    fed_.push_back(next);
  }
  return drafted;
}

}  // namespace chipalign
