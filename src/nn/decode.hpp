#pragma once
/// \file decode.hpp
/// \brief Token-decode steps over SessionState: serial and batched.
///
/// decode_step() is the single-sequence step InferenceSession is built on:
/// every projection runs on kernels::parallel_matvec, and attention walks
/// the session's own KV cache. batched_decode_step() is the serving
/// engine's continuous-batching primitive: it coalesces the step of B
/// independent sessions so each projection is ONE kernels::matmul_nt call
/// over the stacked activations ([B, d] against the shared weight matrix)
/// instead of B separate matvecs — the weights stream through the cache
/// once per step rather than once per session.
///
/// Bitwise contract: row b of a batched step is bit-identical to a serial
/// decode_step() of states[b]. Projections match because matmul_nt and
/// matvec share the kernel layer's 8-lane fp64 reduction contract
/// (kernels.hpp); everything else (RMSNorm, RoPE, attention, SwiGLU,
/// residual adds) runs the same per-row helper code in both paths. The
/// serving tests assert this equality at batch sizes 1/4/16.

#include <cstdint>
#include <span>
#include <vector>

#include "nn/session_state.hpp"
#include "nn/transformer.hpp"

namespace chipalign {

class ThreadPool;

/// Reusable scratch arena for decode steps over up to `max_batch` rows.
/// Sized once; no decode step allocates. Buffers are row-major [B, dim].
struct DecodeScratch {
  DecodeScratch(const ModelConfig& config, std::int64_t max_batch);

  std::int64_t max_batch = 0;
  std::vector<float> x;       ///< residual stream [B, d]
  std::vector<float> normed;  ///< RMSNorm output [B, d]
  std::vector<float> q;       ///< query heads [B, d]
  std::vector<float> att;     ///< attention output [B, d]
  std::vector<float> proj;    ///< o/down projection output [B, d]
  std::vector<float> gate;    ///< SwiGLU gate [B, d_ff]
  std::vector<float> up;      ///< SwiGLU up [B, d_ff]
  std::vector<float> k_new;   ///< fresh K rows [B, kv_dim]
  std::vector<float> v_new;   ///< fresh V rows [B, kv_dim]
  std::vector<float> nt_out;  ///< matmul_nt staging [max_out_dim, B]
  std::vector<float> scores;  ///< attention scores [B, max_seq_len]
};

/// Feeds one token to `state` and writes the next-token logits row
/// (config.vocab_size floats) into `logits`. Advances state.position.
void decode_step(const TransformerModel& model, SessionState& state,
                 DecodeScratch& scratch, TokenId token,
                 std::span<float> logits);

/// Feeds tokens[b] to states[b] for every b and writes logits row-major
/// [B, vocab] into `logits`. One matmul_nt per projection; the per-session
/// attention fans across `pool` when given (sessions are independent, so
/// any pool size produces identical bits). states must be distinct.
void batched_decode_step(const TransformerModel& model,
                         std::span<SessionState* const> states,
                         std::span<const TokenId> tokens,
                         DecodeScratch& scratch, std::span<float> logits,
                         ThreadPool* pool = nullptr);

/// Speculative-verify step: feeds the T = tokens.size() tokens to ONE
/// session in a single pass — token t lands at position() + t — and writes
/// logits row-major [T, vocab]. Like batched_decode_step it runs one
/// matmul_nt per projection over the stacked [T, d] activations (the
/// weights stream through the cache once per block instead of once per
/// token), but the batch axis is consecutive positions of one sequence, so
/// attention is block-causal: all T K/V rows are RoPE'd and stored first,
/// then row t attends positions 0..position()+t. Advances position by T.
///
/// Bitwise contract: row t is bit-identical to the logits of the t-th of T
/// serial decode_step() calls (same matmul_nt/matvec kernel equivalence and
/// shared per-row helpers as the batched path), which is what lets greedy
/// speculative decoding accept drafted tokens without changing output bits.
/// T == 1 dispatches to decode_step(). Requires T <= scratch.max_batch and
/// position() + T <= the session's capacity.
void verify_step(const TransformerModel& model, SessionState& state,
                 DecodeScratch& scratch, std::span<const TokenId> tokens,
                 std::span<float> logits, ThreadPool* pool = nullptr);

}  // namespace chipalign
