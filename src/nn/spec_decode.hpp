#pragma once
/// \file spec_decode.hpp
/// \brief Speculative greedy decoding: draft, verify, accept, roll back.
///
/// The loop: a Drafter proposes K continuation tokens, verify_step()
/// (decode.hpp) scores the pending token plus all K drafts in ONE pass, and
/// the acceptance walk below emits the target model's own argmax row by row
/// for as long as each argmax agrees with the corresponding draft. The
/// first disagreeing row still yields one emitted token (its context is
/// entirely accepted tokens, so its argmax is exactly what serial decode
/// would produce there); the rejected draft rows are then discarded with
/// SessionState::truncate() — an O(1) rewind thanks to the lazy KV cache.
///
/// Determinism: every emitted token is argmax over a logits row that
/// verify_step() guarantees bit-identical to serial decode_step(), and the
/// walk replicates generate()'s stop/budget decisions in order. Greedy
/// speculative output is therefore byte-identical to non-speculative greedy
/// output for ANY drafter, at any draft_k, including a drafter that
/// proposes garbage — drafting quality only moves throughput, via the mean
/// accepted length. The serving engine (src/serve) and generate() both run
/// this walk; tests pin the identity across draft_k, weight dtypes, and
/// prefix-cache states.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nn/drafter.hpp"
#include "nn/infer.hpp"

namespace chipalign {

/// Aggregate speculative-decoding counters (one generation or a whole
/// serving run). accept_len_mean is the key throughput number: tokens
/// emitted per verify pass — 1.0 means drafting never helped, 1 + K means
/// every draft was accepted.
struct SpecDecodeStats {
  std::int64_t verify_passes = 0;  ///< verify_step() calls
  std::int64_t drafted = 0;        ///< draft tokens proposed
  std::int64_t accepted = 0;       ///< draft tokens accepted
  std::int64_t emitted = 0;        ///< tokens emitted via spec passes

  double accept_len_mean() const {
    return verify_passes > 0
               ? static_cast<double>(emitted) /
                     static_cast<double>(verify_passes)
               : 0.0;
  }
  double draft_hit_rate() const {
    return drafted > 0
               ? static_cast<double>(accepted) / static_cast<double>(drafted)
               : 0.0;
  }
  void merge(const SpecDecodeStats& other) {
    verify_passes += other.verify_passes;
    drafted += other.drafted;
    accepted += other.accepted;
    emitted += other.emitted;
  }
};

/// Outcome of one acceptance walk over a verify block's logits rows.
struct SpecWalkResult {
  std::int64_t consumed = 0;  ///< KV rows to keep: truncate to pos0 + this
  std::int64_t accepted = 0;  ///< drafts that matched the model's argmax
  std::int64_t emitted = 0;   ///< tokens emitted this pass
  bool stopped = false;       ///< hit a stop token; generation is over
  TokenId last = -1;          ///< last emitted token (the next pending feed)
};

/// Walks the [1 + drafts.size(), vocab] logits rows of a verify block
/// (row 0 scored the pending token, row 1 + i scored drafts[i]) in serial
/// order. Per row: argmax -> stop(token)? end generation : emit(token);
/// emit returns false when the token budget is now spent. Rows stay valid
/// only while every prior draft matched its argmax, so the walk breaks at
/// the first mismatch — emitting that row's argmax as the corrected token.
/// The caller must truncate the session to pos0 + consumed afterwards.
SpecWalkResult spec_accept_walk(std::span<const float> rows,
                                std::int64_t vocab,
                                std::span<const TokenId> drafts,
                                const std::function<bool(TokenId)>& stop,
                                const std::function<bool(TokenId)>& emit);

/// Greedy speculative token loop over an already-prefilled session:
/// `prefill_logits` is the row predicting the first new token and `prompt`
/// the tokens the session consumed. Emits up to max_new tokens, stopping at
/// <eos> (and '\n' when stop_at_newline). Byte-identical to the plain
/// greedy loop in generate() for any drafter. Accumulates into *stats when
/// given.
std::vector<TokenId> speculative_decode_tokens(
    InferenceSession& session, std::span<const float> prefill_logits,
    std::span<const TokenId> prompt, Drafter& drafter, std::int64_t draft_k,
    std::int64_t max_new, bool stop_at_newline,
    SpecDecodeStats* stats = nullptr);

/// Speculative counterpart of generate() (infer.hpp): same <bos> encoding,
/// stop conditions and budget, byte-identical greedy output. Uses `drafter`
/// when given, else a PromptLookupDrafter(options.ngram_min/max). Requires
/// options.temperature <= 0 (greedy acceptance only).
std::string speculative_generate(const TransformerModel& model,
                                 std::string_view prompt,
                                 const GenerateOptions& options = {},
                                 bool stop_at_newline = false,
                                 Drafter* drafter = nullptr,
                                 SpecDecodeStats* stats = nullptr);

}  // namespace chipalign
