#pragma once
/// \file param.hpp
/// \brief Trainable parameter: a named value tensor plus its gradient.

#include <string>

#include "tensor/tensor.hpp"

namespace chipalign {

/// One trainable tensor. The gradient buffer always matches the value shape
/// and is accumulated into by backward passes until zero_grad().
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0F); }
};

}  // namespace chipalign
