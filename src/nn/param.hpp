#pragma once
/// \file param.hpp
/// \brief Trainable parameter: a named value tensor plus its gradient.

#include <string>

#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// One trainable tensor. The gradient buffer always matches the value shape
/// and is accumulated into by backward passes until zero_grad().
///
/// TransformerModel::quantize_weights() moves rank-2 weights into `qvalue`
/// (f16/bf16/int8 storage read directly by the dequantizing kernels) and
/// frees `value`/`grad`; a quantized parameter is inference-only.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  QuantTensor qvalue;

  Parameter() = default;
  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  bool quantized() const { return !qvalue.empty(); }

  void zero_grad() { grad.fill(0.0F); }
};

}  // namespace chipalign
