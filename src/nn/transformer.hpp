#pragma once
/// \file transformer.hpp
/// \brief LLaMA-style decoder-only transformer with training backward pass.
///
/// Architecture (per block): RMSNorm -> causal self-attention with RoPE and
/// grouped-query heads -> residual -> RMSNorm -> SwiGLU MLP -> residual.
/// Final RMSNorm, tied LM head (logits = x @ embedding^T).
///
/// Tensor naming follows the HuggingFace LLaMA convention
/// ("model.layers.N.self_attn.q_proj.weight", ...) so checkpoints look like
/// miniature versions of the models the paper merges.
///
/// The class supports one in-flight training forward at a time: forward()
/// stashes activations, backward() consumes them and accumulates parameter
/// gradients. Inference with a KV cache lives in nn/infer.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "nn/param.hpp"
#include "nn/rotary.hpp"
#include "text/tokenizer.hpp"

namespace chipalign {

/// One transformer block's parameters.
struct TransformerBlock {
  Parameter input_norm;   ///< [d]
  Parameter q_proj;       ///< [d, d]
  Parameter k_proj;       ///< [kv_dim, d]
  Parameter v_proj;       ///< [kv_dim, d]
  Parameter o_proj;       ///< [d, d]
  Parameter post_norm;    ///< [d]
  Parameter gate_proj;    ///< [d_ff, d]
  Parameter up_proj;      ///< [d_ff, d]
  Parameter down_proj;    ///< [d, d_ff]
};

/// Decoder-only transformer with trainable weights.
class TransformerModel {
 public:
  /// Randomly initialized model (scaled-normal init).
  TransformerModel(ModelConfig config, Rng& rng);

  /// Model with all parameters zero (used by from_checkpoint).
  explicit TransformerModel(ModelConfig config);

  ~TransformerModel();
  TransformerModel(TransformerModel&&) noexcept;
  TransformerModel& operator=(TransformerModel&&) noexcept;
  TransformerModel(const TransformerModel&) = delete;
  TransformerModel& operator=(const TransformerModel&) = delete;

  const ModelConfig& config() const { return config_; }
  const RotaryCache& rotary() const { return rotary_; }

  /// Storage dtype of the rank-2 weights: kF32 until quantize_weights().
  DType weight_dtype() const { return weight_dtype_; }

  /// Quantizes every rank-2 weight (embedding + the nine block matrices)
  /// into `dtype` storage (kF16 / kBF16 / kI8), freeing the fp32 values and
  /// gradients; rmsnorm vectors stay fp32. The model becomes
  /// inference-only: decode reads the quantized storage directly through
  /// the dequantizing kernels, while forward()/backward() throw. Shrinks
  /// resident weight bytes 2x (f16/bf16) or ~4x (int8).
  void quantize_weights(DType dtype);

  /// All parameters in a stable order (embedding, blocks, final norm).
  std::vector<Parameter*> parameters();
  std::vector<const Parameter*> parameters() const;

  const Parameter& embed() const { return embed_; }
  const std::vector<TransformerBlock>& blocks() const { return blocks_; }
  const Parameter& final_norm() const { return final_norm_; }

  void zero_grad();

  /// Total scalar parameter count.
  std::int64_t parameter_count() const;

  // -- training path ----------------------------------------------------------

  /// Runs the model over a token sequence (length T <= max_seq_len) and
  /// returns logits [T, vocab]. Stashes activations for backward().
  Tensor forward(const std::vector<TokenId>& tokens);

  /// Backpropagates from dlogits [T, vocab] (as produced for the most recent
  /// forward()) into parameter gradients. Throws if no forward is pending.
  void backward(const Tensor& dlogits);

  /// Drops the pending forward activations without backpropagating (used by
  /// inference-style evaluations that only need the logits).
  void discard_forward();

  // -- checkpoint interop
  // -------------------------------------------------------

  /// Snapshot of the weights under LLaMA-style names.
  Checkpoint to_checkpoint() const;

  /// Builds a model from a checkpoint produced by to_checkpoint() (or by the
  /// merge library). Validates names and shapes.
  static TransformerModel from_checkpoint(const Checkpoint& checkpoint);

  /// Overwrites this model's weights from a conformable checkpoint.
  void load_weights(const Checkpoint& checkpoint);

 private:
  friend class InferenceSession;

  struct BlockCache;
  struct ForwardCache;

  void init_parameters(Rng& rng);
  void name_parameters();

  ModelConfig config_;
  RotaryCache rotary_;

  Parameter embed_;  ///< [vocab, d]; also the tied LM head
  std::vector<TransformerBlock> blocks_;
  Parameter final_norm_;  ///< [d]
  DType weight_dtype_ = DType::kF32;

  std::unique_ptr<ForwardCache> cache_;  ///< pending forward activations
};

}  // namespace chipalign
