#include "nn/transformer.hpp"

#include <cmath>
#include <memory>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

namespace {

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

/// RMSNorm forward over rows of x [T, d]: out = x * gain / rms(row).
/// Fills inv_rms with 1/rms per row.
Tensor rmsnorm_forward(const Tensor& x, const Tensor& gain, double eps,
                       std::vector<float>& inv_rms) {
  const std::int64_t rows = x.dim(0);
  const std::int64_t d = x.dim(1);
  CA_CHECK(gain.numel() == d, "RMSNorm gain size mismatch");
  Tensor out(x.shape());
  inv_rms.assign(static_cast<std::size_t>(rows), 0.0F);
  for (std::int64_t t = 0; t < rows; ++t) {
    const auto xin = x.row(t);
    double mean_sq = 0.0;
    for (float v : xin) mean_sq += static_cast<double>(v) * v;
    mean_sq /= static_cast<double>(d);
    const auto r = static_cast<float>(1.0 / std::sqrt(mean_sq + eps));
    inv_rms[static_cast<std::size_t>(t)] = r;
    auto yout = out.row(t);
    const auto g = gain.values();
    for (std::int64_t i = 0; i < d; ++i) {
      yout[static_cast<std::size_t>(i)] =
          xin[static_cast<std::size_t>(i)] * r * g[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

/// RMSNorm backward: returns dx and accumulates the gain gradient.
Tensor rmsnorm_backward(const Tensor& x, const std::vector<float>& inv_rms,
                        Parameter& gain, const Tensor& dy) {
  const std::int64_t rows = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor dx(x.shape());
  const auto g = gain.value.values();
  auto dg = gain.grad.values();
  for (std::int64_t t = 0; t < rows; ++t) {
    const auto xin = x.row(t);
    const auto dyr = dy.row(t);
    auto dxr = dx.row(t);
    const float r = inv_rms[static_cast<std::size_t>(t)];
    // S = sum_j g_j dy_j x_j r   (all in fp64 for stability)
    double s = 0.0;
    for (std::int64_t i = 0; i < d; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      s += static_cast<double>(g[idx]) * dyr[idx] * (xin[idx] * r);
    }
    const double s_over_d = s / static_cast<double>(d);
    for (std::int64_t i = 0; i < d; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const float xr = xin[idx] * r;
      dxr[idx] = static_cast<float>(
          r * (static_cast<double>(g[idx]) * dyr[idx] - xr * s_over_d));
      dg[idx] += dyr[idx] * xr;
    }
  }
  return dx;
}

/// y = x @ W^T with W stored [out, in].
Tensor linear_forward(const Tensor& x, const Parameter& w) {
  return ops::matmul_nt(x, w.value);
}

/// Accumulates dW += dy^T x and returns dx = dy @ W.
Tensor linear_backward(const Tensor& x, Parameter& w, const Tensor& dy) {
  ops::matmul_tn_accum(dy, x, w.grad);
  return ops::matmul(dy, w.value);
}

}  // namespace

// -- caches
// --------------------------------------------------------------------

struct TransformerModel::BlockCache {
  Tensor x_in;               ///< block input [T, d]
  std::vector<float> inv_rms1;
  Tensor normed1;            ///< [T, d]
  Tensor q;                  ///< post-RoPE [T, d]
  Tensor k;                  ///< post-RoPE [T, kv_dim]
  Tensor v;                  ///< [T, kv_dim]
  Tensor probs;              ///< [n_heads, T, T] causal softmax rows
  Tensor att_concat;         ///< [T, d] pre-o_proj
  Tensor x_mid;              ///< after attention residual [T, d]
  std::vector<float> inv_rms2;
  Tensor normed2;            ///< [T, d]
  Tensor gate_pre;           ///< [T, d_ff] pre-SiLU
  Tensor up_out;             ///< [T, d_ff]
  Tensor h;                  ///< silu(gate) * up [T, d_ff]
};

struct TransformerModel::ForwardCache {
  std::vector<TokenId> tokens;
  std::vector<BlockCache> blocks;
  Tensor x_final;            ///< input to the final norm [T, d]
  std::vector<float> inv_rms_final;
  Tensor normed_final;       ///< [T, d]
};

// -- construction
// ----------------------------------------------------------------

TransformerModel::TransformerModel(ModelConfig config)
    : config_(std::move(config)),
      rotary_(config_.head_dim(), config_.max_seq_len, config_.rope_theta) {
  config_.validate();
  CA_CHECK(config_.tied_embeddings,
           "this implementation supports tied embeddings only");
  const std::int64_t d = config_.d_model;
  const std::int64_t kv_dim = config_.n_kv_heads * config_.head_dim();
  embed_ = Parameter("", Tensor({config_.vocab_size, d}));
  blocks_.resize(static_cast<std::size_t>(config_.n_layers));
  for (auto& block : blocks_) {
    block.input_norm = Parameter("", Tensor::full({d}, 1.0F));
    block.q_proj = Parameter("", Tensor({d, d}));
    block.k_proj = Parameter("", Tensor({kv_dim, d}));
    block.v_proj = Parameter("", Tensor({kv_dim, d}));
    block.o_proj = Parameter("", Tensor({d, d}));
    block.post_norm = Parameter("", Tensor::full({d}, 1.0F));
    block.gate_proj = Parameter("", Tensor({config_.d_ff, d}));
    block.up_proj = Parameter("", Tensor({config_.d_ff, d}));
    block.down_proj = Parameter("", Tensor({d, config_.d_ff}));
  }
  final_norm_ = Parameter("", Tensor::full({d}, 1.0F));
  name_parameters();
}

TransformerModel::TransformerModel(ModelConfig config, Rng& rng)
    : TransformerModel(std::move(config)) {
  init_parameters(rng);
}

void TransformerModel::discard_forward() { cache_.reset(); }

TransformerModel::~TransformerModel() = default;
TransformerModel::TransformerModel(TransformerModel&&) noexcept = default;
TransformerModel& TransformerModel::operator=(TransformerModel&&) noexcept =
    default;

void TransformerModel::init_parameters(Rng& rng) {
  const auto fill_randn = [&rng](Tensor& t, float stddev) {
    for (float& v : t.values()) v = static_cast<float>(rng.gaussian()) * stddev;
  };
  constexpr float kEmbedStd = 0.02F;
  fill_randn(embed_.value, kEmbedStd);
  // Residual-branch projections scaled down with depth (GPT-2 style) so the
  // randomly initialized model starts in a stable regime.
  const float proj_std =
      kEmbedStd / std::sqrt(2.0F * static_cast<float>(config_.n_layers));
  for (auto& block : blocks_) {
    fill_randn(block.q_proj.value, kEmbedStd);
    fill_randn(block.k_proj.value, kEmbedStd);
    fill_randn(block.v_proj.value, kEmbedStd);
    fill_randn(block.o_proj.value, proj_std);
    fill_randn(block.gate_proj.value, kEmbedStd);
    fill_randn(block.up_proj.value, kEmbedStd);
    fill_randn(block.down_proj.value, proj_std);
  }
}

void TransformerModel::name_parameters() {
  embed_.name = "model.embed_tokens.weight";
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const std::string prefix = "model.layers." + std::to_string(i) + ".";
    blocks_[i].input_norm.name = prefix + "input_layernorm.weight";
    blocks_[i].q_proj.name = prefix + "self_attn.q_proj.weight";
    blocks_[i].k_proj.name = prefix + "self_attn.k_proj.weight";
    blocks_[i].v_proj.name = prefix + "self_attn.v_proj.weight";
    blocks_[i].o_proj.name = prefix + "self_attn.o_proj.weight";
    blocks_[i].post_norm.name = prefix + "post_attention_layernorm.weight";
    blocks_[i].gate_proj.name = prefix + "mlp.gate_proj.weight";
    blocks_[i].up_proj.name = prefix + "mlp.up_proj.weight";
    blocks_[i].down_proj.name = prefix + "mlp.down_proj.weight";
  }
  final_norm_.name = "model.norm.weight";
}

std::vector<Parameter*> TransformerModel::parameters() {
  std::vector<Parameter*> out;
  out.push_back(&embed_);
  for (auto& block : blocks_) {
    out.push_back(&block.input_norm);
    out.push_back(&block.q_proj);
    out.push_back(&block.k_proj);
    out.push_back(&block.v_proj);
    out.push_back(&block.o_proj);
    out.push_back(&block.post_norm);
    out.push_back(&block.gate_proj);
    out.push_back(&block.up_proj);
    out.push_back(&block.down_proj);
  }
  out.push_back(&final_norm_);
  return out;
}

std::vector<const Parameter*> TransformerModel::parameters() const {
  auto mutable_params = const_cast<TransformerModel*>(this)->parameters();
  return {mutable_params.begin(), mutable_params.end()};
}

void TransformerModel::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::int64_t TransformerModel::parameter_count() const {
  std::int64_t total = 0;
  for (const Parameter* p : parameters()) {
    total += p->quantized() ? p->qvalue.rows * p->qvalue.cols
                            : p->value.numel();
  }
  return total;
}

void TransformerModel::quantize_weights(DType dtype) {
  CA_CHECK(dtype == DType::kF16 || dtype == DType::kBF16 ||
               dtype == DType::kI8,
           "quantize_weights: unsupported dtype " << dtype_name(dtype));
  CA_CHECK(weight_dtype_ == DType::kF32,
           "model weights are already quantized (" <<
               dtype_name(weight_dtype_) << ")");
  cache_.reset();  // any pending training forward is void after this
  for (Parameter* p : parameters()) {
    if (p->value.rank() != 2) continue;  // rmsnorm vectors stay fp32
    p->qvalue = quantize_tensor(p->value, dtype);
    p->value = Tensor();
    p->grad = Tensor();
  }
  weight_dtype_ = dtype;
}

// -- forward
// ---------------------------------------------------------------------

Tensor TransformerModel::forward(const std::vector<TokenId>& tokens) {
  const auto t_len = static_cast<std::int64_t>(tokens.size());
  CA_CHECK(weight_dtype_ == DType::kF32,
           "training forward requires fp32 weights; this model was "
           "quantized to " << dtype_name(weight_dtype_)
                           << " for inference-only decode");
  CA_CHECK(t_len > 0, "forward on empty token sequence");
  CA_CHECK(t_len <= config_.max_seq_len,
           "sequence length " << t_len << " exceeds max_seq_len "
                              << config_.max_seq_len);

  cache_ = std::make_unique<ForwardCache>();
  cache_->tokens = tokens;
  cache_->blocks.resize(blocks_.size());

  const std::int64_t d = config_.d_model;
  const std::int64_t hd = config_.head_dim();
  const std::int64_t n_heads = config_.n_heads;
  const std::int64_t n_kv = config_.n_kv_heads;
  const std::int64_t group = n_heads / n_kv;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));

  // Embedding lookup.
  Tensor x({t_len, d});
  for (std::int64_t t = 0; t < t_len; ++t) {
    const TokenId id = tokens[static_cast<std::size_t>(t)];
    CA_CHECK(id >= 0 && id < config_.vocab_size, "token id " << id
             << " out of vocab");
    const auto src = embed_.value.row(id);
    auto dst = x.row(t);
    for (std::int64_t i = 0; i < d; ++i) {
      dst[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)];
    }
  }

  for (std::size_t layer = 0; layer < blocks_.size(); ++layer) {
    TransformerBlock& block = blocks_[layer];
    BlockCache& bc = cache_->blocks[layer];
    bc.x_in = x;

    bc.normed1 = rmsnorm_forward(bc.x_in, block.input_norm.value,
                                 config_.norm_eps, bc.inv_rms1);

    bc.q = linear_forward(bc.normed1, block.q_proj);
    bc.k = linear_forward(bc.normed1, block.k_proj);
    bc.v = linear_forward(bc.normed1, block.v_proj);

    // RoPE on q (per query head) and k (per kv head).
    for (std::int64_t t = 0; t < t_len; ++t) {
      for (std::int64_t h = 0; h < n_heads; ++h) {
        rotary_.apply(bc.q.row(t).subspan(static_cast<std::size_t>(h * hd),
                                          static_cast<std::size_t>(hd)),
                      t);
      }
      for (std::int64_t h = 0; h < n_kv; ++h) {
        rotary_.apply(bc.k.row(t).subspan(static_cast<std::size_t>(h * hd),
                                          static_cast<std::size_t>(hd)),
                      t);
      }
    }

    // Causal attention per head.
    bc.probs = Tensor({n_heads, t_len, t_len});
    bc.att_concat = Tensor({t_len, d});
    for (std::int64_t h = 0; h < n_heads; ++h) {
      const std::int64_t kvh = h / group;
      float* probs_h = bc.probs.data() + h * t_len * t_len;
      for (std::int64_t i = 0; i < t_len; ++i) {
        const float* q_i = bc.q.data() + i * d + h * hd;
        float* p_row = probs_h + i * t_len;
        // scores for j <= i
        for (std::int64_t j = 0; j <= i; ++j) {
          const float* k_j = bc.k.data() + j * (n_kv * hd) + kvh * hd;
          double acc = 0.0;
          for (std::int64_t u = 0; u < hd; ++u) {
            acc += static_cast<double>(q_i[u]) * k_j[u];
          }
          p_row[j] = static_cast<float>(acc) * scale;
        }
        ops::softmax_inplace(std::span<float>(p_row,
                                              static_cast<std::size_t>(i + 1)));
        for (std::int64_t j = i + 1; j < t_len; ++j) p_row[j] = 0.0F;

        // out_i = sum_j p_ij v_j
        float* out_i = bc.att_concat.data() + i * d + h * hd;
        for (std::int64_t j = 0; j <= i; ++j) {
          const float p = p_row[j];
          if (p == 0.0F) continue;
          const float* v_j = bc.v.data() + j * (n_kv * hd) + kvh * hd;
          for (std::int64_t u = 0; u < hd; ++u) out_i[u] += p * v_j[u];
        }
      }
    }

    const Tensor att_proj = linear_forward(bc.att_concat, block.o_proj);
    bc.x_mid = ops::add(bc.x_in, att_proj);

    bc.normed2 = rmsnorm_forward(bc.x_mid, block.post_norm.value,
                                 config_.norm_eps, bc.inv_rms2);
    bc.gate_pre = linear_forward(bc.normed2, block.gate_proj);
    bc.up_out = linear_forward(bc.normed2, block.up_proj);

    bc.h = Tensor(bc.gate_pre.shape());
    {
      const auto gate = bc.gate_pre.values();
      const auto up = bc.up_out.values();
      auto hv = bc.h.values();
      for (std::size_t i = 0; i < hv.size(); ++i) {
        hv[i] = gate[i] * sigmoid(gate[i]) * up[i];
      }
    }
    const Tensor mlp_out = linear_forward(bc.h, block.down_proj);
    x = ops::add(bc.x_mid, mlp_out);
  }

  cache_->x_final = x;
  cache_->normed_final = rmsnorm_forward(cache_->x_final, final_norm_.value,
                                         config_.norm_eps, cache_
                                             ->inv_rms_final);

  // Tied LM head: logits = normed_final @ embed^T.
  return ops::matmul_nt(cache_->normed_final, embed_.value);
}

// -- backward
// --------------------------------------------------------------------

void TransformerModel::backward(const Tensor& dlogits) {
  CA_CHECK(cache_ != nullptr, "backward() without a pending forward()");
  const auto t_len = static_cast<std::int64_t>(cache_->tokens.size());
  CA_CHECK(dlogits.rank() == 2 && dlogits.dim(0) == t_len &&
               dlogits.dim(1) == config_.vocab_size,
           "dlogits shape mismatch");

  const std::int64_t d = config_.d_model;
  const std::int64_t hd = config_.head_dim();
  const std::int64_t n_heads = config_.n_heads;
  const std::int64_t n_kv = config_.n_kv_heads;
  const std::int64_t group = n_heads / n_kv;
  const std::int64_t kv_dim = n_kv * hd;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));

  // LM head (tied weights): both the projection and the embedding gradient.
  Tensor dnormed_final = ops::matmul(dlogits, embed_.value);
  ops::matmul_tn_accum(dlogits, cache_->normed_final, embed_.grad);

  Tensor dx = rmsnorm_backward(cache_->x_final, cache_->inv_rms_final,
                               final_norm_, dnormed_final);

  for (std::size_t layer_plus1 =
       blocks_.size(); layer_plus1 > 0; --layer_plus1) {
    const std::size_t layer = layer_plus1 - 1;
    TransformerBlock& block = blocks_[layer];
    BlockCache& bc = cache_->blocks[layer];

    // ---- MLP branch ----
    // dx is the gradient at the block output = x_mid + mlp_out.
    Tensor dh = linear_backward(bc.h, block.down_proj, dx);

    Tensor dgate_pre(bc.gate_pre.shape());
    Tensor dup(bc.up_out.shape());
    {
      const auto gate = bc.gate_pre.values();
      const auto up = bc.up_out.values();
      const auto dhv = dh.values();
      auto dg = dgate_pre.values();
      auto du = dup.values();
      for (std::size_t i = 0; i < dhv.size(); ++i) {
        const float sg = sigmoid(gate[i]);
        const float silu = gate[i] * sg;
        du[i] = dhv[i] * silu;
        // d silu / d gate = sg * (1 + gate * (1 - sg))
        dg[i] = dhv[i] * up[i] * sg * (1.0F + gate[i] * (1.0F - sg));
      }
    }
    Tensor dnormed2 = linear_backward(bc.normed2, block.gate_proj, dgate_pre);
    ops::axpy(1.0F, linear_backward(bc.normed2, block.up_proj, dup).values(),
              dnormed2.values());

    Tensor dx_mid =
        rmsnorm_backward(bc.x_mid, bc.inv_rms2, block.post_norm, dnormed2);
    ops::axpy(1.0F, dx.values(), dx_mid.values());  // residual path

    // ---- attention branch ----
    Tensor datt_concat = linear_backward(bc.att_concat, block.o_proj, dx_mid);

    Tensor dq({t_len, d});
    Tensor dk({t_len, kv_dim});
    Tensor dv({t_len, kv_dim});
    for (std::int64_t h = 0; h < n_heads; ++h) {
      const std::int64_t kvh = h / group;
      const float* probs_h = bc.probs.data() + h * t_len * t_len;
      std::vector<float> dp(static_cast<std::size_t>(t_len));
      for (std::int64_t i = 0; i < t_len; ++i) {
        const float* dout_i = datt_concat.data() + i * d + h * hd;
        const float* p_row = probs_h + i * t_len;

        // dp_j = dout_i . v_j ; dv_j += p_ij * dout_i
        for (std::int64_t j = 0; j <= i; ++j) {
          const float* v_j = bc.v.data() + j * kv_dim + kvh * hd;
          float* dv_j = dv.data() + j * kv_dim + kvh * hd;
          double acc = 0.0;
          const float p = p_row[j];
          for (std::int64_t u = 0; u < hd; ++u) {
            acc += static_cast<double>(dout_i[u]) * v_j[u];
            dv_j[u] += p * dout_i[u];
          }
          dp[static_cast<std::size_t>(j)] = static_cast<float>(acc);
        }

        // softmax backward: ds_j = p_j * (dp_j - sum_k dp_k p_k)
        double inner = 0.0;
        for (std::int64_t j = 0; j <= i; ++j) {
          inner +=
              static_cast<double>(dp[static_cast<std::size_t>(j)]) * p_row[j];
        }
        // dq_i += scale * sum_j ds_j k_j ; dk_j += scale * ds_j q_i
        float* dq_i = dq.data() + i * d + h * hd;
        const float* q_i = bc.q.data() + i * d + h * hd;
        for (std::int64_t j = 0; j <= i; ++j) {
          const float ds =
              p_row[j] *
              (dp[static_cast<std::size_t>(j)] - static_cast<float>(inner));
          if (ds == 0.0F) continue;
          const float* k_j = bc.k.data() + j * kv_dim + kvh * hd;
          float* dk_j = dk.data() + j * kv_dim + kvh * hd;
          const float ds_scaled = ds * scale;
          for (std::int64_t u = 0; u < hd; ++u) {
            dq_i[u] += ds_scaled * k_j[u];
            dk_j[u] += ds_scaled * q_i[u];
          }
        }
      }
    }

    // Undo RoPE on the gradients (inverse rotation).
    for (std::int64_t t = 0; t < t_len; ++t) {
      for (std::int64_t h = 0; h < n_heads; ++h) {
        rotary_.apply_inverse(
            dq.row(t).subspan(static_cast<std::size_t>(h * hd),
                              static_cast<std::size_t>(hd)),
            t);
      }
      for (std::int64_t h = 0; h < n_kv; ++h) {
        rotary_.apply_inverse(
            dk.row(t).subspan(static_cast<std::size_t>(h * hd),
                              static_cast<std::size_t>(hd)),
            t);
      }
    }

    Tensor dnormed1 = linear_backward(bc.normed1, block.q_proj, dq);
    ops::axpy(1.0F, linear_backward(bc.normed1, block.k_proj, dk).values(),
              dnormed1.values());
    ops::axpy(1.0F, linear_backward(bc.normed1, block.v_proj, dv).values(),
              dnormed1.values());

    Tensor dx_in =
        rmsnorm_backward(bc.x_in, bc.inv_rms1, block.input_norm, dnormed1);
    ops::axpy(1.0F, dx_mid.values(), dx_in.values());  // residual path
    dx = std::move(dx_in);
  }

  // Embedding scatter-add.
  for (std::int64_t t = 0; t < t_len; ++t) {
    const TokenId id = cache_->tokens[static_cast<std::size_t>(t)];
    auto grad_row = embed_.grad.row(id);
    const auto dx_row = dx.row(t);
    for (std::size_t i = 0; i < grad_row.size(); ++i) grad_row[i] += dx_row[i];
  }

  cache_.reset();
}

// -- checkpoint interop
// -----------------------------------------------------------

Checkpoint TransformerModel::to_checkpoint() const {
  std::map<std::string, Tensor> tensors;
  for (const Parameter* p : parameters()) {
    tensors.emplace(p->name, p->quantized() ? dequantize_tensor(p->qvalue)
                                            : p->value);
  }
  return Checkpoint(config_, std::move(tensors));
}

TransformerModel TransformerModel::from_checkpoint(
    const Checkpoint& checkpoint) {
  TransformerModel model(checkpoint.config());
  model.load_weights(checkpoint);
  return model;
}

void TransformerModel::load_weights(const Checkpoint& checkpoint) {
  CA_CHECK(weight_dtype_ == DType::kF32,
           "load_weights on a quantized model; build a fresh model from the "
           "checkpoint instead");
  auto params = parameters();
  CA_CHECK(checkpoint.tensors().size() == params.size(),
           "checkpoint has " << checkpoint.tensors().size()
                             << " tensors, model expects " << params.size());
  for (Parameter* p : params) {
    const Tensor& src = checkpoint.at(p->name);
    CA_CHECK(src.same_shape(p->value),
             "tensor '" << p->name << "' shape mismatch: checkpoint "
                        << shape_to_string(src.shape()) << " vs model "
                        << shape_to_string(p->value.shape()));
    p->value = src;
    p->grad = Tensor(src.shape());
  }
}

}  // namespace chipalign
