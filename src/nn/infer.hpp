#pragma once
/// \file infer.hpp
/// \brief Incremental (KV-cache) inference and text generation.
///
/// InferenceSession keeps per-layer key/value caches so each new token costs
/// O(T) attention instead of re-running the full sequence. The generation
/// helpers below are what every benchmark harness uses to get model
/// responses; temperature 0 (greedy) matches the paper's evaluation setup.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nn/transformer.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Stateful single-sequence decoder over a fixed model.
class InferenceSession {
 public:
  explicit InferenceSession(const TransformerModel& model);

  /// Feeds one token at the current position; returns the logits row
  /// (vocab_size floats) for predicting the next token.
  std::vector<float> step(TokenId token);

  /// Feeds a whole prompt; returns the logits after its last token.
  /// The prompt must be non-empty.
  std::vector<float> prefill(const std::vector<TokenId>& tokens);

  /// Tokens consumed so far.
  std::int64_t position() const { return position_; }

  /// Clears the KV cache and resets the position to zero.
  void reset();

 private:
  const TransformerModel& model_;
  std::int64_t position_ = 0;
  // Per layer: [max_seq_len, kv_dim] caches, flattened.
  std::vector<std::vector<float>> k_cache_;
  std::vector<std::vector<float>> v_cache_;
};

/// Options for generate().
struct GenerateOptions {
  std::int64_t max_new_tokens = 128;
  double temperature = 0.0;  ///< 0 => greedy decoding
  std::uint64_t seed = 7;    ///< used only when temperature > 0
};

/// Generates a continuation of `prompt` (encoded with <bos>), stopping at
/// <eos>, a '\n' if stop_at_newline, or the token budget. Returns decoded
/// text without the prompt.
std::string generate(const TransformerModel& model, std::string_view prompt,
                     const GenerateOptions& options = {},
                     bool stop_at_newline = false);

/// Sum of log-probabilities of `continuation` tokens given `context`
/// (teacher-forced). Both sequences are raw token ids; context must be
/// non-empty.
double sequence_logprob(const TransformerModel& model,
                        const std::vector<TokenId>& context,
                        const std::vector<TokenId>& continuation);

/// Average per-token log-probability of the continuation (length
/// normalized); used by the multiple-choice evaluator.
double mean_logprob(const TransformerModel& model,
                    const std::vector<TokenId>& context,
                    const std::vector<TokenId>& continuation);

}  // namespace chipalign
