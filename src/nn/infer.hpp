#pragma once
/// \file infer.hpp
/// \brief Incremental (KV-cache) inference and text generation.
///
/// InferenceSession keeps per-layer key/value caches so each new token costs
/// O(T) attention instead of re-running the full sequence. Every projection
/// in the decode step runs on the tensor kernel layer (kernels::matvec /
/// kernels::parallel_matvec), so logits are bit-identical across backends
/// and thread counts (see kernels.hpp for the reduction contract). The
/// session owns a reusable scratch arena and a lazily-initialized KV cache:
/// positions >= position() are never read, so neither construction nor
/// reset() pays an O(n_layers * max_seq_len * kv_dim) zero-fill.
///
/// The generation helpers below are what every benchmark harness uses to
/// get model responses; temperature 0 (greedy) matches the paper's
/// evaluation setup.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nn/transformer.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Stateful single-sequence decoder over a fixed model.
class InferenceSession {
 public:
  /// Compact copy of a session's KV state at some position, taken with
  /// snapshot() and re-installed with restore(). Only the first position()
  /// entries of each layer cache are stored, so a snapshot after a shared
  /// prompt is cheap to hold while scoring many continuations from it.
  struct Snapshot {
    std::int64_t position = 0;
    std::vector<float> k;  ///< [n_layers, position, kv_dim], flattened
    std::vector<float> v;
  };

  explicit InferenceSession(const TransformerModel& model);

  /// Feeds one token at the current position; returns the logits row
  /// (vocab_size floats) for predicting the next token. The reference
  /// aliases session-owned scratch: it is overwritten by the next step()
  /// (copy it if it must outlive that).
  const std::vector<float>& step(TokenId token);

  /// Feeds a whole prompt; returns (a copy of) the logits after its last
  /// token. The prompt must be non-empty.
  std::vector<float> prefill(const std::vector<TokenId>& tokens);

  /// Tokens consumed so far.
  std::int64_t position() const { return position_; }

  /// Resets the position to zero. O(1): the KV cache is not cleared because
  /// positions at or beyond the current position are never read.
  void reset();

  /// Copies the live prefix of the KV cache (everything up to position()).
  Snapshot snapshot() const;

  /// Reinstalls a snapshot taken from a session over the same model,
  /// rewinding (or advancing) the position to the snapshot's. Subsequent
  /// steps produce bitwise-identical logits to a fresh session re-fed the
  /// snapshot's tokens.
  void restore(const Snapshot& snap);

 private:
  const TransformerModel& model_;
  std::int64_t position_ = 0;
  std::int64_t kv_dim_ = 0;
  std::int64_t layer_stride_ = 0;  ///< max_seq_len * kv_dim floats per layer

  // Per layer: [max_seq_len, kv_dim] caches, flattened into one block each.
  // Deliberately not value-initialized — entries past position_ are dead.
  std::unique_ptr<float[]> k_cache_;
  std::unique_ptr<float[]> v_cache_;

  // Scratch arena, sized once at construction and reused by every step().
  std::vector<float> x_;       ///< residual stream [d]
  std::vector<float> normed_;  ///< RMSNorm output [d]
  std::vector<float> q_;       ///< query heads [d]
  std::vector<float> att_;     ///< attention output [d]
  std::vector<float> proj_;    ///< o/down projection output [d]
  std::vector<float> gate_;    ///< SwiGLU gate [d_ff]
  std::vector<float> up_;      ///< SwiGLU up [d_ff]
  std::vector<float> scores_;  ///< attention scores [max_seq_len]
  std::vector<float> logits_;  ///< LM-head output [vocab]
};

/// Options for generate().
struct GenerateOptions {
  std::int64_t max_new_tokens = 128;
  double temperature = 0.0;  ///< 0 => greedy decoding
  std::uint64_t seed = 7;    ///< used only when temperature > 0
};

/// Generates a continuation of `prompt` (encoded with <bos>), stopping at
/// <eos>, a '\n' if stop_at_newline, or the token budget. Returns decoded
/// text without the prompt.
std::string generate(const TransformerModel& model, std::string_view prompt,
                     const GenerateOptions& options = {},
                     bool stop_at_newline = false);

/// Draws an index from the categorical distribution `probs` given a uniform
/// draw u in [0, 1). The CDF walk renormalizes by the actual sum of probs,
/// so floating-point rounding can never fall off the end of the
/// distribution and silently select the last index regardless of its
/// probability; a zero-probability index is never returned. Exposed for
/// generate()'s temperature sampling and its tests.
std::int64_t sample_from_probs(std::span<const float> probs, double u);

/// Sum of log-probabilities of `continuation` tokens given `context`
/// (teacher-forced). Both sequences are raw token ids; context must be
/// non-empty.
double sequence_logprob(const TransformerModel& model,
                        const std::vector<TokenId>& context,
                        const std::vector<TokenId>& continuation);

/// Teacher-forced sum of continuation log-probabilities on an existing
/// session. `logits` must be the row predicting continuation[0] (i.e. the
/// output of the step/prefill that consumed the context); the session is
/// advanced by continuation.size() - 1 steps. Combined with
/// InferenceSession::snapshot()/restore(), this lets a harness prefill a
/// shared context once and score many continuations from it, bit-identical
/// to re-prefilling per continuation.
double continuation_logprob(InferenceSession& session,
                            std::span<const float> logits,
                            const std::vector<TokenId>& continuation);

/// Average per-token log-probability of the continuation (length
/// normalized); used by the multiple-choice evaluator.
double mean_logprob(const TransformerModel& model,
                    const std::vector<TokenId>& context,
                    const std::vector<TokenId>& continuation);

}  // namespace chipalign
