#pragma once
/// \file infer.hpp
/// \brief Incremental (KV-cache) inference and text generation.
///
/// InferenceSession keeps per-layer key/value caches so each new token costs
/// O(T) attention instead of re-running the full sequence. It is a thin
/// single-sequence wrapper over the Model/session split used by the serving
/// engine (src/serve): the immutable TransformerModel is shared, while all
/// mutable state lives in a SessionState (session_state.hpp) and the decode
/// math in decode_step() (decode.hpp). Every projection runs on the tensor
/// kernel layer, so logits are bit-identical across backends and thread
/// counts (see kernels.hpp for the reduction contract). The KV cache is
/// lazily initialized: positions >= position() are never read, so neither
/// construction nor reset() pays an O(n_layers * max_seq_len * kv_dim)
/// zero-fill.
///
/// The generation helpers below are what every benchmark harness uses to
/// get model responses; temperature 0 (greedy) matches the paper's
/// evaluation setup.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nn/decode.hpp"
#include "nn/session_state.hpp"
#include "nn/transformer.hpp"
#include "util/rng.hpp"

namespace chipalign {

/// Stateful single-sequence decoder over a fixed model.
class InferenceSession {
 public:
  /// Compact copy of a session's KV state at some position, taken with
  /// snapshot() and re-installed with restore(). Only the first position()
  /// entries of each layer cache are stored, so a snapshot after a shared
  /// prompt is cheap to hold while scoring many continuations from it. The
  /// cache geometry rides along so restore() can reject a snapshot taken
  /// over a differently-shaped model instead of corrupting the cache.
  struct Snapshot {
    std::int64_t position = 0;
    std::int64_t n_layers = 0;
    std::int64_t kv_dim = 0;
    std::vector<float> k;  ///< [n_layers, position, kv_dim], flattened
    std::vector<float> v;
  };

  explicit InferenceSession(const TransformerModel& model);

  /// Feeds one token at the current position; returns the logits row
  /// (vocab_size floats) for predicting the next token. The reference
  /// aliases session-owned scratch: it is overwritten by the next step()
  /// (copy it if it must outlive that).
  const std::vector<float>& step(TokenId token);

  /// Feeds a whole prompt; returns (a copy of) the logits after its last
  /// token. The prompt must be non-empty.
  std::vector<float> prefill(const std::vector<TokenId>& tokens);

  /// Speculative verify: feeds all T = tokens.size() tokens in ONE
  /// verify_step() pass and returns their logits rows, row-major
  /// [T, vocab]. Row t is bit-identical to what the t-th of T serial
  /// step() calls would return. Advances position() by T; rewind rejected
  /// suffix rows with truncate(). The span aliases session-owned scratch
  /// (overwritten by the next step/verify).
  std::span<const float> verify(std::span<const TokenId> tokens);

  /// Rewinds to `pos` in [0, position()], discarding later tokens. O(1):
  /// the lazily-initialized KV rows past the position are simply dead.
  /// Re-decoding from a truncated position is bitwise identical to a
  /// session that never consumed the discarded tokens.
  void truncate(std::int64_t pos);

  /// Tokens consumed so far.
  std::int64_t position() const { return state_.position; }

  /// KV rows this session can hold (the model's max_seq_len).
  std::int64_t capacity() const { return state_.capacity; }

  /// Model vocabulary size (the width of a logits row).
  std::int64_t vocab_size() const { return model_.config().vocab_size; }

  /// Resets the position to zero. O(1): the KV cache is not cleared because
  /// positions at or beyond the current position are never read.
  void reset();

  /// Copies the live prefix of the KV cache (everything up to position()).
  Snapshot snapshot() const;

  /// Reinstalls a snapshot taken from a session over the same model,
  /// rewinding (or advancing) the position to the snapshot's. Subsequent
  /// steps produce bitwise-identical logits to a fresh session re-fed the
  /// snapshot's tokens. Throws Error (with the offending dimensions in the
  /// message) when the snapshot's position exceeds this session's cache
  /// capacity or its layer/kv geometry does not match this model.
  void restore(const Snapshot& snap);

 private:
  const TransformerModel& model_;
  SessionState state_;
  DecodeScratch scratch_;      ///< batch-1 decode arena
  std::vector<float> logits_;  ///< LM-head output [vocab]
  /// Multi-token verify arena, grown on first verify() past one token.
  std::unique_ptr<DecodeScratch> verify_scratch_;
  std::vector<float> verify_logits_;  ///< [T, vocab] verify output
};

/// Options for generate().
struct GenerateOptions {
  std::int64_t max_new_tokens = 128;
  double temperature = 0.0;  ///< 0 => greedy decoding
  std::uint64_t seed = 7;    ///< used only when temperature > 0

  // Speculative decoding (nn/spec_decode.hpp). Greedy acceptance keeps the
  // output byte-identical to non-speculative greedy decoding, so this is a
  // pure throughput knob; it only engages when temperature <= 0.
  bool speculative = false;    ///< draft+verify instead of one-token steps
  std::int64_t draft_k = 4;    ///< draft tokens proposed per verify pass
  std::int64_t ngram_min = 1;  ///< prompt-lookup shortest suffix n-gram
  std::int64_t ngram_max = 3;  ///< prompt-lookup longest suffix n-gram
};

/// Generates a continuation of `prompt` (encoded with <bos>), stopping at
/// <eos>, a '\n' if stop_at_newline, or the token budget. Returns decoded
/// text without the prompt. With options.speculative and greedy sampling
/// the byte-identical speculative path runs instead (spec_decode.hpp);
/// temperature > 0 always takes the plain sampling loop.
std::string generate(const TransformerModel& model, std::string_view prompt,
                     const GenerateOptions& options = {},
                     bool stop_at_newline = false);

/// Draws an index from the categorical distribution `probs` given a uniform
/// draw u in [0, 1). The CDF walk renormalizes by the actual sum of probs,
/// so floating-point rounding can never fall off the end of the
/// distribution and silently select the last index regardless of its
/// probability; a zero-probability index is never returned. Exposed for
/// generate()'s temperature sampling and its tests.
std::int64_t sample_from_probs(std::span<const float> probs, double u);

/// Sum of log-probabilities of `continuation` tokens given `context`
/// (teacher-forced). Both sequences are raw token ids; context must be
/// non-empty.
double sequence_logprob(const TransformerModel& model,
                        const std::vector<TokenId>& context,
                        const std::vector<TokenId>& continuation);

/// Teacher-forced sum of continuation log-probabilities on an existing
/// session. `logits` must be the row predicting continuation[0] (i.e. the
/// output of the step/prefill that consumed the context); the session is
/// advanced by continuation.size() - 1 steps. Combined with
/// InferenceSession::snapshot()/restore(), this lets a harness prefill a
/// shared context once and score many continuations from it, bit-identical
/// to re-prefilling per continuation.
double continuation_logprob(InferenceSession& session,
                            std::span<const float> logits,
                            const std::vector<TokenId>& continuation);

/// Average per-token log-probability of the continuation (length
/// normalized); used by the multiple-choice evaluator.
double mean_logprob(const TransformerModel& model,
                    const std::vector<TokenId>& context,
                    const std::vector<TokenId>& continuation);

}  // namespace chipalign
