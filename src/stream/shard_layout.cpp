#include "stream/shard_layout.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>

#include "io/json.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"

namespace chipalign {

std::string shard_file_name(std::size_t index, std::size_t count) {
  CA_CHECK(index >= 1 && index <= count,
           "shard index " << index << " out of range 1.." << count);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "model-%05zu-of-%05zu.safetensors",
                index, count);
  return buffer;
}

std::vector<std::string> ShardIndex::shard_files() const {
  std::set<std::string> files;
  for (const auto& [name, file] : weight_map) files.insert(file);
  return {files.begin(), files.end()};
}

std::string ShardIndex::to_json_text() const {
  Json root = Json::object();
  Json meta = Json::object();
  meta.set("total_size", Json(static_cast<std::int64_t>(total_size)));
  for (const auto& [key, value] : metadata) meta.set(key, Json(value));
  root.set("metadata", std::move(meta));
  Json weights = Json::object();
  for (const auto& [name, file] : weight_map) weights.set(name, Json(file));
  root.set("weight_map", std::move(weights));
  if (!checksums.empty()) {
    Json sums = Json::object();
    for (const auto& [name, hex] : checksums) sums.set(name, Json(hex));
    root.set("checksums", std::move(sums));
  }
  return root.dump();
}

std::string ShardIndex::save(const std::string& dir) const {
  // The manifest is what marks a sharded checkpoint complete, so it must
  // never exist in a torn state: durable temp-write + rename, not an
  // in-place overwrite.
  const std::string path = dir + "/" + kShardIndexFileName;
  CA_FAILPOINT("index.save");
  fs_io::atomic_write_file(path, to_json_text());
  return path;
}

ShardIndex ShardIndex::load(const std::string& index_path) {
  std::ifstream file(index_path, std::ios::binary);
  CA_CHECK(file.good(), "cannot open shard index '" << index_path << "'");
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  Json root;
  try {
    root = Json::parse(text);
  } catch (const Error& e) {
    // A truncated or garbled manifest usually means the writing process
    // died mid-save (pre-durable-write tooling) — say so, with the path.
    CA_THROW("shard index '" << index_path
                             << "' is truncated or corrupt: " << e.what());
  }
  CA_CHECK(root.is_object(), "shard index is not a JSON object");
  CA_CHECK(root.contains("weight_map"),
           "shard index '" << index_path << "' lacks weight_map");

  ShardIndex out;
  for (const auto& [name, file_name] : root.at("weight_map").members()) {
    out.weight_map[name] = file_name.as_string();
  }
  if (root.contains("metadata")) {
    for (const auto& [key, value] : root.at("metadata").members()) {
      if (key == "total_size") {
        out.total_size = static_cast<std::uint64_t>(value.as_int());
      } else {
        out.metadata[key] = value.as_string();
      }
    }
  }
  if (root.contains("checksums")) {
    for (const auto& [name, hex] : root.at("checksums").members()) {
      out.checksums[name] = hex.as_string();
    }
  }
  return out;
}

ShardPlan plan_shards(const std::vector<std::pair<std::string, Shape>>& entries,
                      DType storage, std::uint64_t shard_size_bytes) {
  // First pass: greedy partition into groups of at most shard_size_bytes.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::uint64_t> sizes(entries.size());
  std::uint64_t group_bytes = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [name, shape] = entries[i];
    CA_CHECK(i == 0 || entries[i - 1].first < name,
             "plan_shards input must be name-sorted and duplicate-free; saw '"
                 << entries[i - 1].first << "' before '" << name << "'");
    sizes[i] =
        static_cast<std::uint64_t>(shape_numel(shape)) * dtype_size(storage);
    const bool roll = !groups.empty() && !groups.back().empty() &&
                      shard_size_bytes > 0 &&
                      group_bytes + sizes[i] > shard_size_bytes;
    if (groups.empty() || roll) {
      groups.emplace_back();
      group_bytes = 0;
    }
    groups.back().push_back(i);
    group_bytes += sizes[i];
  }
  // Empty checkpoint: still emit one (empty) shard.
  if (groups.empty()) groups.emplace_back();

  // Second pass: materialize the plan now that the shard count is known.
  ShardPlan plan;
  plan.shards.resize(groups.size());
  for (std::size_t s = 0; s < groups.size(); ++s) {
    ShardPlanShard& shard = plan.shards[s];
    shard.filename = shard_file_name(s + 1, groups.size());
    std::uint64_t offset = 0;
    for (std::size_t i : groups[s]) {
      const auto& [name, shape] = entries[i];
      SafetensorsTensorInfo info;
      info.dtype = storage;
      info.shape = shape;
      info.begin = offset;
      info.end = offset + sizes[i];
      offset = info.end;
      shard.tensors.emplace(name, std::move(info));
      plan.shard_of.emplace(name, s);
    }
    shard.data_size = offset;
    plan.total_size += offset;
  }
  return plan;
}

}  // namespace chipalign
