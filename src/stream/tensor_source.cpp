#include "stream/tensor_source.hpp"

#include <filesystem>
#include <fstream>

#include "io/safetensors.hpp"
#include "model/checkpoint.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

std::uint64_t TensorSource::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& name : names()) total += record(name).byte_size();
  return total;
}

namespace {

/// Adds every tensor of one shard file's header to the record map,
/// restricted to `wanted` when non-null (manifest mode).
void index_shard(const std::string& shard_path,
                 const std::map<std::string, std::string>* wanted_files,
                 const std::string& shard_file_name,
                 std::map<std::string, TensorRecord>& records) {
  const SafetensorsHeader header = read_safetensors_header(shard_path);
  for (const auto& [name, info] : header.tensors) {
    if (wanted_files != nullptr) {
      const auto it = wanted_files->find(name);
      // Tensors present in the shard but absent from the manifest are
      // ignored (foreign tooling may pack extras).
      if (it == wanted_files->end() || it->second != shard_file_name) continue;
    }
    TensorRecord rec;
    rec.file = shard_path;
    rec.dtype = info.dtype;
    rec.shape = info.shape;
    rec.begin = header.data_begin + info.begin;
    rec.end = header.data_begin + info.end;
    CA_CHECK(records.emplace(name, std::move(rec)).second,
             "tensor '" << name << "' appears in more than one shard");
  }
}

}  // namespace

ShardedTensorSource ShardedTensorSource::open(const std::string& path) {
  namespace fs = std::filesystem;
  ShardedTensorSource source;

  std::string index_path;
  if (fs::is_directory(path)) {
    index_path = (fs::path(path) / kShardIndexFileName).string();
    CA_CHECK(fs::exists(index_path),
             "directory '" << path << "' has no " << kShardIndexFileName);
  } else if (ends_with(path, ".index.json")) {
    index_path = path;
  }

  if (index_path.empty()) {
    // Single-file checkpoint: one unnamed shard.
    const SafetensorsHeader header = read_safetensors_header(path);
    source.metadata_ = header.metadata;
    source.shard_count_ = 1;
    index_shard(path, nullptr, "", source.records_);
  } else {
    const ShardIndex index = ShardIndex::load(index_path);
    source.metadata_ = index.metadata;
    source.checksums_ = index.checksums;
    const fs::path dir = fs::path(index_path).parent_path();
    const std::vector<std::string> shard_files = index.shard_files();
    source.shard_count_ = shard_files.size();
    for (const std::string& file : shard_files) {
      const std::string shard_path = (dir / file).string();
      CA_CHECK(fs::exists(shard_path),
               "shard index references missing shard '" << file
                   << "' (looked at '"
                   << shard_path << "')");
      index_shard(shard_path, &index.weight_map, file, source.records_);
    }
    for (const auto& [name, file] : index.weight_map) {
      CA_CHECK(source.records_.count(name) > 0,
               "tensor '" << name
                   << "' listed in the shard index is absent from shard '"
                   << file << "'");
    }
  }

  source.names_.reserve(source.records_.size());
  for (const auto& [name, rec] : source.records_) source.names_.push_back(name);
  return source;
}

const TensorRecord& ShardedTensorSource::record(const std::string& name) const {
  const auto it = records_.find(name);
  CA_CHECK(it != records_.end(), "source has no tensor '" << name << "'");
  return it->second;
}

std::vector<std::uint8_t> ShardedTensorSource::read_bytes(
    const std::string& name) const {
  const TensorRecord& rec = record(name);
  // A fresh stream per call keeps reads thread-safe with no shared state;
  // the OS page cache makes reopening cheap.
  CA_FAILPOINT("source.open");
  std::ifstream file(rec.file, std::ios::binary);
  CA_CHECK(file.good(), "cannot open shard '" << rec.file << "' for reading");
  file.seekg(static_cast<std::streamoff>(rec.begin), std::ios::beg);
  std::vector<std::uint8_t> bytes(rec.byte_size());
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  // A short or failed read is transient (network filesystems return these
  // under load); the caller's RetryPolicy may re-read. Structural problems
  // (missing tensor, bad header) stay permanent Errors.
  std::size_t got = file.good() || bytes.empty()
                        ? bytes.size()
                        : static_cast<std::size_t>(std::max<std::streamsize>(
                              file.gcount(), 0));
  got = failpoint::eval_io("source.read", bytes.data(), got);
  if (got != bytes.size()) {
    CA_THROW_AS(TransientIoError,
                "short read for tensor '" << name << "' in '" << rec.file
                                          << "': got " << got << " of "
                                          << bytes.size() << " bytes");
  }
  return bytes;
}

Tensor ShardedTensorSource::read(const std::string& name) const {
  const TensorRecord& rec = record(name);
  const std::vector<std::uint8_t> bytes = read_bytes(name);
  return decode_tensor_bytes(bytes.data(), bytes.size(), rec.dtype, rec.shape);
}

Checkpoint load_sharded_checkpoint(const std::string& path) {
  const ShardedTensorSource source = ShardedTensorSource::open(path);
  Checkpoint ckpt;
  ckpt.config() = config_from_metadata(source.metadata(), path);
  for (const std::string& name : source.names()) {
    ckpt.put(name, source.read(name));
  }
  return ckpt;
}

void check_sources_mergeable(const TensorSource& a, const TensorSource& b) {
  CA_CHECK(a.names().size() == b.names().size(),
           "sources have different tensor counts: " << a.names().size()
                                                    << " vs "
                                                        << b.names().size());
  for (std::size_t i = 0; i < a.names().size(); ++i) {
    const std::string& name_a = a.names()[i];
    const std::string& name_b = b.names()[i];
    CA_CHECK(name_a == name_b,
             "tensor name mismatch: '" << name_a << "' vs '" << name_b << "'");
    const TensorRecord& rec_a = a.record(name_a);
    const TensorRecord& rec_b = b.record(name_a);
    CA_CHECK(rec_a.shape == rec_b.shape,
             "tensor '" << name_a << "' shape mismatch: "
                        << shape_to_string(rec_a.shape) << " vs "
                        << shape_to_string(rec_b.shape));
  }
}

}  // namespace chipalign
