#include "stream/shard_writer.hpp"

#include <filesystem>

#include "io/safetensors.hpp"
#include "model/checkpoint.hpp"
#include "stream/tensor_source.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"
#include "util/hash.hpp"

namespace chipalign {

namespace {

/// 8-byte little-endian header-length prefix.
void write_header_prefix(std::fstream& file, std::uint64_t header_len) {
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>((header_len >> (8 * i)) & 0xFF);
  }
  file.write(reinterpret_cast<const char*>(len_bytes), 8);
}

/// True when `path` exists with exactly `expected_size` bytes and starts
/// with the expected length prefix + header text.
bool file_matches_header(const std::string& path, const std::string& header,
                         std::uint64_t expected_size) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_regular_file(path, ec) || fs::file_size(path,
                                                      ec) != expected_size) {
    return false;
  }
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return false;
  std::string lead(8 + header.size(), '\0');
  file.read(lead.data(), static_cast<std::streamsize>(lead.size()));
  if (!file.good()) return false;
  std::uint64_t header_len = 0;
  for (int i = 7; i >= 0; --i) {
    header_len = (header_len << 8) | static_cast<std::uint8_t>(lead[i]);
  }
  return header_len == header.size() && lead.substr(8) == header;
}

}  // namespace

ShardSetWriter::ShardSetWriter(std::string out_dir, ShardPlan plan,
                               std::map<std::string, std::string> metadata,
                               bool resume)
    : out_dir_(std::move(out_dir)),
      plan_(std::move(plan)),
      metadata_(std::move(metadata)) {
  namespace fs = std::filesystem;
  fs::create_directories(out_dir_);

  header_texts_.reserve(plan_.shards.size());
  files_.reserve(plan_.shards.size());
  kept_.assign(plan_.shards.size(), false);

  for (std::size_t s = 0; s < plan_.shards.size(); ++s) {
    const ShardPlanShard& shard = plan_.shards[s];
    header_texts_.push_back(
        build_safetensors_header_text(shard.tensors, metadata_));
    const std::string& header = header_texts_.back();
    const std::string path = out_dir_ + "/" + shard.filename;
    const std::uint64_t expected_size = 8 + header.size() + shard.data_size;

    kept_[s] = resume && file_matches_header(path, header, expected_size);
    if (!kept_[s]) {
      CA_FAILPOINT("shard.create");
      // Create/truncate, write the header, and pre-size the file so later
      // offset writes never extend it (and resume-validation can trust the
      // file size).
      std::ofstream create(path, std::ios::binary | std::ios::trunc);
      CA_CHECK(create.good(), "cannot create shard '" << path << "'");
      create.close();
    }
    auto file = std::make_unique<std::fstream>(
        path, std::ios::binary | std::ios::in | std::ios::out);
    CA_CHECK(file->good(), "cannot open shard '" << path << "' for writing");
    if (!kept_[s]) {
      write_header_prefix(*file, header.size());
      file->write(header.data(), static_cast<std::streamsize>(header.size()));
      if (shard.data_size > 0) {
        file->seekp(static_cast<std::streamoff>(expected_size - 1));
        const char zero = 0;
        file->write(&zero, 1);
      }
      file->flush();
      CA_CHECK(file->good(), "failed to initialize shard '" << path << "'");
    }
    files_.push_back(std::move(file));
  }
}

void ShardSetWriter::write_tensor(const std::string& name,
                                  const std::vector<std::uint8_t>& bytes) {
  const auto it = plan_.shard_of.find(name);
  CA_CHECK(it != plan_.shard_of.end(), "tensor '" << name
           << "' is not in the plan");
  const std::size_t s = it->second;
  const ShardPlanShard& shard = plan_.shards[s];
  const SafetensorsTensorInfo& info = shard.tensors.at(name);
  CA_CHECK(bytes.size() == info.byte_size(),
           "tensor '" << name << "' byte count " << bytes.size()
                      << " does not match planned " << info.byte_size());

  std::lock_guard<std::mutex> lock(mutex_);
  CA_CHECK(!finished_, "write_tensor after finish()");
  CA_CHECK(written_.insert(name).second,
           "tensor '" << name << "' written twice");
  CA_FAILPOINT("shard.write");
  std::fstream& file = *files_[s];
  const std::uint64_t offset = 8 + header_texts_[s].size() + info.begin;
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  file.flush();
  CA_CHECK(file.good(), "write failed for tensor '" << name << "' in shard '"
                            << shard.filename << "'");
}

void ShardSetWriter::mark_written(const std::string& name) {
  CA_CHECK(plan_.shard_of.count(name) > 0,
           "tensor '" << name << "' is not in the plan");
  std::lock_guard<std::mutex> lock(mutex_);
  CA_CHECK(!finished_, "mark_written after finish()");
  // A double mark would silently inflate written_count() toward finish()'s
  // completeness check, letting a merge finish with a tensor never written.
  CA_CHECK(written_.insert(name).second,
           "tensor '" << name << "' marked written twice");
}

std::size_t ShardSetWriter::written_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_.size();
}

std::string ShardSetWriter::finish(
    const std::map<std::string, std::string>& checksums) {
  std::lock_guard<std::mutex> lock(mutex_);
  CA_CHECK(!finished_, "finish() called twice");
  CA_CHECK(written_.size() == plan_.tensor_count(),
           "finish() with " << written_.size() << " of " << plan_.tensor_count()
                            << " tensors written");
  for (std::size_t s = 0; s < files_.size(); ++s) {
    std::fstream& file = *files_[s];
    file.flush();
    CA_CHECK(file.good(), "shard flush failed");
    file.close();
    // Shard bytes must be on stable storage before the manifest that
    // vouches for them exists (write-ahead ordering).
    CA_FAILPOINT("shard.fsync");
    fs_io::fsync_path(out_dir_ + "/" + plan_.shards[s].filename);
  }
  finished_ = true;

  ShardIndex index;
  index.metadata = metadata_;
  index.total_size = plan_.total_size;
  index.checksums = checksums;
  for (const auto& [name, s] : plan_.shard_of) {
    index.weight_map[name] = plan_.shards[s].filename;
  }
  return index.save(out_dir_);
}

std::string save_sharded_checkpoint(const std::string& dir,
                                    const Checkpoint& checkpoint,
                                    std::uint64_t shard_size_bytes,
                                    DType storage) {
  std::vector<std::pair<std::string, Shape>> entries;
  entries.reserve(checkpoint.tensors().size());
  for (const auto& [name, tensor] : checkpoint.tensors()) {
    entries.emplace_back(name, tensor.shape());
  }
  ShardPlan plan = plan_shards(entries, storage, shard_size_bytes);
  ShardSetWriter writer(dir, std::move(plan),
                        checkpoint_metadata(checkpoint.config()));
  std::map<std::string, std::string> checksums;
  for (const auto& [name, tensor] : checkpoint.tensors()) {
    const std::vector<std::uint8_t> bytes = encode_tensor_bytes(tensor,
                                                                storage);
    checksums[name] = hash_to_hex(xxh64(bytes.data(), bytes.size()));
    writer.write_tensor(name, bytes);
  }
  return writer.finish(checksums);
}

std::vector<std::string> verify_sharded_checkpoint(const std::string& path) {
  const ShardedTensorSource source = ShardedTensorSource::open(path);
  std::vector<std::string> mismatches;
  for (const std::string& name : source.names()) {
    const auto it = source.checksums().find(name);
    if (it == source.checksums().end()) continue;
    const std::vector<std::uint8_t> bytes = source.read_bytes(name);
    if (hash_to_hex(xxh64(bytes.data(), bytes.size())) != it->second) {
      mismatches.push_back(name);
    }
  }
  return mismatches;
}

}  // namespace chipalign
