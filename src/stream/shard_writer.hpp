#pragma once
/// \file shard_writer.hpp
/// \brief Random-access writer for a planned set of output shards.
///
/// The writer takes a fixed ShardPlan, emits every shard's safetensors
/// header up front, and then accepts tensor bytes in ANY completion order,
/// writing each at its planned offset. Memory stays O(1) per tensor: a
/// tensor's bytes are written and dropped immediately — nothing is
/// buffered. Because the header text is produced by the same
/// build_safetensors_header_text() that save_safetensors() uses, a
/// single-shard output is byte-identical to the in-memory writer's file.
///
/// In resume mode the writer keeps shard files from an interrupted run when
/// their size and header still match the plan (tensor bytes inside them are
/// vouched for by the merge journal); mismatching files are recreated.

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "stream/shard_layout.hpp"
#include "tensor/dtype.hpp"

namespace chipalign {

class Checkpoint;

/// Writes tensors into planned shard files at fixed offsets. write_tensor()
/// is thread-safe.
class ShardSetWriter {
 public:
  /// Creates (or, in resume mode, revalidates) every shard file in
  /// `out_dir` and writes headers. Throws Error on I/O failure.
  ShardSetWriter(std::string out_dir, ShardPlan plan,
                 std::map<std::string, std::string> metadata,
                 bool resume = false);

  /// True when shard `index` survived from a previous interrupted run with
  /// a matching size and header (resume mode only).
  bool shard_kept(std::size_t index) const { return kept_[index]; }

  /// Writes one tensor's encoded bytes at its planned offset; byte count
  /// must equal the planned size. Thread-safe; a tensor may be written at
  /// most once per run.
  void write_tensor(const std::string& name,
                    const std::vector<std::uint8_t>& bytes);

  /// Marks a tensor as already on disk from a previous run (resume).
  void mark_written(const std::string& name);

  std::size_t written_count() const;

  /// Flushes and closes all shards, verifies every planned tensor was
  /// written, and saves the manifest (with `checksums`, tensor name ->
  /// XXH64 hex). Returns the manifest path.
  std::string finish(const std::map<std::string, std::string>& checksums);

  const ShardPlan& plan() const { return plan_; }
  const std::string& out_dir() const { return out_dir_; }

 private:
  std::string out_dir_;
  ShardPlan plan_;
  std::map<std::string, std::string> metadata_;
  std::vector<std::string> header_texts_;   // per shard
  std::vector<std::unique_ptr<std::fstream>> files_;
  std::vector<bool> kept_;
  std::set<std::string> written_;
  mutable std::mutex mutex_;
  bool finished_ = false;
};

/// Saves a checkpoint as a sharded directory (shard files + manifest with
/// checksums). Returns the manifest path. The inverse of
/// load_sharded_checkpoint(); used by tools, tests and benches to fabricate
/// sharded inputs.
std::string save_sharded_checkpoint(const std::string& dir,
                                    const Checkpoint& checkpoint,
                                    std::uint64_t shard_size_bytes,
                                    DType storage = DType::kF32);

/// Re-reads every tensor of a sharded checkpoint and compares its XXH64
/// against the manifest. Returns the names of mismatching tensors (empty
/// means verified); tensors without a recorded checksum are skipped.
/// Throws Error on structural problems (missing shards, bad headers).
std::vector<std::string> verify_sharded_checkpoint(const std::string& path);

}  // namespace chipalign
