#pragma once
/// \file shard_layout.hpp
/// \brief Sharded-checkpoint manifest and deterministic shard planning.
///
/// A sharded checkpoint is a directory of safetensors shard files plus a
/// HF-style `model.safetensors.index.json` manifest:
///
/// ```json
/// {
///   "metadata":   {"total_size": 123456, "chipalign.config": "...", ...},
///   "weight_map": {"layers.0.wq": "model-00001-of-00003.safetensors", ...},
///   "checksums":  {"layers.0.wq": "9a3f...16-hex-xxh64...", ...}
/// }
/// ```
///
/// `metadata` carries `total_size` (sum of tensor data bytes across shards)
/// plus the same free-form string metadata a single-file checkpoint embeds
/// in its safetensors header (notably "chipalign.config"). `checksums` is a
/// chipalign extension: XXH64 of each tensor's encoded storage bytes,
/// written by the streaming merge engine and checked on verify/resume.
///
/// plan_shards() fixes the complete output layout *before* any tensor is
/// produced: tensors are packed greedily in name-sorted order, each shard's
/// data laid out contiguously from offset zero. A fixed plan is what lets
/// the shard writer emit headers first and then write tensor bytes at known
/// offsets in any completion order (bounded memory, no buffering).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/safetensors.hpp"
#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// File name of the manifest inside a sharded-checkpoint directory.
inline constexpr const char* kShardIndexFileName =
    "model.safetensors.index.json";

/// Canonical shard file name, e.g. "model-00002-of-00007.safetensors".
std::string shard_file_name(std::size_t index, std::size_t count);

/// Parsed `model.safetensors.index.json`.
struct ShardIndex {
  /// tensor name -> shard file name (relative to the index directory).
  std::map<std::string, std::string> weight_map;
  /// tensor name -> 16-hex-digit XXH64 of the encoded bytes (may be empty
  /// for indexes written by other tooling).
  std::map<std::string, std::string> checksums;
  /// Free-form string metadata (config JSON, format tag, ...).
  std::map<std::string, std::string> metadata;
  /// Total tensor data bytes across all shards.
  std::uint64_t total_size = 0;

  /// Distinct shard file names, sorted.
  std::vector<std::string> shard_files() const;

  /// Serializes to canonical JSON text (stable member order).
  std::string to_json_text() const;

  /// Writes the manifest into `dir` under kShardIndexFileName; returns the
  /// manifest path.
  std::string save(const std::string& dir) const;

  /// Parses a manifest file; throws Error on malformed content.
  static ShardIndex load(const std::string& index_path);
};

/// Planned layout of one output shard: file name plus the tensor directory
/// with offsets relative to the shard's data section (exactly the map
/// build_safetensors_header_text() consumes).
struct ShardPlanShard {
  std::string filename;
  std::map<std::string, SafetensorsTensorInfo> tensors;
  std::uint64_t data_size = 0;
};

/// Complete output layout, fixed before any tensor byte is produced.
struct ShardPlan {
  std::vector<ShardPlanShard> shards;
  /// tensor name -> index into `shards`.
  std::map<std::string, std::size_t> shard_of;
  std::uint64_t total_size = 0;

  std::size_t tensor_count() const { return shard_of.size(); }
};

/// Packs (name, shape) entries — which must be name-sorted — into shards of
/// at most `shard_size_bytes` data bytes each, in order. A tensor larger
/// than the budget gets a shard of its own. `shard_size_bytes` of 0 means
/// unlimited (single shard). Throws on duplicate names or unsorted input.
ShardPlan plan_shards(const std::vector<std::pair<std::string, Shape>>& entries,
                      DType storage, std::uint64_t shard_size_bytes);

}  // namespace chipalign
