#include "stream/streaming_merge.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <vector>

#include "io/safetensors.hpp"
#include "model/checkpoint.hpp"
#include "stream/shard_writer.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace chipalign {

namespace {

constexpr const char* kJournalFileName = "merge.journal";
constexpr const char* kJournalMagic = "chipalign-merge-journal-v1";

void hash_double(Xxh64Stream& stream, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  stream.update_u64(bits);
}

/// Fingerprints everything that determines the output bytes: method,
/// hyperparameters, output layout, and the tensor directory. A journal from
/// a run with any of these changed must not be resumed.
std::uint64_t plan_fingerprint(const Merger& merger, const MergeOptions& options,
                               const StreamingMergeConfig& config,
                               const std::vector<std::string>& names,
                               const TensorSource& chip) {
  Xxh64Stream stream;
  stream.update(merger.name());
  hash_double(stream, options.lambda);
  hash_double(stream, options.density);
  hash_double(stream, options.tv_scale);
  hash_double(stream, options.della_window);
  hash_double(stream, options.breadcrumbs_outlier_frac);
  hash_double(stream, options.theta_epsilon);
  stream.update_u64(options.seed);
  for (const auto& [suffix, lambda] : options.lambda_overrides) {
    stream.update(suffix);
    hash_double(stream, lambda);
  }
  stream.update(dtype_name(config.out_dtype));
  stream.update_u64(config.shard_size_bytes);
  for (const std::string& name : names) {
    stream.update(name);
    for (std::int64_t dim : chip.record(name).shape) {
      stream.update_u64(static_cast<std::uint64_t>(dim));
    }
  }
  return stream.digest();
}

struct JournalState {
  std::uint64_t fingerprint = 0;
  /// tensor name -> output-bytes checksum hex.
  std::map<std::string, std::string> done;
};

JournalState read_journal(const std::string& path) {
  JournalState state;
  std::ifstream file(path);
  if (!file.good()) return state;
  std::string line;
  bool first = true;
  while (std::getline(file, line)) {
    const std::vector<std::string> fields = split_whitespace(line);
    if (first) {
      first = false;
      CA_CHECK(fields.size() == 2 && fields[0] == kJournalMagic,
               "'" << path << "' is not a chipalign merge journal");
      state.fingerprint = hash_from_hex(fields[1]);
      continue;
    }
    // A torn final line (crash mid-append) is ignored, not an error.
    if (fields.size() != 3 || fields[0] != "done") continue;
    state.done[fields[2]] = fields[1];
  }
  return state;
}

}  // namespace

StreamingMergeReport merge_streaming(const Merger& merger,
                                     const TensorSource& chip,
                                     const TensorSource& instruct,
                                     const TensorSource* base,
                                     const MergeOptions& options,
                                     const StreamingMergeConfig& config,
                                     const std::string& out_dir) {
  check_sources_mergeable(chip, instruct);
  if (merger.requires_base()) {
    CA_CHECK(base != nullptr,
             "merge method '" << merger.name() << "' requires a base checkpoint");
    check_sources_mergeable(chip, *base);
  }
  validate_merge_options(options);

  const std::vector<std::string>& names = chip.names();

  // Output metadata mirrors what merge_checkpoints() + Checkpoint::save()
  // produce, so the two paths are byte-identical: the merged config keeps
  // the chip architecture with "+<method>" appended to its name.
  std::map<std::string, std::string> metadata;
  if (chip.metadata().count("chipalign.config") > 0) {
    ModelConfig out_config = config_from_metadata(chip.metadata(), "chip source");
    out_config.name = out_config.name + "+" + merger.name();
    metadata = checkpoint_metadata(out_config);
  } else {
    metadata["format"] = "chipalign-checkpoint-v1";
  }

  std::vector<std::pair<std::string, Shape>> entries;
  entries.reserve(names.size());
  for (const std::string& name : names) {
    entries.emplace_back(name, chip.record(name).shape);
  }
  ShardPlan plan = plan_shards(entries, config.out_dtype, config.shard_size_bytes);

  const std::uint64_t fingerprint =
      plan_fingerprint(merger, options, config, names, chip);

  namespace fs = std::filesystem;
  fs::create_directories(out_dir);
  const std::string journal_path = out_dir + "/" + std::string(kJournalFileName);

  JournalState journal;
  if (config.resume && fs::exists(journal_path)) {
    journal = read_journal(journal_path);
    CA_CHECK(journal.fingerprint == fingerprint,
             "journal '" << journal_path
                         << "' belongs to a different merge plan; delete it or "
                            "rerun without resume");
  }

  ShardSetWriter writer(out_dir, std::move(plan), metadata, config.resume);

  // A journaled tensor counts as done only if its shard file survived
  // validation; otherwise its bytes are gone and it must be remerged.
  std::set<std::string> done;
  for (const auto& [name, checksum] : journal.done) {
    const auto it = writer.plan().shard_of.find(name);
    if (it == writer.plan().shard_of.end()) continue;
    if (!writer.shard_kept(it->second)) continue;
    done.insert(name);
    writer.mark_written(name);
  }

  // (Re)write the journal: fingerprint line plus the entries still valid.
  std::ofstream journal_file(journal_path, std::ios::trunc);
  CA_CHECK(journal_file.good(), "cannot open journal '" << journal_path << "'");
  journal_file << kJournalMagic << ' ' << hash_to_hex(fingerprint) << '\n';
  std::map<std::string, std::string> checksums;
  for (const std::string& name : done) {
    const std::string& checksum = journal.done.at(name);
    journal_file << "done " << checksum << ' ' << name << '\n';
    checksums[name] = checksum;
  }
  journal_file.flush();

  StreamingMergeReport report;
  report.tensor_count = names.size();
  report.resumed_count = done.size();
  report.shard_count = writer.plan().shards.size();

  // Budget accounting: an in-flight tensor costs its input storage bytes
  // plus one fp32 working copy per input and the merged fp32 + encoded
  // output. This is an accounting bound (enforced deterministically), which
  // the bench then checks against measured RSS.
  const int n_inputs = 2 + (merger.requires_base() ? 1 : 0);
  auto tensor_cost = [&](const std::string& name) -> std::uint64_t {
    const TensorRecord& rec = chip.record(name);
    const auto numel = static_cast<std::uint64_t>(rec.numel());
    std::uint64_t cost = chip.record(name).byte_size() +
                         instruct.record(name).byte_size() +
                         (base != nullptr ? base->record(name).byte_size() : 0);
    cost += numel * 4 * static_cast<std::uint64_t>(n_inputs + 1);  // fp32 copies
    cost += numel * dtype_size(config.out_dtype);                  // encoded out
    return cost;
  };

  std::mutex budget_mutex;
  std::condition_variable budget_cv;
  std::uint64_t inflight_bytes = 0;
  std::size_t inflight_count = 0;

  std::mutex state_mutex;  // guards journal_file + checksums
  std::atomic<std::size_t> completed{done.size()};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<bool> failed{false};

  Timer timer;
  ThreadPool& pool = config.pool != nullptr ? *config.pool : global_thread_pool();
  ThreadPool::Batch batch;

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    if (done.count(name) > 0) continue;
    if (failed.load()) break;
    const std::uint64_t cost = tensor_cost(name);

    {  // Backpressure: admit when under budget, or alone.
      std::unique_lock<std::mutex> lock(budget_mutex);
      budget_cv.wait(lock, [&] {
        return inflight_count == 0 ||
               inflight_bytes + cost <= config.max_inflight_bytes;
      });
      inflight_bytes += cost;
      ++inflight_count;
      report.max_inflight_bytes_observed =
          std::max(report.max_inflight_bytes_observed, inflight_bytes);
    }

    pool.submit(batch, [&, i, name, cost] {
      struct BudgetRelease {
        std::mutex& mutex;
        std::condition_variable& cv;
        std::uint64_t& bytes;
        std::size_t& count;
        std::uint64_t cost;
        ~BudgetRelease() {
          {
            std::lock_guard<std::mutex> lock(mutex);
            bytes -= cost;
            --count;
          }
          cv.notify_all();
        }
      } release{budget_mutex, budget_cv, inflight_bytes, inflight_count, cost};

      if (failed.load()) return;  // stop fanning out after the first error
      try {
        const TensorRecord& rec = chip.record(name);
        const Tensor chip_tensor = chip.read(name);
        const Tensor instruct_tensor = instruct.read(name);
        Tensor base_tensor;
        const Tensor* base_ptr = nullptr;
        if (base != nullptr) {
          base_tensor = base->read(name);
          base_ptr = &base_tensor;
        }
        bytes_read.fetch_add(rec.byte_size() +
                             instruct.record(name).byte_size() +
                             (base != nullptr ? base->record(name).byte_size() : 0));

        Rng rng = merge_tensor_rng(options, i);
        const Tensor merged = merger.merge_tensor(
            name, chip_tensor, instruct_tensor, base_ptr, options, rng);
        CA_CHECK(merged.shape() == rec.shape,
                 "merger '" << merger.name() << "' changed shape of '" << name << "'");

        const std::vector<std::uint8_t> out_bytes =
            encode_tensor_bytes(merged, config.out_dtype);
        const std::string checksum =
            hash_to_hex(xxh64(out_bytes.data(), out_bytes.size()));
        writer.write_tensor(name, out_bytes);
        bytes_written.fetch_add(out_bytes.size());

        std::size_t done_now;
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          journal_file << "done " << checksum << ' ' << name << '\n';
          journal_file.flush();
          checksums[name] = checksum;
          done_now = completed.fetch_add(1) + 1;
        }
        if (config.fail_after_tensors >= 0 &&
            done_now >= done.size() + static_cast<std::size_t>(
                                          config.fail_after_tensors)) {
          failed.store(true);
          CA_THROW("injected failure after " << config.fail_after_tensors
                                             << " tensors (test hook)");
        }
        if (config.progress) config.progress(done_now, names.size());
        if (config.log_every > 0 && done_now % config.log_every == 0) {
          const double mb = static_cast<double>(bytes_written.load()) / (1024.0 * 1024.0);
          const double secs = timer.seconds();
          CA_LOG_INFO("streamed " << done_now << "/" << names.size()
                                  << " tensors, "
                                  << (secs > 0 ? mb / secs : 0.0) << " MB/s");
        }
      } catch (...) {
        failed.store(true);
        throw;
      }
    });
  }

  batch.wait();  // rethrows the first task error; journal stays for resume

  report.bytes_read = bytes_read.load();
  report.bytes_written = bytes_written.load();
  report.seconds = timer.seconds();
  report.index_path = writer.finish(checksums);

  journal_file.close();
  std::error_code ec;
  fs::remove(journal_path, ec);  // completed merges need no journal

  CA_LOG_DEBUG("streaming merge: " << names.size() << " tensors ("
                                   << report.resumed_count << " resumed) into "
                                   << report.shard_count << " shards in "
                                   << report.seconds * 1e3 << " ms");
  return report;
}

}  // namespace chipalign
