#include "stream/streaming_merge.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "io/safetensors.hpp"
#include "model/checkpoint.hpp"
#include "stream/shard_writer.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace chipalign {

namespace {

constexpr const char* kJournalFileName = "merge.journal";
constexpr const char* kJournalMagic = "chipalign-merge-journal-v1";

void hash_double(Xxh64Stream& stream, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  stream.update_u64(bits);
}

/// Fingerprints everything that determines the output bytes: method,
/// hyperparameters, output layout, and the tensor directory. A journal from
/// a run with any of these changed must not be resumed. Pipeline knobs
/// (io_threads, prefetch_tensors, pipeline, pool) are deliberately absent:
/// they never change the bytes, so a merge may be resumed under different
/// scheduling settings.
std::uint64_t plan_fingerprint(const Merger& merger,
                               const MergeOptions& options,
                               const StreamingMergeConfig& config,
                               const std::vector<std::string>& names,
                               const TensorSource& chip) {
  Xxh64Stream stream;
  stream.update(merger.name());
  hash_double(stream, options.lambda);
  hash_double(stream, options.density);
  hash_double(stream, options.tv_scale);
  hash_double(stream, options.della_window);
  hash_double(stream, options.breadcrumbs_outlier_frac);
  hash_double(stream, options.theta_epsilon);
  stream.update_u64(options.seed);
  for (const auto& [suffix, lambda] : options.lambda_overrides) {
    stream.update(suffix);
    hash_double(stream, lambda);
  }
  stream.update(dtype_name(config.out_dtype));
  stream.update_u64(config.shard_size_bytes);
  for (const std::string& name : names) {
    stream.update(name);
    for (std::int64_t dim : chip.record(name).shape) {
      stream.update_u64(static_cast<std::uint64_t>(dim));
    }
  }
  return stream.digest();
}

struct JournalState {
  std::uint64_t fingerprint = 0;
  /// tensor name -> output-bytes checksum hex.
  std::map<std::string, std::string> done;
};

/// Parses a journal, trusting only complete lines. The writer appends one
/// '\n'-terminated line per committed tensor, so a kill mid-append leaves at
/// most one unterminated final line — which must be discarded even when it
/// happens to split into the right number of fields (a truncated tensor
/// name could otherwise alias a different, never-written tensor).
JournalState read_journal(const std::string& path) {
  JournalState state;
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return state;
  const std::string content{std::istreambuf_iterator<char>(file),
                            std::istreambuf_iterator<char>()};
  std::size_t begin = 0;
  bool first = true;
  std::size_t torn = 0;
  while (begin < content.size()) {
    const std::size_t newline = content.find('\n', begin);
    if (newline == std::string::npos) {
      torn = content.size() - begin;  // torn trailing entry: discard
      break;
    }
    const std::string line = content.substr(begin, newline - begin);
    begin = newline + 1;
    const std::vector<std::string> fields = split_whitespace(line);
    if (first) {
      first = false;
      CA_CHECK(fields.size() == 2 && fields[0] == kJournalMagic,
               "'" << path << "' is not a chipalign merge journal");
      state.fingerprint = hash_from_hex(fields[1]);
      continue;
    }
    // Corrupted (not merely torn) entries are skipped, not trusted: wrong
    // field count, wrong tag, or a checksum that is not 16 hex digits.
    if (fields.size() != 3 || fields[0] != "done") continue;
    if (fields[1].size() != 16) continue;
    state.done[fields[2]] = fields[1];
  }
  if (first) {
    // Even the header line never completed: treat as no journal at all.
    return JournalState{};
  }
  if (torn > 0) {
    CA_LOG_WARN("journal '" << path << "' ends in a torn " << torn
                            << "-byte entry (killed mid-append); discarding it"
                               " — that tensor will be remerged");
  }
  return state;
}

/// Seek-reads one tensor's storage bytes, verifies them against the
/// source's recorded checksum when one exists, and decodes to fp32.
/// Transient failures — short reads, EINTR, checksum mismatches — are
/// retried per `retry` with exponential backoff, re-reading AND
/// re-verifying each attempt; attempts exhausted becomes
/// RetriesExhaustedError. Everything else (missing tensor, bad header)
/// stays a fail-fast permanent Error.
Tensor read_verified(const TensorSource& source, const std::string& name,
                     const RetryPolicy& retry,
                     std::atomic<std::uint64_t>& bytes_read,
                     std::atomic<std::size_t>& verified,
                     std::atomic<std::size_t>& retried) {
  const TensorRecord& rec = source.record(name);
  const int attempts = std::max(1, retry.max_attempts);
  int backoff_ms = std::max(1, retry.backoff_ms);
  for (int attempt = 1;; ++attempt) {
    try {
      const std::vector<std::uint8_t> bytes = source.read_bytes(name);
      bytes_read.fetch_add(bytes.size());
      const std::string expected = source.stored_checksum(name);
      if (!expected.empty()) {
        if (hash_to_hex(xxh64(bytes.data(), bytes.size())) != expected) {
          CA_THROW_AS(TransientIoError,
                      "tensor '" << name << "' in '" << rec.file
                                 << "' does not match its manifest checksum");
        }
        verified.fetch_add(1);
      }
      return decode_tensor_bytes(bytes.data(), bytes.size(), rec.dtype,
                                 rec.shape);
    } catch (const TransientIoError& e) {
      if (attempt >= attempts) {
        CA_THROW_AS(RetriesExhaustedError,
                    "tensor '" << name << "' in '" << rec.file
                               << "': transient read failure persisted "
                                  "after " << attempts
                               << " attempt(s) — " << e.what());
      }
      retried.fetch_add(1);
      CA_LOG_WARN("transient read failure for '"
                  << name << "' (attempt " << attempt << "/" << attempts
                  << "), retrying in " << backoff_ms << " ms: " << e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, std::max(1, retry.max_backoff_ms));
    }
  }
}

/// Everything the two engines (serial and pipelined) share: the immutable
/// plan-side inputs plus the mutable commit-side state (journal, checksums,
/// counters). Commit-side members are only touched by one thread at a time
/// (the caller in serial mode, the writer thread in pipeline mode).
struct MergeRun {
  const Merger& merger;
  const TensorSource& chip;
  const TensorSource& instruct;
  const TensorSource* base;
  const MergeOptions& options;
  const StreamingMergeConfig& config;
  const std::vector<std::string>& names;

  ShardSetWriter& writer;
  fs_io::AppendFile& journal_file;
  std::map<std::string, std::string>& checksums;
  const std::set<std::string>& done;
  std::vector<std::size_t> todo{};  ///< plan indices still to merge, in order

  Timer timer{};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::size_t> checksum_verified{0};
  std::atomic<std::size_t> read_retries{0};
  std::atomic<std::uint64_t> read_us{0};
  std::atomic<std::uint64_t> merge_us{0};
  std::atomic<std::uint64_t> write_us{0};

  /// read_verified() with this run's retry policy and counters.
  Tensor read_input(const TensorSource& source, const std::string& name) {
    return read_verified(source, name, config.read_retry, bytes_read,
                         checksum_verified, read_retries);
  }

  std::uint64_t tensor_cost(const std::string& name) const {
    // An in-flight tensor costs its input storage bytes plus one fp32
    // working copy per input and the merged fp32 + encoded output. This is
    // an accounting bound (enforced deterministically), which the bench
    // then checks against measured RSS.
    const int n_inputs = 2 + (merger.requires_base() ? 1 : 0);
    const TensorRecord& rec = chip.record(name);
    const auto numel = static_cast<std::uint64_t>(rec.numel());
    std::uint64_t cost = rec.byte_size() + instruct.record(name).byte_size() +
                         (base != nullptr ? base->record(name).byte_size() : 0);
    cost += numel * 4 * static_cast<std::uint64_t>(n_inputs + 1);  // fp32
    cost += numel * dtype_size(config.out_dtype);  // encoded out
    return cost;
  }

  /// Commits one merged tensor: shard write, journal append, bookkeeping,
  /// fault-injection hook, progress/log callbacks. `journaled_this_run` is
  /// the count of commits this invocation made so far *including* this one.
  /// Called from exactly one thread at a time (see struct comment).
  void commit(const std::string& name, const std::vector<std::uint8_t>& bytes,
              const std::string& checksum, std::size_t journaled_this_run) {
    const Timer write_timer;
    writer.write_tensor(name, bytes);
    bytes_written.fetch_add(bytes.size());
    // Entry body and terminating newline are separate appends with a
    // failpoint between them, so the soak can create exactly the torn
    // trailing line a mid-append kill leaves. sync() makes the committed
    // entry durable before the tensor counts as done.
    journal_file.append("done " + checksum + ' ' + name);
    CA_FAILPOINT("journal.append");
    journal_file.append("\n");
    CA_FAILPOINT("journal.sync");
    journal_file.sync();
    checksums[name] = checksum;
    write_us.fetch_add(static_cast<std::uint64_t>(write_timer.seconds() * 1e6));

    const std::size_t done_now = done.size() + journaled_this_run;
    if (config.fail_after_tensors >= 0 &&
        journaled_this_run >=
            static_cast<std::size_t>(config.fail_after_tensors)) {
      CA_THROW("injected failure after " << config.fail_after_tensors
                                         << " tensors (test hook)");
    }
    if (config.progress) config.progress(done_now, names.size());
    if (config.log_every > 0 && done_now % config.log_every == 0) {
      const double mb =
          static_cast<double>(bytes_written.load()) / (1024.0 * 1024.0);
      const double secs = timer.seconds();
      CA_LOG_INFO("streamed " << done_now << "/" << names.size() << " tensors, "
                              << (secs > 0 ? mb / secs : 0.0) << " MB/s");
    }
  }
};

/// One tensor travelling through the pipeline: filled stage by stage, its
/// accounted cost released only when the writer commits (or the pipeline
/// abandons) it.
struct PipelineSlot {
  std::size_t index = 0;
  std::uint64_t cost = 0;
  Tensor chip_tensor;
  Tensor instruct_tensor;
  Tensor base_tensor;
  bool has_base = false;
  std::vector<std::uint8_t> out_bytes;
  std::string checksum;
};

/// The escape hatch (`pipeline = false`): one tensor at a time, strictly
/// serial — read shard, merge, encode, write, journal — on the calling
/// thread. The reference the pipelined engine must match byte-for-byte, and
/// the baseline its speedup gate measures against.
void run_serial(MergeRun& run, StreamingMergeReport& report) {
  std::size_t journaled = 0;
  for (const std::size_t index : run.todo) {
    const std::string& name = run.names[index];
    report.max_inflight_bytes_observed = std::max(
        report.max_inflight_bytes_observed, run.tensor_cost(name));

    const Timer read_timer;
    const Tensor chip_tensor = run.read_input(run.chip, name);
    const Tensor instruct_tensor = run.read_input(run.instruct, name);
    Tensor base_tensor;
    const Tensor* base_ptr = nullptr;
    if (run.base != nullptr) {
      base_tensor = run.read_input(*run.base, name);
      base_ptr = &base_tensor;
    }
    run.read_us.fetch_add(
        static_cast<std::uint64_t>(read_timer.seconds() * 1e6));

    const Timer merge_timer;
    Rng rng = merge_tensor_rng(run.options, index);
    const Tensor merged = run.merger.merge_tensor(
        name, chip_tensor, instruct_tensor, base_ptr, run.options, rng);
    CA_CHECK(merged.shape() == run.chip.record(name).shape,
             "merger '" << run.merger.name() << "' changed shape of '" << name
                        << "'");
    const std::vector<std::uint8_t> out_bytes =
        encode_tensor_bytes(merged, run.config.out_dtype);
    const std::string checksum =
        hash_to_hex(xxh64(out_bytes.data(), out_bytes.size()));
    run.merge_us.fetch_add(
        static_cast<std::uint64_t>(merge_timer.seconds() * 1e6));

    run.commit(name, out_bytes, checksum, ++journaled);
  }
}

/// The three-stage pipelined engine: io_threads prefetchers -> compute pool
/// -> one in-plan-order writer thread, all throttled by the in-flight byte
/// budget and the prefetch_tensors cap. See the header's file comment for
/// the contract.
void run_pipelined(MergeRun& run, StreamingMergeReport& report) {
  const StreamingMergeConfig& config = run.config;
  ThreadPool& compute_pool =
      config.pool != nullptr ? *config.pool : global_thread_pool();
  ThreadPool io_pool(std::max<std::size_t>(1, config.io_threads));
  const std::size_t prefetch_cap =
      std::max<std::size_t>(1, config.prefetch_tensors);

  // Budget accounting. Charged at admission (scheduler), released at commit
  // (writer) or on abandonment after a failure. Because tensors are
  // admitted in plan order, the writer's next-expected tensor is always in
  // flight, so it always completes and releases budget: no deadlock.
  std::mutex budget_mutex;
  std::condition_variable budget_cv;
  std::uint64_t inflight_bytes = 0;
  std::size_t inflight_count = 0;

  // Compute -> writer handoff: completed slots keyed by plan index.
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::map<std::size_t, PipelineSlot> ready;

  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr writer_error;

  ThreadPool::Batch io_batch;
  ThreadPool::Batch compute_batch;

  auto release_budget = [&](std::uint64_t cost) {
    {
      std::lock_guard<std::mutex> lock(budget_mutex);
      inflight_bytes -= cost;
      --inflight_count;
    }
    budget_cv.notify_all();
  };
  // First failure anywhere: flag it, skip work still queued behind it, and
  // wake both the admission wait and the writer so everyone winds down.
  auto note_failure = [&] {
    failed.store(true);
    io_batch.cancel();
    compute_batch.cancel();
    budget_cv.notify_all();
    ready_cv.notify_all();
  };

  std::thread writer_thread([&] {
    std::size_t journaled = 0;
    try {
      for (const std::size_t index : run.todo) {
        PipelineSlot slot;
        {
          std::unique_lock<std::mutex> lock(ready_mutex);
          ready_cv.wait(lock, [&] {
            return failed.load() || ready.count(index) > 0;
          });
          if (failed.load()) return;
          slot = std::move(ready.at(index));
          ready.erase(index);
        }
        run.commit(run.names[index], slot.out_bytes, slot.checksum,
                   ++journaled);
        release_budget(slot.cost);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!writer_error) writer_error = std::current_exception();
      }
      note_failure();
    }
  });

  // Admission scheduler: plan order, bounded by bytes and slot count.
  for (const std::size_t index : run.todo) {
    if (failed.load()) break;
    const std::uint64_t cost = run.tensor_cost(run.names[index]);
    {
      std::unique_lock<std::mutex> lock(budget_mutex);
      budget_cv.wait(lock, [&] {
        return failed.load() || inflight_count == 0 ||
               (inflight_bytes + cost <= config.max_inflight_bytes &&
                inflight_count < prefetch_cap);
      });
      if (failed.load()) break;
      inflight_bytes += cost;
      ++inflight_count;
      report.max_inflight_bytes_observed =
          std::max(report.max_inflight_bytes_observed, inflight_bytes);
    }

    io_pool.submit(io_batch, [&run, &compute_pool, &compute_batch, &ready,
                              &ready_mutex, &ready_cv, &failed, &note_failure,
                              &release_budget, index, cost] {
      if (failed.load()) {
        release_budget(cost);
        return;
      }
      PipelineSlot slot;
      slot.index = index;
      slot.cost = cost;
      const std::string& name = run.names[index];
      try {
        const Timer read_timer;
        slot.chip_tensor = run.read_input(run.chip, name);
        slot.instruct_tensor = run.read_input(run.instruct, name);
        if (run.base != nullptr) {
          slot.base_tensor = run.read_input(*run.base, name);
          slot.has_base = true;
        }
        run.read_us.fetch_add(
            static_cast<std::uint64_t>(read_timer.seconds() * 1e6));
      } catch (...) {
        release_budget(cost);
        note_failure();
        throw;  // captured by io_batch, rethrown to the caller
      }
      compute_pool.submit(compute_batch, [&run, &ready, &ready_mutex,
                                          &ready_cv, &failed, &note_failure,
                                          &release_budget,
                                          slot = std::move(slot)]() mutable {
        if (failed.load()) {
          release_budget(slot.cost);
          return;
        }
        try {
          const std::string& name = run.names[slot.index];
          const Timer merge_timer;
          Rng rng = merge_tensor_rng(run.options, slot.index);
          const Tensor merged = run.merger.merge_tensor(
              name, slot.chip_tensor, slot.instruct_tensor,
              slot.has_base ? &slot.base_tensor : nullptr, run.options, rng);
          CA_CHECK(merged.shape() == run.chip.record(name).shape,
                   "merger '" << run.merger.name() << "' changed shape of '"
                              << name << "'");
          slot.out_bytes = encode_tensor_bytes(merged, run.config.out_dtype);
          slot.checksum =
              hash_to_hex(xxh64(slot.out_bytes.data(), slot.out_bytes.size()));
          run.merge_us.fetch_add(
              static_cast<std::uint64_t>(merge_timer.seconds() * 1e6));
          // Inputs are dead weight from here; drop them before the slot
          // waits in the ready queue for its plan-order turn.
          slot.chip_tensor = Tensor();
          slot.instruct_tensor = Tensor();
          slot.base_tensor = Tensor();
          {
            std::lock_guard<std::mutex> lock(ready_mutex);
            ready.emplace(slot.index, std::move(slot));
          }
          ready_cv.notify_all();
        } catch (...) {
          release_budget(slot.cost);
          note_failure();
          throw;  // captured by compute_batch, rethrown to the caller
        }
      });
    });
  }

  // Drain: io tasks first (they are what submits compute tasks), then
  // compute, then the writer. Batch waits rethrow the first stage error;
  // defer it so the writer is always joined.
  std::exception_ptr error;
  try {
    io_batch.wait();
  } catch (...) {
    error = std::current_exception();
  }
  try {
    compute_batch.wait();
  } catch (...) {
    if (!error) error = std::current_exception();
  }
  writer_thread.join();
  if (!error) {
    std::lock_guard<std::mutex> lock(error_mutex);
    error = writer_error;
  }
  if (error) std::rethrow_exception(error);  // journal stays for resume
}

}  // namespace

StreamingMergeReport merge_streaming(const Merger& merger,
                                     const TensorSource& chip,
                                     const TensorSource& instruct,
                                     const TensorSource* base,
                                     const MergeOptions& options,
                                     const StreamingMergeConfig& config,
                                     const std::string& out_dir) {
  check_sources_mergeable(chip, instruct);
  if (merger.requires_base()) {
    CA_CHECK(base != nullptr,
             "merge method '" << merger.name()
                 << "' requires a base checkpoint");
    check_sources_mergeable(chip, *base);
  }
  validate_merge_options(options);

  const std::vector<std::string>& names = chip.names();

  // Output metadata mirrors what merge_checkpoints() + Checkpoint::save()
  // produce, so the two paths are byte-identical: the merged config keeps
  // the chip architecture with "+<method>" appended to its name.
  std::map<std::string, std::string> metadata;
  if (chip.metadata().count("chipalign.config") > 0) {
    ModelConfig out_config = config_from_metadata(chip.metadata(),
                                                  "chip source");
    out_config.name = out_config.name + "+" + merger.name();
    metadata = checkpoint_metadata(out_config);
  } else {
    metadata["format"] = "chipalign-checkpoint-v1";
  }

  std::vector<std::pair<std::string, Shape>> entries;
  entries.reserve(names.size());
  for (const std::string& name : names) {
    entries.emplace_back(name, chip.record(name).shape);
  }
  ShardPlan plan = plan_shards(entries, config.out_dtype,
                               config.shard_size_bytes);

  const std::uint64_t fingerprint =
      plan_fingerprint(merger, options, config, names, chip);

  namespace fs = std::filesystem;
  fs::create_directories(out_dir);
  const std::string journal_path =
      out_dir + "/" + std::string(kJournalFileName);

  JournalState journal;
  if (config.resume && fs::exists(journal_path)) {
    journal = read_journal(journal_path);
    CA_CHECK(journal.fingerprint == fingerprint,
             "journal '" << journal_path
                         << "' belongs to a different merge plan; delete it or "
                            "rerun without resume");
  }

  ShardSetWriter writer(out_dir, std::move(plan), metadata, config.resume);

  // A journaled tensor counts as done only if its shard file survived
  // validation; otherwise its bytes are gone and it must be remerged.
  std::set<std::string> done;
  for (const auto& [name, checksum] : journal.done) {
    const auto it = writer.plan().shard_of.find(name);
    if (it == writer.plan().shard_of.end()) continue;
    if (!writer.shard_kept(it->second)) continue;
    done.insert(name);
    writer.mark_written(name);
  }

  // (Re)write the journal: fingerprint line plus the entries still valid.
  // One fsync covers the whole rewrite before any new work is journaled.
  fs_io::AppendFile journal_file(journal_path);
  journal_file.append(std::string(kJournalMagic) + ' ' +
                      hash_to_hex(fingerprint) + '\n');
  std::map<std::string, std::string> checksums;
  for (const std::string& name : done) {
    const std::string& checksum = journal.done.at(name);
    journal_file.append("done " + checksum + ' ' + name + '\n');
    checksums[name] = checksum;
  }
  journal_file.sync();

  StreamingMergeReport report;
  report.tensor_count = names.size();
  report.resumed_count = done.size();
  report.shard_count = writer.plan().shards.size();
  report.pipelined = config.pipeline;

  MergeRun run{merger,    chip,   instruct, base,         options, config,
               names,     writer, journal_file, checksums, done};
  run.todo.reserve(names.size() - done.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (done.count(names[i]) == 0) run.todo.push_back(i);
  }

  if (config.pipeline) {
    run_pipelined(run, report);
  } else {
    run_serial(run, report);
  }

  report.bytes_read = run.bytes_read.load();
  report.bytes_written = run.bytes_written.load();
  report.source_checksums_verified = run.checksum_verified.load();
  report.read_retries = run.read_retries.load();
  report.read_seconds = static_cast<double>(run.read_us.load()) * 1e-6;
  report.merge_seconds = static_cast<double>(run.merge_us.load()) * 1e-6;
  report.write_seconds = static_cast<double>(run.write_us.load()) * 1e-6;
  report.seconds = run.timer.seconds();
  report.index_path = writer.finish(checksums);

  journal_file.close();
  std::error_code ec;
  fs::remove(journal_path, ec);  // completed merges need no journal

  CA_LOG_DEBUG("streaming merge (" << (config.pipeline ? "pipelined" : "serial")
                                   << "): " << names.size() << " tensors ("
                                   << report.resumed_count << " resumed) into "
                                   << report.shard_count << " shards in "
                                   << report.seconds * 1e3 << " ms");
  return report;
}

}  // namespace chipalign
