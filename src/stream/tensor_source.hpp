#pragma once
/// \file tensor_source.hpp
/// \brief Lazy, random-access tensor reading from (sharded) checkpoints.
///
/// A TensorSource exposes a checkpoint's tensor directory without loading
/// any tensor data: opening a source parses only the safetensors headers
/// (and the shard manifest when present), so memory stays O(#tensors)
/// regardless of checkpoint size. Individual tensors are then seek-read on
/// demand — the producer side of the streaming merge pipeline.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stream/shard_layout.hpp"
#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace chipalign {

/// Location and type of one tensor inside a shard file.
struct TensorRecord {
  std::string file;  ///< path to the shard holding this tensor
  DType dtype = DType::kF32;
  Shape shape;
  std::uint64_t begin = 0;  ///< absolute byte offset in `file`
  std::uint64_t end = 0;

  std::uint64_t byte_size() const { return end - begin; }
  std::int64_t numel() const { return shape_numel(shape); }
};

/// Read-only random access to a checkpoint's tensors. Implementations must
/// make read()/read_bytes() safe to call concurrently from worker threads.
class TensorSource {
 public:
  virtual ~TensorSource() = default;

  /// Sorted tensor names.
  virtual const std::vector<std::string>& names() const = 0;

  virtual bool has(const std::string& name) const = 0;

  /// Directory entry for one tensor; throws Error when missing.
  virtual const TensorRecord& record(const std::string& name) const = 0;

  /// Reads one tensor's raw storage bytes. Thread-safe.
  virtual std::vector<std::uint8_t> read_bytes(const std::string& name) const =
      0;

  /// Reads and decodes one tensor to fp32. Thread-safe.
  virtual Tensor read(const std::string& name) const = 0;

  /// XXH64 hex checksum of the tensor's storage bytes as recorded by the
  /// checkpoint (manifest `checksums` map), or "" when the source records
  /// none. The streaming-merge prefetcher verifies freshly read bytes
  /// against this, turning silent shard corruption into a hard error.
  virtual std::string stored_checksum(const std::string& name) const {
    (void)name;
    return {};
  }

  /// Checkpoint-level string metadata (config JSON etc.).
  virtual const std::map<std::string, std::string>& metadata() const = 0;

  /// Sum of all tensors' storage bytes.
  std::uint64_t total_bytes() const;
};

/// TensorSource over a single safetensors file or a sharded checkpoint.
///
/// open() accepts:
///   * a `.safetensors` file — treated as a one-shard checkpoint;
///   * a `model.safetensors.index.json` manifest path;
///   * a directory containing such a manifest.
///
/// Opening validates that every manifest entry resolves to a tensor in an
/// existing shard file (a manifest referencing a missing shard throws
/// Error) and that shard headers are well-formed; tensor data is never
/// touched until read()/read_bytes().
class ShardedTensorSource : public TensorSource {
 public:
  static ShardedTensorSource open(const std::string& path);

  const std::vector<std::string>& names() const override { return names_; }
  bool has(const std::string& name) const override {
    return records_.count(name) > 0;
  }
  const TensorRecord& record(const std::string& name) const override;
  std::vector<std::uint8_t> read_bytes(const std::string& name) const override;
  Tensor read(const std::string& name) const override;
  std::string stored_checksum(const std::string& name) const override {
    const auto it = checksums_.find(name);
    return it != checksums_.end() ? it->second : std::string();
  }
  const std::map<std::string, std::string>& metadata() const override {
    return metadata_;
  }

  /// Checksums recorded in the manifest (empty for single files or foreign
  /// indexes).
  const std::map<std::string, std::string>& checksums() const {
    return checksums_;
  }

  std::size_t shard_count() const { return shard_count_; }

 private:
  std::vector<std::string> names_;
  std::map<std::string, TensorRecord> records_;
  std::map<std::string, std::string> metadata_;
  std::map<std::string, std::string> checksums_;
  std::size_t shard_count_ = 0;
};

/// Loads a complete Checkpoint through a sharded source (convenience for
/// tools and tests; O(model) memory, unlike the streaming engine).
class Checkpoint;
Checkpoint load_sharded_checkpoint(const std::string& path);

/// Throws Error unless the two sources have identical tensor names and
/// shapes (the same-architecture precondition of merging, checked from
/// headers alone — no tensor data is read).
void check_sources_mergeable(const TensorSource& a, const TensorSource& b);

}  // namespace chipalign
