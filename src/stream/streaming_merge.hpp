#pragma once
/// \file streaming_merge.hpp
/// \brief Bounded-memory streaming merge over sharded checkpoints.
///
/// merge_streaming() drives any Merger through a bounded three-stage
/// pipeline so I/O and compute overlap instead of summing:
///
///   1. *Prefetch* — an internal pool of `io_threads` readers seek-reads the
///      chip/instruct (and optional base) tensors of upcoming plan entries,
///      verifying each read against the source manifest's XXH64 checksum
///      when one is recorded (silent shard corruption becomes a hard
///      error);
///   2. *Compute* — the merge math (SLERP/LERP/TIES/...) plus output-dtype
///      encoding runs on `StreamingMergeConfig::pool` (default: the global
///      ThreadPool), any number of tensors concurrently;
///   3. *Write* — a single writer thread commits finished tensors to the
///      ShardSetWriter and appends journal entries strictly **in plan
///      (name-sorted) order**, so the journal is always a plan-order prefix
///      of the remaining work and resume semantics match the serial
///      engine's.
///
/// Admission control bounds peak memory: the scheduler admits a tensor into
/// the pipeline only while the estimated working bytes of all in-flight
/// tensors stay under `max_inflight_bytes` and at most `prefetch_tensors`
/// are in flight (always admitting at least one, so a tensor larger than
/// the budget still makes progress) — instead of the O(model) residency of
/// merge_checkpoints(). `pipeline = false` is the escape hatch: a strictly
/// serial read→merge→write→journal loop on the calling thread, byte- and
/// journal-identical to the pipelined engine.
///
/// Robustness: every completed tensor is recorded (name + XXH64 of its
/// output bytes) in an append-only journal `merge.journal` inside the
/// output directory, prefixed by a fingerprint of the merge plan. A rerun
/// with resume enabled skips journaled tensors whose shard files still
/// match the plan, then completes the manifest — an interrupted merge
/// restarts where it stopped and converges to the same bytes. A torn final
/// journal line (kill mid-append) is discarded, so only that tensor is
/// redone. Worker/writer exceptions propagate to the caller after the
/// pipeline drains, with the journal left in this resumable state.
///
/// Determinism: per-tensor RNG streams come from merge_tensor_rng() with
/// the tensor's index in the name-sorted list — the same derivation as
/// merge_checkpoints() — so both paths produce bit-identical weights.

#include <cstdint>
#include <string>

#include "merge/merger.hpp"
#include "stream/tensor_source.hpp"
#include "tensor/dtype.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {

/// Bounded exponential-backoff retry for *transient* source-read failures
/// (EINTR, short reads, checksum mismatches — TransientIoError). Each
/// retry re-reads the bytes and re-verifies the checksum. Permanent
/// failures (plan mismatch, missing tensors, bad headers) never retry;
/// attempts exhausted becomes RetriesExhaustedError so callers can exit
/// with a distinct code.
struct RetryPolicy {
  /// Total read attempts per tensor per source; 1 disables retry.
  int max_attempts = 1;
  /// Backoff before the first retry; doubles each retry.
  int backoff_ms = 10;
  /// Backoff ceiling.
  int max_backoff_ms = 2000;
};

/// Knobs of the streaming pipeline (the merge math itself is configured by
/// MergeOptions, shared with the in-memory path).
struct StreamingMergeConfig {
  /// Max data bytes per output shard; 0 = single shard.
  std::uint64_t shard_size_bytes = 64ull << 20;

  /// In-flight working-set budget enforcing the peak-memory bound. An
  /// in-flight tensor is accounted as its input storage bytes + fp32
  /// working copies + output bytes.
  std::uint64_t max_inflight_bytes = 256ull << 20;

  /// Storage dtype of the output shards.
  DType out_dtype = DType::kF32;

  /// Overlap read / merge / write in the three-stage pipeline. false is the
  /// escape hatch: one tensor at a time, strictly serial, on the calling
  /// thread. Output bytes and journal contents are identical either way.
  bool pipeline = true;

  /// Reader threads of the prefetch stage (pipeline mode only; clamped to
  /// at least 1).
  std::size_t io_threads = 2;

  /// Cap on tensors admitted into the pipeline at once, on top of the byte
  /// budget (pipeline mode only; clamped to at least 1). Bounds the
  /// completed-but-not-yet-committed backlog the in-order writer may have
  /// to buffer.
  std::size_t prefetch_tensors = 16;

  /// Resume from an interrupted run's journal instead of starting over.
  /// Throws Error when the journal belongs to a different merge plan.
  bool resume = false;

  /// Retry policy for transient source-read failures. Deliberately absent
  /// from the plan fingerprint: retries never change the output bytes, so
  /// a merge may be resumed under a different policy.
  RetryPolicy read_retry;

  /// Optional per-tensor completion callback (done, total); called from
  /// worker threads.
  MergeProgressFn progress;

  /// Emit a CA_LOG_INFO progress/throughput line every N completed tensors
  /// (0 disables).
  std::size_t log_every = 32;

  /// Test hook: throw Error after this many tensors have been journaled
  /// (-1 disables). Simulates an interrupted merge for resume tests.
  int fail_after_tensors = -1;

  /// Pool to run merge workers on; nullptr = the global pool. Output bytes
  /// are identical for any pool size (the determinism tests exercise 1 vs N
  /// worker threads through this knob).
  ThreadPool* pool = nullptr;
};

/// What a streaming merge did, for reporting and assertions.
struct StreamingMergeReport {
  std::size_t tensor_count = 0;
  std::size_t resumed_count = 0;  ///< tensors skipped thanks to the journal
  std::size_t shard_count = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// High-water mark of the accounted in-flight bytes; always <= the
  /// budget unless a single tensor alone exceeds it.
  std::uint64_t max_inflight_bytes_observed = 0;
  double seconds = 0.0;
  bool pipelined = false;  ///< which engine ran (config.pipeline)
  /// Source reads that were verified against a manifest checksum.
  std::size_t source_checksums_verified = 0;
  /// Transient read failures that were retried (and recovered from).
  std::size_t read_retries = 0;
  /// Aggregate busy time per stage, summed across worker threads. In
  /// pipeline mode their sum exceeding `seconds` is the overlap win; in
  /// serial mode they sum to ~`seconds`.
  double read_seconds = 0.0;
  double merge_seconds = 0.0;
  double write_seconds = 0.0;
  std::string index_path;  ///< manifest of the merged sharded checkpoint

  double mb_per_second() const {
    return seconds > 0.0 ? static_cast<double>(bytes_written) /
                               (1024.0 * 1024.0) / seconds
                         : 0.0;
  }
};

/// Streams `merger` over two (optionally three) conformable tensor sources
/// into a sharded checkpoint under `out_dir`. See the file comment for the
/// pipeline, memory bound, journal and determinism contracts.
/// \throws Error on non-conformable sources, missing base, bad options, or
///   I/O failure (the journal then allows resuming).
StreamingMergeReport merge_streaming(const Merger& merger,
                                     const TensorSource& chip,
                                     const TensorSource& instruct,
                                     const TensorSource* base,
                                     const MergeOptions& options,
                                     const StreamingMergeConfig& config,
                                     const std::string& out_dir);

}  // namespace chipalign
