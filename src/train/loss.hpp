#pragma once
/// \file loss.hpp
/// \brief Masked next-token cross-entropy for causal LM training.

#include <vector>

#include "tensor/tensor.hpp"
#include "text/tokenizer.hpp"

namespace chipalign {

/// Result of a loss evaluation: mean loss over weighted targets plus the
/// gradient w.r.t. the logits (already divided by the total target weight).
struct LossResult {
  double loss = 0.0;
  double target_weight = 0.0;  ///< sum of mask weights that contributed
  Tensor dlogits;              ///< [T, vocab]
};

/// Next-token cross-entropy. Position t is scored against target
/// tokens[t+1] with weight target_mask[t+1]; the final position produces no
/// loss. target_mask must have tokens.size() entries (weight of each token
/// *as a target*); zero-weight positions contribute nothing.
LossResult cross_entropy_next_token(const Tensor& logits,
                                    const std::vector<TokenId>& tokens,
                                    const std::vector<float>& target_mask);

}  // namespace chipalign
