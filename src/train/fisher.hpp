#pragma once
/// \file fisher.hpp
/// \brief Diagonal empirical Fisher estimation for Fisher-weighted merging.
///
/// The empirical Fisher of a parameter is the average squared gradient of
/// the per-example negative log-likelihood over a data sample:
///
///   F[theta] = E_x [ (d NLL(x) / d theta)^2 ]
///
/// Estimated one example at a time (exact per-example gradients, no batch
/// mixing). The result is a Checkpoint shaped exactly like the model's
/// weights, consumable by merge::FisherMerger.

#include <cstdint>
#include <vector>

#include "model/checkpoint.hpp"
#include "nn/transformer.hpp"
#include "train/trainer.hpp"

namespace chipalign {

/// Estimates the diagonal empirical Fisher of `model` over up to
/// `max_examples` examples drawn (seeded) from `dataset`. Examples whose
/// target mask is all-zero are skipped. Throws if no example contributes.
Checkpoint estimate_diagonal_fisher(TransformerModel& model,
                                    const std::vector<TrainExample>& dataset,
                                    int max_examples, std::uint64_t seed);

}  // namespace chipalign
