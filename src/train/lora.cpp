#include "train/lora.hpp"

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace chipalign {

LoraAdapterSet::LoraAdapterSet(TransformerModel& model, LoraConfig config)
    : model_(model), config_(std::move(config)) {
  CA_CHECK(config_.rank > 0, "LoRA rank must be positive");
  CA_CHECK(config_.alpha > 0.0, "LoRA alpha must be positive");
  CA_CHECK(!config_.target_suffixes.empty(), "LoRA needs at least one target");

  Rng rng(config_.seed);
  for (Parameter* p : model_.parameters()) {
    bool matched = false;
    for (const std::string& suffix : config_.target_suffixes) {
      if (ends_with(p->name, suffix)) {
        matched = true;
        break;
      }
    }
    if (!matched) continue;
    CA_CHECK(p->value.rank() == 2,
             "LoRA target '" << p->name << "' is not a matrix");

    LoraAdapter adapter;
    adapter.target = p;
    adapter.base = p->value;
    const std::int64_t out_dim = p->value.dim(0);
    const std::int64_t in_dim = p->value.dim(1);
    adapter.a = Parameter(p->name + ".lora_a",
                          Tensor::randn({config_.rank, in_dim}, rng, 0.02F));
    adapter.b = Parameter(p->name + ".lora_b",
                          Tensor({out_dim, config_.rank}));  // zero init
    adapters_.push_back(std::move(adapter));
  }
  CA_CHECK(!adapters_.empty(), "no model parameter matched any LoRA target");
}

std::vector<Parameter*> LoraAdapterSet::trainable_parameters() {
  std::vector<Parameter*> out;
  out.reserve(adapters_.size() * 2);
  for (LoraAdapter& adapter : adapters_) {
    out.push_back(&adapter.a);
    out.push_back(&adapter.b);
  }
  return out;
}

void LoraAdapterSet::materialize() {
  const auto scale = static_cast<float>(scaling());
  for (LoraAdapter& adapter : adapters_) {
    // W_eff = base + scale * B A  (B [out, r], A [r, in])
    Tensor delta = ops::matmul(adapter.b.value, adapter.a.value);
    ops::scale(delta.values(), scale);
    adapter.target->value = ops::add(adapter.base, delta);
  }
}

void LoraAdapterSet::accumulate_adapter_grads() {
  const auto scale = static_cast<float>(scaling());
  for (LoraAdapter& adapter : adapters_) {
    const Tensor& dw = adapter.target->grad;  // [out, in]
    // dB += scale * dW A^T : [out, in] x [in, r]
    Tensor db = ops::matmul_nt(dw, adapter.a.value);  // A [r, in] -> A^T
    ops::scale(db.values(), scale);
    ops::axpy(1.0F, db.values(), adapter.b.grad.values());
    // dA += scale * B^T dW : [r, out] x [out, in]
    Tensor da(adapter.a.value.shape());
    ops::matmul_tn_accum(adapter.b.value, dw, da);  // B^T dW
    ops::scale(da.values(), scale);
    ops::axpy(1.0F, da.values(), adapter.a.grad.values());
  }
}

void LoraAdapterSet::zero_grad() {
  for (LoraAdapter& adapter : adapters_) {
    adapter.a.zero_grad();
    adapter.b.zero_grad();
  }
}

void LoraAdapterSet::restore_base() {
  for (LoraAdapter& adapter : adapters_) adapter.target->value = adapter.base;
}

void LoraAdapterSet::fold() {
  materialize();  // leave W_eff in the model
}

}  // namespace chipalign
