#include "train/trainer.hpp"

#include "tensor/tensor_ops.hpp"
#include "train/loss.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace chipalign {

namespace {

void truncate_example(TrainExample& example, std::int64_t max_len) {
  if (static_cast<std::int64_t>(example.tokens.size()) > max_len) {
    example.tokens.resize(static_cast<std::size_t>(max_len));
    example.target_mask.resize(static_cast<std::size_t>(max_len));
  }
}

/// Runs forward + loss + backward for one example; returns the loss.
/// dlogits are scaled by inv_batch so gradients accumulate to a batch mean.
double train_step_one(TransformerModel& model, const TrainExample& example,
                      float inv_batch) {
  Tensor logits = model.forward(example.tokens);
  LossResult loss = cross_entropy_next_token(logits, example.tokens,
                                             example.target_mask);
  if (loss.target_weight <= 0.0) {
    model.discard_forward();  // nothing to learn from this example
    return 0.0;
  }
  ops::scale(loss.dlogits.values(), inv_batch);
  model.backward(loss.dlogits);
  return loss.loss;
}

template <typename PrepareFn, typename FinishFn>
TrainStats run_training(TransformerModel& model,
                        const std::vector<TrainExample>& dataset,
                        const TrainConfig& config, AdamW& optimizer,
                        PrepareFn&& prepare_step, FinishFn&& finish_step) {
  CA_CHECK(!dataset.empty(), "training dataset is empty");
  CA_CHECK(config.steps > 0 && config.batch_size > 0,
           "steps and batch_size must be positive");

  Rng rng(config.seed);
  TrainStats stats;
  stats.losses.reserve(static_cast<std::size_t>(config.steps));
  const float inv_batch = 1.0F / static_cast<float>(config.batch_size);

  for (std::int64_t step = 0; step < config.steps; ++step) {
    prepare_step();
    double batch_loss = 0.0;
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      const TrainExample& example =
          dataset[static_cast<std::size_t>(rng.uniform_index(dataset.size()))];
      batch_loss += train_step_one(model, example, inv_batch);
    }
    batch_loss /= static_cast<double>(config.batch_size);

    optimizer.set_lr(cosine_lr(step, config.warmup_steps, config.steps,
                               config.peak_lr, config.min_lr_ratio));
    finish_step();

    stats.losses.push_back(batch_loss);
    if (config.log_every > 0 && step % config.log_every == 0) {
      CA_LOG_INFO("step " << step << "/" << config.steps << " loss "
                          << batch_loss << " lr " << optimizer.lr());
    }
  }
  stats.first_loss = stats.losses.front();
  stats.final_loss = stats.losses.back();
  return stats;
}

}  // namespace

TrainExample make_lm_example(std::string_view text, std::int64_t max_len) {
  const CharTokenizer& tok = tokenizer();
  TrainExample example;
  example.tokens = tok.encode(text, /*add_bos=*/true, /*add_eos=*/true);
  example.target_mask.assign(example.tokens.size(), 1.0F);
  example.target_mask[0] = 0.0F;  // <bos> is never a target
  truncate_example(example, max_len);
  return example;
}

TrainExample make_qa_example(std::string_view prompt, std::string_view answer,
                             std::int64_t max_len) {
  const CharTokenizer& tok = tokenizer();
  TrainExample example;
  example.tokens = tok.encode(prompt, /*add_bos=*/true);
  example.target_mask.assign(example.tokens.size(), 0.0F);
  const std::vector<TokenId> answer_tokens =
      tok.encode(answer, /*add_bos=*/false, /*add_eos=*/true);
  for (TokenId id : answer_tokens) {
    example.tokens.push_back(id);
    example.target_mask.push_back(1.0F);
  }
  truncate_example(example, max_len);
  return example;
}

TrainStats train_full(TransformerModel& model,
                      const std::vector<TrainExample>& dataset,
                      const TrainConfig& config) {
  AdamWConfig opt_config;
  opt_config.lr = config.peak_lr;
  opt_config.weight_decay = config.weight_decay;
  opt_config.clip_norm = config.clip_norm;
  AdamW optimizer(model.parameters(), opt_config);

  return run_training(
      model, dataset, config, optimizer, [&] { model.zero_grad(); },
      [&] { optimizer.step(); });
}

TrainStats train_lora(TransformerModel& model, LoraAdapterSet& adapters,
                      const std::vector<TrainExample>& dataset,
                      const TrainConfig& config) {
  AdamWConfig opt_config;
  opt_config.lr = config.peak_lr;
  opt_config.weight_decay = config.weight_decay;
  opt_config.clip_norm = config.clip_norm;
  AdamW optimizer(adapters.trainable_parameters(), opt_config);

  TrainStats stats = run_training(
      model, dataset, config, optimizer,
      [&] {
        adapters.materialize();
        model.zero_grad();
        adapters.zero_grad();
      },
      [&] {
        adapters.accumulate_adapter_grads();
        optimizer.step();
      });
  adapters.materialize();  // leave the latest adapters applied
  return stats;
}

double evaluate_loss(TransformerModel& model,
                     const std::vector<TrainExample>& dataset) {
  CA_CHECK(!dataset.empty(), "evaluate_loss on empty dataset");
  double total = 0.0;
  double total_weight = 0.0;
  for (const TrainExample& example : dataset) {
    Tensor logits = model.forward(example.tokens);
    const LossResult loss =
        cross_entropy_next_token(logits, example.tokens, example.target_mask);
    model.discard_forward();
    total += loss.loss * loss.target_weight;
    total_weight += loss.target_weight;
  }
  return total_weight > 0.0 ? total / total_weight : 0.0;
}

}  // namespace chipalign
