#include "train/loss.hpp"

#include <cmath>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {

LossResult cross_entropy_next_token(const Tensor& logits,
                                    const std::vector<TokenId>& tokens,
                                    const std::vector<float>& target_mask) {
  const auto t_len = static_cast<std::int64_t>(tokens.size());
  CA_CHECK(logits.rank() == 2 && logits.dim(0) == t_len,
           "logits rows must equal token count");
  CA_CHECK(target_mask.size() == tokens.size(), "target_mask size mismatch");
  const std::int64_t vocab = logits.dim(1);

  LossResult result;
  result.dlogits = Tensor(logits.shape());

  double total_weight = 0.0;
  for (std::int64_t t = 0; t + 1 < t_len; ++t) {
    total_weight += target_mask[static_cast<std::size_t>(t + 1)];
  }
  result.target_weight = total_weight;
  if (total_weight <= 0.0) return result;  // nothing to train on

  double loss_acc = 0.0;
  for (std::int64_t t = 0; t + 1 < t_len; ++t) {
    const float weight = target_mask[static_cast<std::size_t>(t + 1)];
    if (weight <= 0.0F) continue;
    const TokenId target = tokens[static_cast<std::size_t>(t + 1)];
    CA_CHECK(target >= 0 && target < vocab, "target token out of vocab");

    const auto row = logits.row(t);
    const double lse = ops::log_sum_exp(row);
    loss_acc += weight * (lse - static_cast<double>(
                                    row[static_cast<std::size_t>(target)]));

    // dlogits = weight/total * (softmax(row) - onehot(target))
    auto drow = result.dlogits.row(t);
    const double coeff = static_cast<double>(weight) / total_weight;
    for (std::int64_t v = 0; v < vocab; ++v) {
      const double p =
          std::exp(static_cast<double>(row[static_cast<std::size_t>(v)]) - lse);
      drow[static_cast<std::size_t>(v)] = static_cast<float>(coeff * p);
    }
    drow[static_cast<std::size_t>(target)] -= static_cast<float>(coeff);
  }
  result.loss = loss_acc / total_weight;
  return result;
}

}  // namespace chipalign
