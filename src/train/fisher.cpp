#include "train/fisher.hpp"

#include "train/loss.hpp"
#include "util/error.hpp"

namespace chipalign {

Checkpoint estimate_diagonal_fisher(TransformerModel& model,
                                    const std::vector<TrainExample>& dataset,
                                    int max_examples, std::uint64_t seed) {
  CA_CHECK(!dataset.empty(), "Fisher estimation needs a dataset");
  CA_CHECK(max_examples > 0, "max_examples must be positive");

  // Accumulators shaped like the parameters.
  std::map<std::string, Tensor> accum;
  for (const Parameter* p : model.parameters()) {
    accum.emplace(p->name, Tensor(p->value.shape()));
  }

  Rng rng(seed);
  int contributed = 0;
  for (int i = 0; i < max_examples; ++i) {
    const TrainExample& example =
        dataset[static_cast<std::size_t>(rng.uniform_index(dataset.size()))];

    model.zero_grad();
    const Tensor logits = model.forward(example.tokens);
    const LossResult loss =
        cross_entropy_next_token(logits, example.tokens, example.target_mask);
    if (loss.target_weight <= 0.0) {
      model.discard_forward();
      continue;
    }
    model.backward(loss.dlogits);
    ++contributed;

    for (const Parameter* p : model.parameters()) {
      auto acc = accum.at(p->name).values();
      const auto grad = p->grad.values();
      for (std::size_t j = 0; j < acc.size(); ++j) {
        acc[j] += grad[j] * grad[j];
      }
    }
  }
  CA_CHECK(contributed > 0, "no example contributed to the Fisher estimate");
  model.zero_grad();

  const float inv = 1.0F / static_cast<float>(contributed);
  for (auto& [name, tensor] : accum) {
    for (float& v : tensor.values()) v *= inv;
  }

  Checkpoint out(model.config(), std::move(accum));
  out.config().name = model.config().name + "-fisher";
  return out;
}

}  // namespace chipalign
