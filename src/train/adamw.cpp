#include "train/adamw.hpp"

#include <cmath>

#include "util/error.hpp"

namespace chipalign {

AdamW::AdamW(std::vector<Parameter*> params, AdamWConfig config)
    : params_(std::move(params)), config_(config) {
  CA_CHECK(!params_.empty(), "AdamW with no parameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

double AdamW::step() {
  ++step_count_;

  // Global gradient norm (for clipping and telemetry).
  double norm_sq = 0.0;
  for (const Parameter* p : params_) {
    for (float g : p->grad.values()) {
      norm_sq += static_cast<double>(g) * g;
    }
  }
  const double grad_norm = std::sqrt(norm_sq);
  double clip_scale = 1.0;
  if (config_.clip_norm > 0.0 && grad_norm > config_.clip_norm) {
    clip_scale = config_.clip_norm / (grad_norm + 1e-12);
  }

  const double bias1 = 1.0 - std::pow(config_.beta1,
                                      static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(config_.beta2,
                                      static_cast<double>(step_count_));

  for (std::size_t idx = 0; idx < params_.size(); ++idx) {
    Parameter& p = *params_[idx];
    auto values = p.value.values();
    auto grads = p.grad.values();
    auto m = m_[idx].values();
    auto v = v_[idx].values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double g = static_cast<double>(grads[i]) * clip_scale;
      m[i] =
          static_cast<float>(config_.beta1 * m[i] + (1.0 - config_.beta1) * g);
      v[i] = static_cast<float>(config_.beta2 * v[i] +
                                (1.0 - config_.beta2) * g * g);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      double update = m_hat / (std::sqrt(v_hat) + config_.eps);
      update += config_.weight_decay * values[i];  // decoupled decay
      values[i] = static_cast<float>(values[i] - config_.lr * update);
    }
  }
  return grad_norm;
}

double cosine_lr(std::int64_t step, std::int64_t warmup_steps,
                 std::int64_t total_steps, double peak_lr, double min_ratio) {
  CA_CHECK(total_steps > 0, "total_steps must be positive");
  if (warmup_steps > 0 && step < warmup_steps) {
    return peak_lr * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps);
  }
  const double progress =
      std::min(1.0, static_cast<double>(step - warmup_steps) /
                        std::max<double>(1.0, static_cast<double>(
                                                  total_steps - warmup_steps)));
  const double cosine =
      0.5 * (1.0 + std::cos(3.14159265358979323846 * progress));
  return peak_lr * (min_ratio + (1.0 - min_ratio) * cosine);
}

}  // namespace chipalign
