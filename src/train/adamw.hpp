#pragma once
/// \file adamw.hpp
/// \brief AdamW optimizer with decoupled weight decay and global-norm
/// gradient clipping.

#include <cstdint>
#include <vector>

#include "nn/param.hpp"

namespace chipalign {

/// AdamW hyperparameters.
struct AdamWConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.95;
  double eps = 1e-8;
  double weight_decay = 0.01;
  double clip_norm = 1.0;  ///< 0 disables clipping
};

/// Optimizer over an externally owned parameter list. Moment buffers are
/// allocated lazily on the first step and keyed by list position, so the
/// same parameter list (same order) must be passed implicitly via the
/// constructor-bound pointers.
class AdamW {
 public:
  AdamW(std::vector<Parameter*> params, AdamWConfig config);

  /// Applies one update from the accumulated gradients (does not zero them).
  /// Returns the pre-clip global gradient norm.
  double step();

  /// Current learning rate (mutable for schedules).
  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }

  std::int64_t step_count() const { return step_count_; }

 private:
  std::vector<Parameter*> params_;
  AdamWConfig config_;
  std::int64_t step_count_ = 0;
  std::vector<Tensor> m_;  ///< first moments
  std::vector<Tensor> v_;  ///< second moments
};

/// Cosine learning-rate schedule with linear warmup, decaying to
/// min_ratio * peak_lr at total_steps.
double cosine_lr(std::int64_t step, std::int64_t warmup_steps,
                 std::int64_t total_steps, double peak_lr,
                 double min_ratio = 0.1);

}  // namespace chipalign
