#pragma once
/// \file lora.hpp
/// \brief Low-Rank Adaptation (LoRA) for the transformer's linear layers.
///
/// The paper's domain-adaptive finetuning (DAFT) uses LoRA with rank 8 and
/// alpha 16; we mirror that pipeline. For each targeted weight W (shape
/// [out, in]) we learn A [rank, in] and B [out, rank] with effective weight
///
///   W_eff = W_base + (alpha / rank) * B @ A
///
/// Training materializes W_eff into the model before each forward pass and
/// projects the resulting full-weight gradient back onto A and B (exact,
/// because W_eff is linear in both). fold() bakes the adapters into the
/// weights, producing the merged "EDA model" checkpoint of Figure 4(a).

#include <cstdint>
#include <string>
#include <vector>

#include "nn/transformer.hpp"

namespace chipalign {

/// LoRA hyperparameters. Targets are parameter-name suffixes.
struct LoraConfig {
  std::int64_t rank = 8;
  double alpha = 16.0;
  /// Which linear layers receive adapters (matched by name suffix).
  std::vector<std::string> target_suffixes = {
      "self_attn.q_proj.weight", "self_attn.k_proj.weight",
      "self_attn.v_proj.weight", "self_attn.o_proj.weight",
  };
  std::uint64_t seed = 42;
};

/// A rank-r adapter pair bound to one model parameter.
struct LoraAdapter {
  Parameter* target = nullptr;  ///< the model weight this adapter augments
  Tensor base;                  ///< frozen copy of the original weight
  Parameter a;                  ///< [rank, in], gaussian init
  Parameter b;                  ///< [out, rank], zero init
};

/// The set of adapters attached to a model for one finetuning run.
class LoraAdapterSet {
 public:
  /// Snapshots the base weights of every matched parameter and initializes
  /// adapters (A gaussian, B zero => W_eff == W_base initially).
  LoraAdapterSet(TransformerModel& model, LoraConfig config);

  const LoraConfig& config() const { return config_; }
  std::size_t adapter_count() const { return adapters_.size(); }

  /// Trainable parameters (all A and B matrices) for the optimizer.
  std::vector<Parameter*> trainable_parameters();

  /// Writes W_eff = base + scaling * B A into each target weight. Call
  /// before every forward pass during training.
  void materialize();

  /// Projects the full-weight gradients (accumulated by model.backward into
  /// the target parameters) onto the adapter gradients:
  ///   dA += scaling * B^T dW,   dB += scaling * dW A^T.
  /// Call after backward passes, before the optimizer step.
  void accumulate_adapter_grads();

  /// Zeroes adapter gradients (the model's own grads are zeroed separately).
  void zero_grad();

  /// Restores the original base weights in the model (abandons adaptation).
  void restore_base();

  /// Bakes the adapters into the model weights permanently (the model keeps
  /// W_eff; adapters become inert). The model is then a plain checkpoint.
  void fold();

  double scaling() const {
    return config_.alpha / static_cast<double>(config_.rank);
  }

 private:
  TransformerModel& model_;
  LoraConfig config_;
  std::vector<LoraAdapter> adapters_;
};

}  // namespace chipalign
