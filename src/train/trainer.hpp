#pragma once
/// \file trainer.hpp
/// \brief Training loops: full finetuning and LoRA finetuning.
///
/// The trainer processes one sequence at a time and accumulates gradients
/// over a batch before each AdamW step (gradient accumulation — exact for
/// our batch sizes and simple to reason about). Examples are sampled with a
/// seeded RNG so runs are reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "train/adamw.hpp"
#include "train/lora.hpp"

namespace chipalign {

/// One training sequence: tokens plus per-token *target* weights. Position t
/// is trained to predict tokens[t+1] with weight target_mask[t+1]; prompt
/// tokens typically carry weight 0 so only answers are learned.
struct TrainExample {
  std::vector<TokenId> tokens;
  std::vector<float> target_mask;
};

/// Plain language-modeling example: every non-<bos> token is a target.
TrainExample make_lm_example(std::string_view text, std::int64_t max_len);

/// Supervised QA example: only the answer (and <eos>) tokens are targets.
/// Layout: <bos> prompt answer <eos>, truncated to max_len.
TrainExample make_qa_example(std::string_view prompt, std::string_view answer,
                             std::int64_t max_len);

/// Trainer hyperparameters.
struct TrainConfig {
  std::int64_t steps = 200;
  std::int64_t batch_size = 8;
  double peak_lr = 1e-3;
  std::int64_t warmup_steps = 20;
  double min_lr_ratio = 0.1;
  double weight_decay = 0.01;
  double clip_norm = 1.0;
  std::uint64_t seed = 123;
  std::int64_t log_every = 0;  ///< 0 disables progress logging
};

/// Outcome of a training run.
struct TrainStats {
  std::vector<double> losses;  ///< mean batch loss per step
  double first_loss = 0.0;
  double final_loss = 0.0;
};

/// Full-parameter finetuning (used for pretraining and the instruct model).
TrainStats train_full(TransformerModel& model,
                      const std::vector<TrainExample>& dataset,
                      const TrainConfig& config);

/// LoRA finetuning (the paper's DAFT recipe). Only adapter parameters are
/// updated; call adapters.fold() afterwards to bake them in.
TrainStats train_lora(TransformerModel& model, LoraAdapterSet& adapters,
                      const std::vector<TrainExample>& dataset,
                      const TrainConfig& config);

/// Mean loss of the model over a dataset (no gradient updates).
double evaluate_loss(TransformerModel& model,
                     const std::vector<TrainExample>& dataset);

}  // namespace chipalign
