// Tests for the fault-injection registry (failpoint.hpp) and the durable
// file-I/O primitives (fs_io.hpp): grammar parsing, skip/count semantics,
// the zero-cost-disarmed contract, atomic replace, and append durability.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs_io.hpp"

namespace chipalign {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return {std::istreambuf_iterator<char>(file),
          std::istreambuf_iterator<char>()};
}

/// Every test leaves the registry disarmed, so suites that follow never see
/// a stray armed site.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }

  std::string dir(const std::string& name) {
    const auto path = fs::temp_directory_path() / "ca_failpoint_tests" /
                      (std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()) +
                       "_" + name);
    fs::remove_all(path);
    fs::create_directories(path);
    return path.string();
  }
};

TEST_F(FailpointTest, SiteVocabularyIsFixedAndSorted) {
  const auto& sites = failpoint::all_sites();
  ASSERT_FALSE(sites.empty());
  for (std::size_t i = 1; i < sites.size(); ++i) {
    EXPECT_LT(sites[i - 1], sites[i]);
  }
  // The soak test enumerates these; pin the ones it depends on.
  const auto has = [&](const char* name) {
    return std::find(sites.begin(), sites.end(), name) != sites.end();
  };
  EXPECT_TRUE(has("shard.write"));
  EXPECT_TRUE(has("journal.append"));
  EXPECT_TRUE(has("journal.sync"));
  EXPECT_TRUE(has("index.save"));
  EXPECT_TRUE(has("source.read"));
}

TEST_F(FailpointTest, ArmRejectsUnknownSite) {
  failpoint::Spec spec;
  EXPECT_THROW(failpoint::arm("no.such.site", spec), Error);
  EXPECT_THROW(failpoint::arm_from_text("no.such.site=error"), Error);
}

TEST_F(FailpointTest, ArmFromTextRejectsMalformedEntries) {
  EXPECT_THROW(failpoint::arm_from_text("shard.write"), Error);
  EXPECT_THROW(failpoint::arm_from_text("shard.write=frobnicate"), Error);
  EXPECT_THROW(failpoint::arm_from_text("shard.write=delay:abc"), Error);
  EXPECT_THROW(failpoint::arm_from_text("shard.write=error@x"), Error);
}

TEST_F(FailpointTest, DisarmedSiteIsFreeAndCountsNothing) {
  const std::uint64_t before = failpoint::hit_count("shard.write");
  CA_FAILPOINT("shard.write");  // registry disarmed: no bookkeeping at all
  EXPECT_EQ(failpoint::hit_count("shard.write"), before);
}

TEST_F(FailpointTest, ErrorActionThrowsPermanentError) {
  failpoint::arm_from_text("shard.write=error");
  EXPECT_THROW(CA_FAILPOINT("shard.write"), Error);
  // Other sites stay silent.
  CA_FAILPOINT("shard.create");
}

TEST_F(FailpointTest, TransientActionThrowsRetryableError) {
  failpoint::arm_from_text("source.read=transient");
  bool caught_transient = false;
  try {
    CA_FAILPOINT("source.read");
  } catch (const TransientIoError&) {
    caught_transient = true;
  }
  EXPECT_TRUE(caught_transient);
}

TEST_F(FailpointTest, SkipAndCountWindowTheFirings) {
  // Skip 2 hits, then fire exactly once: only the third hit throws.
  const std::uint64_t before = failpoint::hit_count("shard.write");
  failpoint::arm_from_text("shard.write=error@2x1");
  CA_FAILPOINT("shard.write");
  CA_FAILPOINT("shard.write");
  EXPECT_THROW(CA_FAILPOINT("shard.write"), Error);
  CA_FAILPOINT("shard.write");  // count exhausted: pass-through again
  EXPECT_EQ(failpoint::hit_count("shard.write"), before + 4);
}

TEST_F(FailpointTest, DisarmStopsFiringAndDisarmAllClearsEverything) {
  failpoint::arm_from_text("shard.write=error;journal.sync=error");
  failpoint::disarm("shard.write");
  CA_FAILPOINT("shard.write");
  EXPECT_THROW(CA_FAILPOINT("journal.sync"), Error);
  failpoint::disarm_all();
  CA_FAILPOINT("journal.sync");
}

TEST_F(FailpointTest, BitflipCorruptsBufferInPlace) {
  failpoint::arm_from_text("source.read=bitflip");
  std::vector<std::uint8_t> buffer(16, 0);
  const std::size_t got =
      failpoint::eval_io("source.read", buffer.data(), buffer.size());
  EXPECT_EQ(got, buffer.size());  // same length, different bytes
  EXPECT_NE(buffer, std::vector<std::uint8_t>(16, 0));
}

TEST_F(FailpointTest, ShortIoTruncatesReportedSize) {
  failpoint::arm_from_text("source.read=short:5");
  std::vector<std::uint8_t> buffer(16, 0xAB);
  EXPECT_EQ(failpoint::eval_io("source.read", buffer.data(), buffer.size()),
            5u);
}

TEST_F(FailpointTest, EvalIoPassesThroughWhenDisarmed) {
  std::vector<std::uint8_t> buffer(8, 0xCD);
  EXPECT_EQ(failpoint::eval_io("source.read", buffer.data(), buffer.size()),
            8u);
  EXPECT_EQ(buffer, std::vector<std::uint8_t>(8, 0xCD));
}

TEST_F(FailpointTest, AtomicWriteFileReplacesAndLeavesNoTemp) {
  const std::string d = dir("aw");
  const std::string path = d + "/index.json";
  fs_io::atomic_write_file(path, "old");
  fs_io::atomic_write_file(path, "new contents");
  EXPECT_EQ(read_file(path), "new contents");
  EXPECT_FALSE(fs::exists(fs_io::temp_path_for(path)));
}

TEST_F(FailpointTest, AtomicWriteFailureLeavesTargetUntouched) {
  const std::string d = dir("awf");
  const std::string path = d + "/index.json";
  fs_io::atomic_write_file(path, "survivor");

  // Fail before the rename: the old file must survive, the temp must not.
  failpoint::arm_from_text("fsio.rename=error");
  EXPECT_THROW(fs_io::atomic_write_file(path, "doomed"), Error);
  failpoint::disarm_all();
  EXPECT_EQ(read_file(path), "survivor");
  EXPECT_FALSE(fs::exists(fs_io::temp_path_for(path)));
}

TEST_F(FailpointTest, AppendFileAppendsAndSurvivesMove) {
  const std::string d = dir("append");
  const std::string path = d + "/journal";
  fs_io::AppendFile file(path);
  file.append("line one\n");
  fs_io::AppendFile moved(std::move(file));
  EXPECT_FALSE(file.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.is_open());
  moved.append("line two\n");
  moved.sync();
  moved.close();
  EXPECT_EQ(read_file(path), "line one\nline two\n");
}

TEST_F(FailpointTest, EnospcActionMentionsSpaceInTheMessage) {
  failpoint::arm_from_text("fsio.write=enospc");
  try {
    CA_FAILPOINT("fsio.write");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("space"), std::string::npos);
  }
}

}  // namespace
}  // namespace chipalign
