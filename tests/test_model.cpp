// Tests for src/model: config validation, checkpoint IO and conformability.

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "io/safetensors.hpp"
#include "model/checkpoint.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace chipalign {
namespace {

ModelConfig valid_config() {
  ModelConfig config;
  config.name = "unit";
  config.vocab_size = 32;
  config.d_model = 16;
  config.n_layers = 2;
  config.n_heads = 4;
  config.n_kv_heads = 2;
  config.d_ff = 32;
  config.max_seq_len = 64;
  return config;
}

TEST(ModelConfig, ValidConfigPasses) {
  EXPECT_NO_THROW(valid_config().validate());
}

TEST(ModelConfig, RejectsBadFields) {
  auto c = valid_config();
  c.vocab_size = 0;
  EXPECT_THROW(c.validate(), Error);

  c = valid_config();
  c.n_kv_heads = 3;  // does not divide n_heads
  EXPECT_THROW(c.validate(), Error);

  c = valid_config();
  c.d_model = 18;  // not divisible by heads -> head_dim fractional
  EXPECT_THROW(c.validate(), Error);

  c = valid_config();
  c.n_heads = 8;  // head_dim = 2, even, fine
  EXPECT_NO_THROW(c.validate());

  c = valid_config();
  c.d_model = 4;  // head_dim = 1, odd -> RoPE impossible
  c.n_heads = 4;
  c.n_kv_heads = 2;
  EXPECT_THROW(c.validate(), Error);
}

TEST(ModelConfig, JsonRoundTrip) {
  const ModelConfig config = valid_config();
  const ModelConfig back = ModelConfig::from_json(config.to_json());
  EXPECT_EQ(back, config);
}

TEST(ModelConfig, ParameterCountFormula) {
  ModelConfig c = valid_config();
  // embed 32*16 + final norm 16 + per layer:
  //   wq 256 + wk 128 + wv 128 + wo 256 + 3*16*32=1536 + norms 32 = 2336
  EXPECT_EQ(c.parameter_count(), 32 * 16 + 16 + 2 * 2336);
}

TEST(Checkpoint, PutAtNames) {
  Checkpoint ckpt;
  ckpt.put("b", Tensor({2}, {1, 2}));
  ckpt.put("a", Tensor({3}, {1, 2, 3}));
  EXPECT_TRUE(ckpt.has("a"));
  EXPECT_FALSE(ckpt.has("c"));
  EXPECT_THROW(ckpt.at("c"), Error);
  const auto names = ckpt.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // sorted (std::map)
  EXPECT_EQ(ckpt.parameter_count(), 5);
}

TEST(Checkpoint, StatsComputesNormMeanMax) {
  Checkpoint ckpt;
  ckpt.put("w", Tensor({2, 2}, {3, 0, 0, -4}));
  const auto stats = ckpt.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_NEAR(stats[0].frobenius_norm, 5.0, 1e-12);
  EXPECT_NEAR(stats[0].mean, -0.25, 1e-12);
  EXPECT_NEAR(stats[0].abs_max, 4.0, 1e-12);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  Rng rng(1);
  Checkpoint ckpt;
  ckpt.config() = valid_config();
  ckpt.put("model.w1", Tensor::randn({4, 4}, rng));
  ckpt.put("model.w2", Tensor::randn({8}, rng));

  const auto dir = std::filesystem::temp_directory_path() / "ca_ckpt_tests";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "ckpt.safetensors").string();
  ckpt.save(path);

  const Checkpoint back = Checkpoint::load(path);
  EXPECT_EQ(back.config(), ckpt.config());
  EXPECT_EQ(back.names(), ckpt.names());
  for (const std::string& name : ckpt.names()) {
    EXPECT_EQ(back.at(name).shape(), ckpt.at(name).shape());
  }
}

TEST(Checkpoint, LoadRejectsFileWithoutConfig) {
  const auto dir = std::filesystem::temp_directory_path() / "ca_ckpt_tests";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "raw.safetensors").string();
  std::map<std::string, Tensor> tensors;
  tensors["w"] = Tensor({1}, {0.0F});
  save_safetensors(path, tensors);
  EXPECT_THROW(Checkpoint::load(path), Error);
}

TEST(Checkpoint, MergeableValidation) {
  Rng rng(2);
  Checkpoint a;
  a.put("w", Tensor::randn({2, 2}, rng));
  Checkpoint b;
  b.put("w", Tensor::randn({2, 2}, rng));
  EXPECT_NO_THROW(check_mergeable(a, b));

  Checkpoint c;
  c.put("w", Tensor::randn({2, 3}, rng));  // different shape
  EXPECT_THROW(check_mergeable(a, c), Error);

  Checkpoint d;
  d.put("other", Tensor::randn({2, 2}, rng));  // different name
  EXPECT_THROW(check_mergeable(a, d), Error);

  Checkpoint e;  // different count
  EXPECT_THROW(check_mergeable(a, e), Error);
}

TEST(Checkpoint, AllFinite) {
  Checkpoint ckpt;
  ckpt.put("w", Tensor({2}, {1.0F, 2.0F}));
  EXPECT_TRUE(ckpt.all_finite());
  Tensor bad({1});
  bad[0] = std::numeric_limits<float>::infinity();
  ckpt.put("bad", std::move(bad));
  EXPECT_FALSE(ckpt.all_finite());
}

}  // namespace
}  // namespace chipalign
