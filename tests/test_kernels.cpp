// Tests for src/tensor/kernels: bitwise agreement of every dispatched
// kernel with the kernels::ref executable specification, across backends
// (generic forced and, where the CPU allows, AVX2), awkward sizes (empty,
// single element, odd tails), and matmul shapes that cross the parallel
// block boundaries.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/kernels/kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {
namespace {

using kernels::force_generic;

/// Sizes chosen to hit every tail case of the 8-lane blocking: empty, single
/// element, below/at/above one lane block, and larger odd sizes.
const std::size_t kSizes[] = {0,  1,  2,  3,   7,   8,    9,
                              15, 16, 17, 31,  33,  64,   100,
                              255, 256, 257, 1000, 4097};

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Runs `body` once per backend the host can execute: generic always, the
/// SIMD backend when available. Restores dispatch afterwards.
template <typename Body>
void for_each_backend(const Body& body) {
  force_generic(true);
  body("generic");
  force_generic(false);
  if (kernels::simd_available()) body(kernels::backend_name());
}

class KernelBackends : public ::testing::Test {
 protected:
  void TearDown() override { force_generic(false); }
};

TEST_F(KernelBackends, DotMatchesRefBitwise) {
  Rng rng(101);
  for (const std::size_t n : kSizes) {
    const auto a = random_vec(n, rng);
    const auto b = random_vec(n, rng);
    const double expected = kernels::ref::dot(a.data(), b.data(), n);
    for_each_backend([&](const char* backend) {
      const double got = kernels::dot(a.data(), b.data(), n);
      EXPECT_EQ(got, expected) << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, NormMatchesRefBitwise) {
  Rng rng(102);
  for (const std::size_t n : kSizes) {
    const auto a = random_vec(n, rng);
    const double expected = kernels::ref::norm(a.data(), n);
    for_each_backend([&](const char* backend) {
      EXPECT_EQ(kernels::norm(a.data(), n), expected)
          << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, AxpyMatchesRefBitwise) {
  Rng rng(103);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    auto expected = y;
    kernels::ref::axpy(0.37F, x.data(), expected.data(), n);
    for_each_backend([&](const char* backend) {
      auto got = y;
      kernels::axpy(0.37F, x.data(), got.data(), n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, ScaleMatchesRefBitwise) {
  Rng rng(104);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    auto expected = x;
    kernels::ref::scale(expected.data(), -1.618F, n);
    for_each_backend([&](const char* backend) {
      auto got = x;
      kernels::scale(got.data(), -1.618F, n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, HadamardMatchesRefBitwise) {
  Rng rng(105);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    auto expected = y;
    kernels::ref::hadamard(x.data(), expected.data(), n);
    for_each_backend([&](const char* backend) {
      auto got = y;
      kernels::hadamard(x.data(), got.data(), n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << "n=" << n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, ScaledSumMatchesRefBitwise) {
  Rng rng(106);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    std::vector<float> expected(n);
    kernels::ref::scaled_sum(0.6F, x.data(), 0.4F, y.data(), expected.data(),
                             n);
    for_each_backend([&](const char* backend) {
      std::vector<float> got(n);
      kernels::scaled_sum(0.6F, x.data(), 0.4F, y.data(), got.data(), n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << "n=" << n << " backend=" << backend;
    });
  }
}

struct MatShape {
  std::int64_t m, k, n;
};

/// Mix of degenerate, odd, and block-boundary-crossing shapes. The matmul
/// row fan-out uses 16-row blocks above ~4.2M MACs, so the last entries run
/// both the serial and the thread-pool paths; results must not differ.
const MatShape kMatShapes[] = {
    {1, 1, 1},   {1, 7, 3},   {3, 1, 5},    {5, 8, 9},     {16, 16, 16},
    {17, 9, 33}, {40, 24, 31}, {33, 65, 18}, {70, 300, 200}, {96, 512, 128},
};

TEST_F(KernelBackends, MatmulMatchesRefBitwise) {
  Rng rng(107);
  for (const MatShape& s : kMatShapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k * s.n), rng);
    std::vector<float> expected(static_cast<std::size_t>(s.m * s.n));
    kernels::ref::matmul(a.data(), b.data(), expected.data(), s.m, s.k, s.n);
    for_each_backend([&](const char* backend) {
      std::vector<float> got(static_cast<std::size_t>(s.m * s.n));
      kernels::matmul(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << s.m << "x" << s.k << "x" << s.n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, MatmulNtMatchesRefBitwise) {
  Rng rng(108);
  for (const MatShape& s : kMatShapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), rng);
    const auto b = random_vec(static_cast<std::size_t>(s.n * s.k), rng);
    std::vector<float> expected(static_cast<std::size_t>(s.m * s.n));
    kernels::ref::matmul_nt(a.data(), b.data(), expected.data(), s.m, s.k, s.n);
    for_each_backend([&](const char* backend) {
      std::vector<float> got(static_cast<std::size_t>(s.m * s.n));
      kernels::matmul_nt(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << s.m << "x" << s.k << "x" << s.n << " backend=" << backend;
    });
  }
}

TEST_F(KernelBackends, MatmulTnAccumMatchesRefBitwise) {
  Rng rng(109);
  for (const MatShape& s : kMatShapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), rng);
    const auto b = random_vec(static_cast<std::size_t>(s.m * s.n), rng);
    const auto c0 = random_vec(static_cast<std::size_t>(s.k * s.n), rng);
    auto expected = c0;
    kernels::ref::matmul_tn_accum(a.data(), b.data(), expected.data(), s.m,
                                  s.k, s.n);
    for_each_backend([&](const char* backend) {
      auto got = c0;
      kernels::matmul_tn_accum(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << s.m << "x" << s.k << "x" << s.n << " backend=" << backend;
    });
  }
}

// A shape large enough to trigger the thread-pool fan-out must yield the
// same bits as the (serial) reference — thread-count invariance of the
// fixed block geometry. 256x256x256 = 16.7M MACs > the 4.2M threshold.
TEST_F(KernelBackends, ParallelMatmulIsBitIdenticalToSerialRef) {
  Rng rng(110);
  const std::int64_t d = 256;
  const auto a = random_vec(static_cast<std::size_t>(d * d), rng);
  const auto b = random_vec(static_cast<std::size_t>(d * d), rng);
  std::vector<float> expected(static_cast<std::size_t>(d * d));
  kernels::ref::matmul(a.data(), b.data(), expected.data(), d, d, d);
  std::vector<float> got(static_cast<std::size_t>(d * d));
  kernels::matmul(a.data(), b.data(), got.data(), d, d, d);
  EXPECT_TRUE(bitwise_equal(got, expected));

  std::vector<float> expected_tn(static_cast<std::size_t>(d * d));
  kernels::ref::matmul_tn_accum(a.data(), b.data(), expected_tn.data(), d, d,
                                d);
  std::vector<float> got_tn(static_cast<std::size_t>(d * d));
  kernels::matmul_tn_accum(a.data(), b.data(), got_tn.data(), d, d, d);
  EXPECT_TRUE(bitwise_equal(got_tn, expected_tn));
}

// Matvec shapes: out dims around the 4-row AVX2 blocking (1..5) and the
// 64-row parallel block boundary, in dims with odd lane tails.
TEST_F(KernelBackends, MatvecMatchesRefBitwise) {
  Rng rng(112);
  struct Shape {
    std::int64_t out, in;
  };
  const Shape shapes[] = {{1, 1},  {1, 17},  {2, 8},   {3, 33},  {4, 64},
                          {5, 9},  {7, 100}, {8, 257}, {63, 31}, {64, 16},
                          {65, 5}, {130, 48}};
  for (const Shape& s : shapes) {
    const auto w = random_vec(static_cast<std::size_t>(s.out * s.in), rng);
    const auto x = random_vec(static_cast<std::size_t>(s.in), rng);
    std::vector<float> expected(static_cast<std::size_t>(s.out));
    kernels::ref::matvec(w.data(), x.data(), expected.data(), s.out, s.in);
    for_each_backend([&](const char* backend) {
      std::vector<float> got(static_cast<std::size_t>(s.out));
      kernels::matvec(w.data(), x.data(), got.data(), s.out, s.in);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << s.out << "x" << s.in << " backend=" << backend;
    });
  }
}

// parallel_matvec must produce ref's bits at every thread count: each
// output row is one contract-reduced dot, written by exactly one task, so
// the row partitioning cannot show up in the result. 2048x1024 = 2.1M MACs
// clears the parallelization threshold.
TEST_F(KernelBackends, ParallelMatvecIsThreadCountInvariant) {
  Rng rng(113);
  const std::int64_t out_dim = 2048;
  const std::int64_t in_dim = 1024;
  const auto w = random_vec(static_cast<std::size_t>(out_dim * in_dim), rng);
  const auto x = random_vec(static_cast<std::size_t>(in_dim), rng);
  std::vector<float> expected(static_cast<std::size_t>(out_dim));
  kernels::ref::matvec(w.data(), x.data(), expected.data(), out_dim, in_dim);
  for_each_backend([&](const char* backend) {
    for (const std::size_t threads : {1U, 2U, 8U}) {
      ThreadPool pool(threads);
      std::vector<float> got(static_cast<std::size_t>(out_dim));
      kernels::parallel_matvec(w.data(), x.data(), got.data(), out_dim,
                               in_dim, &pool);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << "threads=" << threads << " backend=" << backend;
    }
  });
}

// The reduction contract in one picture: dot must equal the 8-lane pairwise
// tree exactly, not the naive serial sum. Guards against a backend quietly
// "simplifying" to a single accumulator.
TEST_F(KernelBackends, DotFollowsLaneContractNotSerialSum) {
  Rng rng(111);
  const std::size_t n = 1003;  // odd tail
  const auto a = random_vec(n, rng);
  const auto b = random_vec(n, rng);

  double lanes[kernels::kLanes] = {0};
  const std::size_t n8 = n & ~(kernels::kLanes - 1);
  for (std::size_t i = 0; i < n8; i += kernels::kLanes) {
    for (std::size_t l = 0; l < kernels::kLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  for (std::size_t i = n8; i < n; ++i) {
    lanes[i - n8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  const double contract = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                          ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  EXPECT_EQ(kernels::ref::dot(a.data(), b.data(), n), contract);
  for_each_backend([&](const char* backend) {
    EXPECT_EQ(kernels::dot(a.data(), b.data(), n), contract)
        << "backend=" << backend;
  });
}

TEST(KernelDispatch, BackendNameIsConsistentWithForceGeneric) {
  const bool simd = kernels::simd_available();
  force_generic(true);
  EXPECT_STREQ(kernels::backend_name(), "generic");
  force_generic(false);
  if (simd) {
    EXPECT_STRNE(kernels::backend_name(), "generic");
  } else {
    EXPECT_STREQ(kernels::backend_name(), "generic");
  }
}

}  // namespace
}  // namespace chipalign
