// Tests for the extension mergers: Fisher-weighted merging (with its
// gradient-based estimator) and the row-wise geodesic variant.

#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.hpp"
#include "merge/fisher.hpp"
#include "merge/geodesic.hpp"
#include "merge/geodesic_rowwise.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/fisher.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

MergeOptions opts(double lambda) {
  MergeOptions options;
  options.lambda = lambda;
  return options;
}

Checkpoint two_tensor_checkpoint(float a0, float a1, float b0, float b1) {
  Checkpoint ckpt;
  ckpt.put("w", Tensor({2}, {a0, a1}));
  ckpt.put("v", Tensor({2}, {b0, b1}));
  return ckpt;
}

// -- FisherMerger
// ---------------------------------------------------------------

TEST(FisherMerger, EqualFishersReduceToLerp) {
  const Checkpoint chip = two_tensor_checkpoint(1, 2, 3, 4);
  const Checkpoint instruct = two_tensor_checkpoint(5, 6, 7, 8);
  const Checkpoint fisher = two_tensor_checkpoint(1, 1, 1, 1);

  const FisherMerger merger(fisher, fisher);
  const Checkpoint merged =
      merge_checkpoints(merger, chip, instruct, nullptr, opts(0.25));
  // 0.25 * chip + 0.75 * instruct
  EXPECT_NEAR(merged.at("w")[0], 0.25F * 1 + 0.75F * 5, 1e-5);
  EXPECT_NEAR(merged.at("v")[1], 0.25F * 4 + 0.75F * 8, 1e-5);
}

TEST(FisherMerger, DominantFisherPicksThatModel) {
  const Checkpoint chip = two_tensor_checkpoint(1, 1, 1, 1);
  const Checkpoint instruct = two_tensor_checkpoint(9, 9, 9, 9);
  Checkpoint fisher_chip = two_tensor_checkpoint(1e6F, 0, 1e6F, 0);
  Checkpoint fisher_instruct = two_tensor_checkpoint(0, 1e6F, 0, 1e6F);

  const FisherMerger merger(fisher_chip, fisher_instruct);
  const Checkpoint merged =
      merge_checkpoints(merger, chip, instruct, nullptr, opts(0.5));
  EXPECT_NEAR(merged.at("w")[0], 1.0F, 1e-4);  // chip-important parameter
  EXPECT_NEAR(merged.at("w")[1], 9.0F, 1e-4);  // instruct-important parameter
}

TEST(FisherMerger, ZeroFisherFallsBackToMean) {
  const Checkpoint chip = two_tensor_checkpoint(2, 2, 2, 2);
  const Checkpoint instruct = two_tensor_checkpoint(4, 4, 4, 4);
  const Checkpoint zeros = two_tensor_checkpoint(0, 0, 0, 0);

  const FisherMerger merger(zeros, zeros);
  const Checkpoint merged =
      merge_checkpoints(merger, chip, instruct, nullptr, opts(0.5));
  EXPECT_NEAR(merged.at("w")[0], 3.0F, 1e-5);
}

TEST(FisherMerger, RejectsNegativeFisher) {
  const Checkpoint good = two_tensor_checkpoint(1, 1, 1, 1);
  const Checkpoint bad = two_tensor_checkpoint(-1, 1, 1, 1);
  EXPECT_THROW(FisherMerger(bad, good), Error);
}

// -- Fisher estimator
// -------------------------------------------------------------

ModelConfig fisher_config() {
  ModelConfig config;
  config.name = "fisher-test";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 64;
  config.validate();
  return config;
}

TEST(FisherEstimator, ProducesNonNegativeModelShapedCheckpoint) {
  Rng rng(1);
  TransformerModel model(fisher_config(), rng);
  std::vector<TrainExample> dataset = {
      make_qa_example("q: a\nout: ", "b", 64),
      make_qa_example("q: c\nout: ", "d", 64),
  };
  const Checkpoint fisher = estimate_diagonal_fisher(model, dataset, 4, 7);
  EXPECT_EQ(fisher.names(), model.to_checkpoint().names());
  double total = 0.0;
  for (const std::string& name : fisher.names()) {
    for (float v : fisher.at(name).values()) {
      EXPECT_GE(v, 0.0F);
      total += v;
    }
  }
  EXPECT_GT(total, 0.0);  // gradients flow somewhere
}

TEST(FisherEstimator, DeterministicForSeed) {
  Rng rng(2);
  TransformerModel model(fisher_config(), rng);
  std::vector<TrainExample> dataset = {
      make_qa_example("q: a\nout: ", "b", 64)};
  const Checkpoint f1 = estimate_diagonal_fisher(model, dataset, 3, 11);
  const Checkpoint f2 = estimate_diagonal_fisher(model, dataset, 3, 11);
  for (const std::string& name : f1.names()) {
    EXPECT_EQ(ops::max_abs_diff(f1.at(name), f2.at(name)), 0.0) << name;
  }
}

TEST(FisherEstimator, EndToEndFisherMergeRuns) {
  Rng rng(3);
  TransformerModel chip_model(fisher_config(), rng);
  TransformerModel instruct_model(fisher_config(), rng);
  std::vector<TrainExample> dataset = {
      make_qa_example("q: ping\nout: ", "pong", 64)};

  const Checkpoint fisher_chip =
      estimate_diagonal_fisher(chip_model, dataset, 2, 1);
  const Checkpoint fisher_instruct =
      estimate_diagonal_fisher(instruct_model, dataset, 2, 2);

  const FisherMerger merger(fisher_chip, fisher_instruct);
  const Checkpoint merged =
      merge_checkpoints(merger, chip_model.to_checkpoint(),
                        instruct_model.to_checkpoint(), nullptr, opts(0.6));
  EXPECT_TRUE(merged.all_finite());
}

// -- row-wise geodesic
// -----------------------------------------------------------

TEST(RowwiseGeodesic, EndpointsRecoverInputs) {
  Rng rng(4);
  Checkpoint chip;
  chip.put("w", Tensor::randn({4, 6}, rng));
  Checkpoint instruct;
  instruct.put("w", Tensor::randn({4, 6}, rng));

  const Checkpoint at_one = merge_checkpoints(GeodesicRowwiseMerger(), chip,
                                              instruct, nullptr, opts(1.0));
  EXPECT_LT(ops::max_abs_diff(at_one.at("w"), chip.at("w")), 2e-5);
  const Checkpoint at_zero = merge_checkpoints(GeodesicRowwiseMerger(), chip,
                                               instruct, nullptr, opts(0.0));
  EXPECT_LT(ops::max_abs_diff(at_zero.at("w"), instruct.at("w")), 2e-5);
}

TEST(RowwiseGeodesic, RestoresPerRowNorms) {
  Rng rng(5);
  Checkpoint chip;
  chip.put("w", Tensor::randn({3, 8}, rng, 2.0F));
  Checkpoint instruct;
  instruct.put("w", Tensor::randn({3, 8}, rng, 0.5F));

  const double lambda = 0.6;
  const Checkpoint merged = merge_checkpoints(GeodesicRowwiseMerger(), chip,
                                              instruct, nullptr, opts(lambda));
  for (std::int64_t r = 0; r < 3; ++r) {
    const double expected = std::pow(ops::norm(chip.at("w").row(r)), lambda) *
                            std::pow(ops::norm(instruct.at("w").row(r)),
                                     1.0 - lambda);
    EXPECT_NEAR(ops::norm(merged.at("w").row(r)), expected, expected * 1e-4)
        << "row " << r;
  }
}

TEST(RowwiseGeodesic, Rank1FallsBackToWholeTensorGeodesic) {
  Rng rng(6);
  Checkpoint chip;
  chip.put("norm", Tensor::randn({8}, rng));
  Checkpoint instruct;
  instruct.put("norm", Tensor::randn({8}, rng));

  const Checkpoint rowwise = merge_checkpoints(GeodesicRowwiseMerger(), chip,
                                               instruct, nullptr, opts(0.6));
  const Checkpoint whole = merge_checkpoints(GeodesicMerger(), chip, instruct,
                                             nullptr, opts(0.6));
  EXPECT_LT(ops::max_abs_diff(rowwise.at("norm"), whole.at("norm")), 1e-6);
}

TEST(RowwiseGeodesic, DiffersFromWholeTensorOnHeterogeneousRows) {
  // Rows with different angles and norms: whole-tensor normalization mixes
  // them, per-row treats each independently — results must differ.
  Checkpoint chip;
  chip.put("w", Tensor({2, 2}, {2.0F, 0.0F, 1.0F, 0.0F}));
  Checkpoint instruct;
  instruct.put("w", Tensor({2, 2}, {0.0F, 1.0F, 3.0F, 0.0F}));

  const Checkpoint rowwise = merge_checkpoints(GeodesicRowwiseMerger(), chip,
                                               instruct, nullptr, opts(0.5));
  const Checkpoint whole = merge_checkpoints(GeodesicMerger(), chip, instruct,
                                             nullptr, opts(0.5));
  EXPECT_GT(ops::max_abs_diff(rowwise.at("w"), whole.at("w")), 1e-3);
}

TEST(RowwiseGeodesic, ZeroRowFallsBackToRowLerp) {
  Checkpoint chip;
  chip.put("w", Tensor({2, 2}, {0.0F, 0.0F, 1.0F, 1.0F}));
  Checkpoint instruct;
  instruct.put("w", Tensor({2, 2}, {4.0F, 4.0F, 1.0F, 1.0F}));
  const Checkpoint merged = merge_checkpoints(GeodesicRowwiseMerger(), chip,
                                              instruct, nullptr, opts(0.25));
  // Row 0: chip side zero -> LERP: 0.25*0 + 0.75*4 = 3.
  EXPECT_NEAR(merged.at("w").at2(0, 0), 3.0F, 1e-5);
}

}  // namespace
}  // namespace chipalign
