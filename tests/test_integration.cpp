// Integration tests: core pipeline pieces plus a miniature end-to-end
// pretrain -> finetune -> merge -> evaluate run (kept small for CI speed).

#include <gtest/gtest.h>

#include <sstream>

#include "core/backbones.hpp"
#include "core/pipeline.hpp"
#include "core/table.hpp"
#include "data/corpus.hpp"
#include "eval/qa_runner.hpp"
#include "merge/registry.hpp"
#include "nn/infer.hpp"
#include "train/trainer.hpp"

namespace chipalign {
namespace {

TEST(Table, PrintsAlignedColumns) {
  TablePrinter table({"Method", "Score"});
  table.add_row({"chipalign", TablePrinter::fmt(0.3691, 3)});
  table.add_row({"ties", "0.329"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("chipalign"), std::string::npos);
  EXPECT_NE(out.find("0.369"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_THROW(table.add_row({"only one"}), Error);
}

TEST(Table, FormattersRound) {
  EXPECT_EQ(TablePrinter::fmt(0.98765, 3), "0.988");
  EXPECT_EQ(TablePrinter::pct(0.266, 1), "26.6");
}

TEST(Backbones, SpecsAreCoherent) {
  for (const BackboneSpec& spec :
       {openroad_backbone_a(), openroad_backbone_b(), industrial_backbone()}) {
    EXPECT_NO_THROW(spec.config.validate());
    EXPECT_GT(spec.pretrain.steps, 0);
    EXPECT_GT(spec.instruct_ft.steps, 0);
    EXPECT_GT(spec.daft.steps, 0);
    EXPECT_EQ(spec.config.vocab_size, tokenizer().vocab_size());
  }
  EXPECT_EQ(industrial_backbone().chip_recipe,
            BackboneSpec::ChipRecipe::kChipNemoFromBase);
}

TEST(EvalSuiteBuilder, ProducesPaperSizedSets) {
  const FactBase facts;
  const EvalSuite suite = build_eval_suite(facts);
  EXPECT_EQ(suite.openroad.size(), 90u);    // paper: 90 triplets
  EXPECT_EQ(suite.industrial.size(), 20u);  // 4 domains x 5 (~39 questions)
  EXPECT_EQ(suite.mcq.size(), 30u);
  EXPECT_EQ(suite.ifeval.size(), 120u);
  ASSERT_NE(suite.rag, nullptr);
  EXPECT_EQ(suite.rag->corpus_size(), facts.corpus_sentences().size());
}

TEST(RunMerge, DispatchesEveryRegistryMethod) {
  Rng rng(1);
  ModelConfig config;
  config.name = "m";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 8;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 2;
  config.d_ff = 12;
  config.max_seq_len = 32;
  TransformerModel base_model(config, rng);
  const Checkpoint base = base_model.to_checkpoint();

  auto perturb = [&](std::uint64_t seed) {
    Rng prng(seed);
    Checkpoint out = base;
    for (const std::string& name : base.names()) {
      Tensor delta = Tensor::randn(base.at(name).shape(), prng, 0.01F);
      Tensor sum = base.at(name);
      for (std::int64_t i = 0; i < sum.numel(); ++i) sum[i] += delta[i];
      out.put(name, std::move(sum));
    }
    return out;
  };
  const Checkpoint chip = perturb(11);
  const Checkpoint instruct = perturb(12);

  for (const std::string& method : merger_names()) {
    const Checkpoint merged = run_merge(method, chip, instruct, base, 0.6);
    EXPECT_TRUE(merged.all_finite()) << method;
    EXPECT_EQ(merged.names(), base.names()) << method;
    // The merged model must load and run.
    TransformerModel model = TransformerModel::from_checkpoint(merged);
    const Tensor logits = model.forward({1, 5, 9});
    EXPECT_TRUE(logits.all_finite()) << method;
    model.discard_forward();
  }
}

/// Miniature end-to-end run exercising the full Figure-4(a) pipeline shape.
/// Budgets are tiny; we assert structural soundness and that training moved
/// each model toward its specialty, not benchmark-grade quality.
TEST(EndToEnd, MiniaturePipelineRuns) {
  const FactBase facts;

  ModelConfig config;
  config.name = "mini";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 24;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 48;
  config.max_seq_len = 224;

  Rng rng(77);
  TransformerModel base_model(config, rng);

  // Abbreviated pretraining.
  PretrainDataConfig pretrain_data;
  pretrain_data.count = 200;
  pretrain_data.max_len = config.max_seq_len;
  TrainConfig pretrain_budget;
  pretrain_budget.steps = 60;
  pretrain_budget.batch_size = 4;
  pretrain_budget.peak_lr = 3e-3;
  const TrainStats pre_stats = train_full(
      base_model, build_pretrain_dataset(facts, pretrain_data),
          pretrain_budget);
  EXPECT_LT(pre_stats.final_loss, pre_stats.first_loss);
  const Checkpoint base = base_model.to_checkpoint();

  // Instruct finetune.
  TransformerModel instruct_model = TransformerModel::from_checkpoint(base);
  InstructDataConfig instruct_data;
  instruct_data.count = 150;
  instruct_data.max_len = config.max_seq_len;
  TrainConfig instruct_budget = pretrain_budget;
  instruct_budget.steps = 50;
  const TrainStats inst_stats =
      train_full(instruct_model,
                 build_instruct_dataset(instruct_data), instruct_budget);
  EXPECT_LT(inst_stats.final_loss, inst_stats.first_loss);
  const Checkpoint instruct = instruct_model.to_checkpoint();

  // LoRA DAFT from the instruct model.
  TransformerModel chip_model = TransformerModel::from_checkpoint(instruct);
  LoraConfig lora_config;
  lora_config.rank = 4;
  LoraAdapterSet adapters(chip_model, lora_config);
  ChipDataConfig chip_data;
  chip_data.max_len = config.max_seq_len;
  chip_data.repeats_per_fact = 2;
  chip_data.domains = {FactDomain::kVlsiFlow};
  TrainConfig daft_budget = pretrain_budget;
  daft_budget.steps = 40;
  const TrainStats daft_stats =
      train_lora(chip_model, adapters,
                 build_chip_daft_dataset(facts, chip_data), daft_budget);
  EXPECT_LT(daft_stats.final_loss, daft_stats.first_loss);
  adapters.fold();
  const Checkpoint chip = chip_model.to_checkpoint();

  // ChipAlign merge and a smoke evaluation.
  const Checkpoint merged = run_merge("chipalign", chip, instruct, base, 0.6);
  EXPECT_TRUE(merged.all_finite());

  TransformerModel merged_model = TransformerModel::from_checkpoint(merged);
  const auto items = build_openroad_eval(facts, 5, 6);
  const CategoryScores scores =
      run_openroad_eval(merged_model, items, /*rag=*/nullptr);
  EXPECT_GE(scores.all, 0.0);
  EXPECT_LE(scores.all, 1.0);
}

}  // namespace
}  // namespace chipalign
