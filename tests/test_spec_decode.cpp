// Tests for speculative decoding (src/nn/drafter.*, src/nn/spec_decode.*,
// the multi-token verify_step in src/nn/decode.*) and the KV rollback
// primitive SessionState::truncate(). The load-bearing claims: verify_step
// rows are bitwise identical to serial decode_step logits (so greedy
// acceptance can never change output bits), truncate-then-redecode equals
// never-having-decoded, and speculative greedy output — standalone and
// served, any drafter, any draft_k, fp32 or int8 weights, prefix cache on
// or off — is byte-identical to plain greedy generate().
//
// Suite names (SpecDecode, KvTruncate) are stable so sanitizer CI can
// select them with ctest -R.

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "nn/decode.hpp"
#include "nn/drafter.hpp"
#include "nn/infer.hpp"
#include "nn/spec_decode.hpp"
#include "serve/radix_cache.hpp"
#include "serve/server.hpp"
#include "text/tokenizer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace chipalign {
namespace {

/// Same tiny SIMD-exercising shape the serve tests use.
ModelConfig spec_config() {
  ModelConfig config;
  config.name = "spec-test";
  config.vocab_size = 50;
  config.d_model = 32;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 48;
  config.max_seq_len = 64;
  config.validate();
  return config;
}

/// Tokenizer-vocab shape for generate()/Server round trips.
ModelConfig spec_text_config() {
  ModelConfig config;
  config.name = "spec-text";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 256;
  config.validate();
  return config;
}

std::vector<TokenId> ramp_tokens(std::size_t n, std::int64_t vocab,
                                 std::size_t stride) {
  std::vector<TokenId> tokens(n);
  for (std::size_t i = 0; i < n; ++i) {
    tokens[i] = static_cast<TokenId>((i * stride + 1) %
                                     static_cast<std::size_t>(vocab));
  }
  return tokens;
}

bool rows_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Serial reference: decode `tokens` one decode_step at a time, returning
/// every logits row.
std::vector<std::vector<float>> serial_rows(const TransformerModel& model,
                                            const std::vector<TokenId>& tokens,
                                            DType kv_dtype = DType::kF32) {
  const auto& config = model.config();
  SessionState state(config, config.max_seq_len, 7, kv_dtype);
  DecodeScratch scratch(config, 1);
  std::vector<float> logits(static_cast<std::size_t>(config.vocab_size));
  std::vector<std::vector<float>> rows;
  for (const TokenId token : tokens) {
    decode_step(model, state, scratch, token,
                std::span<float>(logits.data(), logits.size()));
    rows.push_back(logits);
  }
  return rows;
}

/// Checks a prefix+block decode against the serial reference: the prefix is
/// fed serially, the block through ONE verify_step, and every block row
/// must memcmp-equal its serial counterpart.
void check_verify_block(const TransformerModel& model,
                        const std::vector<TokenId>& prefix,
                        const std::vector<TokenId>& block_tokens,
                        ThreadPool* pool, DType kv_dtype = DType::kF32) {
  const auto& config = model.config();
  std::vector<TokenId> all = prefix;
  all.insert(all.end(), block_tokens.begin(), block_tokens.end());
  const auto expected = serial_rows(model, all, kv_dtype);

  SessionState state(config, config.max_seq_len, 7, kv_dtype);
  DecodeScratch serial_scratch(config, 1);
  std::vector<float> row(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : prefix) {
    decode_step(model, state, serial_scratch, token,
                std::span<float>(row.data(), row.size()));
  }
  DecodeScratch block_scratch(
      config, static_cast<std::int64_t>(block_tokens.size()));
  std::vector<float> block_logits(block_tokens.size() *
                                  static_cast<std::size_t>(config.vocab_size));
  verify_step(model, state, block_scratch,
              std::span<const TokenId>(block_tokens.data(),
                                       block_tokens.size()),
              std::span<float>(block_logits.data(), block_logits.size()),
              pool);
  EXPECT_EQ(state.position, static_cast<std::int64_t>(all.size()));
  for (std::size_t t = 0; t < block_tokens.size(); ++t) {
    const std::span<const float> got(
        block_logits.data() + t * static_cast<std::size_t>(config.vocab_size),
        static_cast<std::size_t>(config.vocab_size));
    EXPECT_TRUE(rows_equal(got, expected[prefix.size() + t]))
        << "block row " << t << " of " << block_tokens.size();
  }
}

TEST(SpecDecode, VerifyStepOneTokenMemcmpEqualsDecodeStep) {
  Rng rng(11);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  const auto tokens = ramp_tokens(6, config.vocab_size, 5);

  SessionState a(config, config.max_seq_len);
  SessionState b(config, config.max_seq_len);
  DecodeScratch scratch_a(config, 1);
  DecodeScratch scratch_b(config, 1);
  std::vector<float> la(static_cast<std::size_t>(config.vocab_size));
  std::vector<float> lb(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : tokens) {
    decode_step(model, a, scratch_a, token,
                std::span<float>(la.data(), la.size()));
    const TokenId block[1] = {token};
    verify_step(model, b, scratch_b, std::span<const TokenId>(block, 1),
                std::span<float>(lb.data(), lb.size()));
    ASSERT_EQ(0, std::memcmp(la.data(), lb.data(),
                             la.size() * sizeof(float)));
    ASSERT_EQ(a.position, b.position);
  }
}

TEST(SpecDecode, VerifyStepBlockBitwiseEqualsSerialSteps) {
  Rng rng(12);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  const auto prefix = ramp_tokens(7, config.vocab_size, 3);
  for (const std::size_t block_len : {2U, 3U, 5U, 9U}) {
    check_verify_block(model, prefix,
                       ramp_tokens(block_len, config.vocab_size, 11),
                       nullptr);
  }
}

TEST(SpecDecode, VerifyStepPoolInvariant) {
  Rng rng(13);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  ThreadPool pool(4);
  check_verify_block(model, ramp_tokens(5, config.vocab_size, 7),
                     ramp_tokens(6, config.vocab_size, 13), &pool);
}

TEST(SpecDecode, VerifyStepF16KvMatchesSerial) {
  Rng rng(14);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  check_verify_block(model, ramp_tokens(4, config.vocab_size, 9),
                     ramp_tokens(5, config.vocab_size, 17), nullptr,
                     DType::kF16);
}

TEST(SpecDecode, VerifyStepInt8WeightsMatchesSerial) {
  Rng rng(15);
  TransformerModel model(spec_config(), rng);
  model.quantize_weights(DType::kI8);
  const auto& config = model.config();
  check_verify_block(model, ramp_tokens(4, config.vocab_size, 5),
                     ramp_tokens(5, config.vocab_size, 7), nullptr);
}

TEST(SpecDecode, VerifyStepRejectsOverflowingBlock) {
  Rng rng(16);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  SessionState state(config, /*capacity_tokens=*/4);
  DecodeScratch scratch(config, 8);
  const auto block = ramp_tokens(5, config.vocab_size, 3);
  std::vector<float> logits(block.size() *
                            static_cast<std::size_t>(config.vocab_size));
  EXPECT_THROW(
      verify_step(model, state, scratch,
                  std::span<const TokenId>(block.data(), block.size()),
                  std::span<float>(logits.data(), logits.size())),
      Error);
}

TEST(SpecDecode, PromptLookupProposesMostRecentLongestMatch) {
  PromptLookupDrafter drafter(/*ngram_min=*/1, /*ngram_max=*/3);
  // Context ends in (8, 9); the trigram (7, 8, 9) occurs earlier followed
  // by 10 11 12, and the most recent bigram (8, 9) is followed by 20 21.
  const std::vector<TokenId> context = {7, 8, 9, 10, 11, 12,
                                        8, 9, 20, 21, 7,  8, 9};
  std::vector<TokenId> out(4);
  const std::size_t n = drafter.draft(
      std::span<const TokenId>(context.data(), context.size()), 4,
      std::span<TokenId>(out.data(), out.size()));
  // Longest suffix n-gram wins: (7, 8, 9) matched at the start, so the
  // proposal is what followed it there.
  ASSERT_EQ(n, 4U);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  EXPECT_EQ(out[2], 12);
  EXPECT_EQ(out[3], 8);
}

TEST(SpecDecode, PromptLookupPrefersMostRecentAmongEqualLength) {
  PromptLookupDrafter drafter(/*ngram_min=*/2, /*ngram_max=*/2);
  // The bigram (1, 2) occurs twice; the later occurrence (followed by 40)
  // must win.
  const std::vector<TokenId> context = {1, 2, 30, 1, 2, 40, 1, 2};
  std::vector<TokenId> out(2);
  const std::size_t n = drafter.draft(
      std::span<const TokenId>(context.data(), context.size()), 2,
      std::span<TokenId>(out.data(), out.size()));
  ASSERT_GE(n, 1U);
  EXPECT_EQ(out[0], 40);
}

TEST(SpecDecode, PromptLookupNoMatchReturnsZero) {
  PromptLookupDrafter drafter;
  const std::vector<TokenId> context = {1, 2, 3, 4, 5};
  std::vector<TokenId> out(4);
  EXPECT_EQ(0U, drafter.draft(
                    std::span<const TokenId>(context.data(), context.size()),
                    4, std::span<TokenId>(out.data(), out.size())));
  // Degenerate contexts must not propose anything either.
  const std::vector<TokenId> tiny = {3};
  EXPECT_EQ(0U,
            drafter.draft(std::span<const TokenId>(tiny.data(), tiny.size()),
                          4, std::span<TokenId>(out.data(), out.size())));
}

TEST(SpecDecode, SelfSpecDrafterIsDeterministicAndRewinds) {
  Rng rng(21);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  SelfSpeculativeDrafter drafter(model);

  const auto context = ramp_tokens(8, config.vocab_size, 3);
  std::vector<TokenId> first(4);
  std::vector<TokenId> again(4);
  const std::size_t n1 = drafter.draft(
      std::span<const TokenId>(context.data(), context.size()), 4,
      std::span<TokenId>(first.data(), first.size()));

  // Diverge: the caller rejected our drafts and continued differently. The
  // drafter must rewind to the common prefix and still answer; a fresh
  // drafter fed the same context must agree exactly (determinism).
  auto diverged = context;
  diverged.push_back(static_cast<TokenId>(2));
  std::vector<TokenId> scratch_out(4);
  drafter.draft(std::span<const TokenId>(diverged.data(), diverged.size()),
                4, std::span<TokenId>(scratch_out.data(),
                                      scratch_out.size()));

  const std::size_t n2 = drafter.draft(
      std::span<const TokenId>(context.data(), context.size()), 4,
      std::span<TokenId>(again.data(), again.size()));
  EXPECT_EQ(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) EXPECT_EQ(first[i], again[i]);
}

/// Drafter that proposes deterministic garbage — every draft should be
/// rejected, and the output must STILL match plain greedy decode exactly.
class GarbageDrafter : public Drafter {
 public:
  explicit GarbageDrafter(std::int64_t vocab) : vocab_(vocab) {}
  std::size_t draft(std::span<const TokenId> context, std::size_t max_tokens,
                    std::span<TokenId> out) override {
    for (std::size_t i = 0; i < max_tokens; ++i) {
      out[i] = static_cast<TokenId>(
          (context.size() * 7 + i * 13 + 1) %
          static_cast<std::size_t>(vocab_));
    }
    return max_tokens;
  }

 private:
  std::int64_t vocab_;
};

TEST(SpecDecode, SpeculativeGenerateMatchesPlainGreedyAcrossDraftK) {
  Rng rng(31);
  const TransformerModel model(spec_text_config(), rng);
  GenerateOptions plain;
  plain.max_new_tokens = 24;
  const std::string prompt = "do: route the clock tree\nq: fix skew\nout: ";
  const std::string expected = generate(model, prompt, plain);

  for (const std::int64_t draft_k : {0, 2, 4, 8}) {
    GenerateOptions spec = plain;
    spec.speculative = true;
    spec.draft_k = draft_k;
    SpecDecodeStats stats;
    const std::string got =
        speculative_generate(model, prompt, spec, false, nullptr, &stats);
    EXPECT_EQ(got, expected) << "draft_k " << draft_k;
    EXPECT_GT(stats.verify_passes, 0) << "draft_k " << draft_k;
    // generate() itself must dispatch to the same path.
    EXPECT_EQ(generate(model, prompt, spec), expected)
        << "draft_k " << draft_k;
  }
}

TEST(SpecDecode, SpeculativeGenerateMatchesWithSelfSpecDrafter) {
  Rng rng(32);
  const TransformerModel model(spec_text_config(), rng);
  GenerateOptions plain;
  plain.max_new_tokens = 16;
  const std::string prompt = "explain hold violations";
  const std::string expected = generate(model, prompt, plain);

  GenerateOptions spec = plain;
  spec.speculative = true;
  spec.draft_k = 4;
  SelfSpeculativeDrafter drafter(model);
  SpecDecodeStats stats;
  EXPECT_EQ(speculative_generate(model, prompt, spec, false, &drafter,
                                 &stats),
            expected);
  EXPECT_GT(stats.verify_passes, 0);
}

TEST(SpecDecode, SpeculativeGenerateMatchesWithGarbageDrafter) {
  Rng rng(33);
  const TransformerModel model(spec_text_config(), rng);
  GenerateOptions plain;
  plain.max_new_tokens = 16;
  const std::string prompt = "q: what is wns?\nout: ";
  const std::string expected = generate(model, prompt, plain);

  GenerateOptions spec = plain;
  spec.speculative = true;
  spec.draft_k = 4;
  GarbageDrafter drafter(model.config().vocab_size);
  SpecDecodeStats stats;
  EXPECT_EQ(speculative_generate(model, prompt, spec, false, &drafter,
                                 &stats),
            expected);
  // Garbage proposals may occasionally collide with the real argmax, but
  // the accounting must stay consistent.
  EXPECT_LE(stats.accepted, stats.drafted);
  EXPECT_GE(stats.emitted, stats.verify_passes);
}

TEST(SpecDecode, SpeculativeGenerateMatchesForInt8Weights) {
  Rng rng(34);
  TransformerModel model(spec_text_config(), rng);
  model.quantize_weights(DType::kI8);
  GenerateOptions plain;
  plain.max_new_tokens = 20;
  const std::string prompt = "do: answer placement questions\nout: ";
  const std::string expected = generate(model, prompt, plain);

  for (const std::int64_t draft_k : {2, 8}) {
    GenerateOptions spec = plain;
    spec.speculative = true;
    spec.draft_k = draft_k;
    EXPECT_EQ(speculative_generate(model, prompt, spec), expected)
        << "draft_k " << draft_k;
  }
}

TEST(SpecDecode, ServedSpeculativeMatchesGenerateAcrossCachingAndDraftK) {
  Rng rng(35);
  const TransformerModel model(spec_text_config(), rng);
  const std::vector<std::string> prompts = {
      "do: answer placement questions\nq: what is wns?\nout: ",
      "do: answer placement questions\nq: what is tns?\nout: ",
      "route the clock tree",
      "fix hold violations on the scan chain",
  };
  GenerateOptions options;
  options.max_new_tokens = 12;
  std::vector<std::string> expected;
  for (const auto& prompt : prompts) {
    expected.push_back(generate(model, prompt, options));
  }

  for (const std::int64_t draft_k : {0, 2, 4, 8}) {
    for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{1}
                                                              << 22}) {
      ServeConfig serve;
      serve.max_batch = 4;
      serve.prefix_cache_bytes = cache_bytes;
      serve.speculative = true;
      serve.draft_k = draft_k;
      Server server(model, serve);
      std::vector<SessionId> ids;
      for (const auto& prompt : prompts) {
        ids.push_back(server.submit(server.text_request(prompt, options)));
      }
      server.run();
      for (std::size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_EQ(server.wait_result(ids[i]).text, expected[i])
            << "draft_k " << draft_k << " cache " << cache_bytes
            << " prompt " << i;
      }
      const ServerStats stats = server.stats();
      EXPECT_GT(stats.spec.verify_passes, 0) << "draft_k " << draft_k;
      EXPECT_LE(stats.spec.accepted, stats.spec.drafted);
    }
  }
}

TEST(SpecDecode, ServedSpeculativeMatchesGenerateForInt8Weights) {
  Rng rng(36);
  TransformerModel model(spec_text_config(), rng);
  model.quantize_weights(DType::kI8);
  const std::string prompt = "q: define congestion\nout: ";
  GenerateOptions options;
  options.max_new_tokens = 12;
  const std::string expected = generate(model, prompt, options);

  ServeConfig serve;
  serve.speculative = true;
  serve.draft_k = 4;
  Server server(model, serve);
  const SessionId id = server.submit(server.text_request(prompt, options));
  server.run();
  EXPECT_EQ(server.wait_result(id).text, expected);
}

TEST(SpecDecode, ServedSampledSessionsKeepPlainPathUnderSpeculative) {
  Rng rng(37);
  const TransformerModel model(spec_text_config(), rng);
  const std::string prompt = "route the clock tree";
  GenerateOptions sampled;
  sampled.max_new_tokens = 12;
  sampled.temperature = 0.8;
  sampled.seed = 123;
  const std::string expected = generate(model, prompt, sampled);

  ServeConfig serve;
  serve.speculative = true;
  serve.draft_k = 4;
  Server server(model, serve);
  const SessionId id = server.submit(server.text_request(prompt, sampled));
  server.run();
  EXPECT_EQ(server.wait_result(id).text, expected);
  // Sampled sessions never take the draft/verify path.
  EXPECT_EQ(server.stats().spec.verify_passes, 0);
}

TEST(KvTruncate, TruncateThenRedecodeBitwiseEqualsStraightDecode) {
  Rng rng(41);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  const auto base = ramp_tokens(6, config.vocab_size, 3);
  const auto retry = ramp_tokens(4, config.vocab_size, 19);

  // Reference: base[0..3) then retry, with no truncation anywhere.
  std::vector<TokenId> straight(base.begin(), base.begin() + 3);
  straight.insert(straight.end(), retry.begin(), retry.end());
  const auto expected = serial_rows(model, straight);

  SessionState state(config, config.max_seq_len);
  DecodeScratch scratch(config, 1);
  std::vector<float> row(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : base) {
    decode_step(model, state, scratch, token,
                std::span<float>(row.data(), row.size()));
  }
  state.truncate(3);  // drop base[3..6) as a rejected speculation would
  for (std::size_t i = 0; i < retry.size(); ++i) {
    decode_step(model, state, scratch, retry[i],
                std::span<float>(row.data(), row.size()));
    EXPECT_TRUE(rows_equal(std::span<const float>(row.data(), row.size()),
                           expected[3 + i]))
        << "redecode step " << i;
  }
}

TEST(KvTruncate, TruncateValidatesRange) {
  Rng rng(42);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  SessionState state(config, config.max_seq_len);
  DecodeScratch scratch(config, 1);
  std::vector<float> row(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : ramp_tokens(3, config.vocab_size, 5)) {
    decode_step(model, state, scratch, token,
                std::span<float>(row.data(), row.size()));
  }
  EXPECT_THROW(state.truncate(-1), Error);
  EXPECT_THROW(state.truncate(4), Error);
  state.truncate(3);  // no-op at the boundary
  EXPECT_EQ(state.position, 3);
  state.truncate(0);
  EXPECT_EQ(state.position, 0);
}

TEST(KvTruncate, TruncateInteractsWithSnapshotRestore) {
  Rng rng(43);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  const auto prompt = ramp_tokens(5, config.vocab_size, 3);
  const auto cont = ramp_tokens(3, config.vocab_size, 7);

  std::vector<TokenId> full(prompt.begin(), prompt.end());
  full.insert(full.end(), cont.begin(), cont.end());
  const auto expected = serial_rows(model, full);

  InferenceSession session(model);
  session.prefill(prompt);
  const InferenceSession::Snapshot snap = session.snapshot();

  // Speculate past the snapshot, roll back BELOW it, then restore: the
  // snapshot must fully reinstall its prefix.
  const TokenId junk[3] = {1, 2, 3};
  session.verify(std::span<const TokenId>(junk, 3));
  session.truncate(2);
  session.restore(snap);
  EXPECT_EQ(session.position(), static_cast<std::int64_t>(prompt.size()));
  for (std::size_t i = 0; i < cont.size(); ++i) {
    const std::vector<float>& row = session.step(cont[i]);
    EXPECT_TRUE(rows_equal(std::span<const float>(row.data(), row.size()),
                           expected[prompt.size() + i]))
        << "continuation step " << i;
  }
}

TEST(KvTruncate, TruncateF16KvRedecodeIsBitwise) {
  Rng rng(44);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  const auto base = ramp_tokens(5, config.vocab_size, 3);
  const auto retry = ramp_tokens(3, config.vocab_size, 13);

  std::vector<TokenId> straight(base.begin(), base.begin() + 2);
  straight.insert(straight.end(), retry.begin(), retry.end());
  const auto expected = serial_rows(model, straight, DType::kF16);

  SessionState state(config, config.max_seq_len, 7, DType::kF16);
  DecodeScratch scratch(config, 1);
  std::vector<float> row(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : base) {
    decode_step(model, state, scratch, token,
                std::span<float>(row.data(), row.size()));
  }
  state.truncate(2);
  for (std::size_t i = 0; i < retry.size(); ++i) {
    decode_step(model, state, scratch, retry[i],
                std::span<float>(row.data(), row.size()));
    EXPECT_TRUE(rows_equal(std::span<const float>(row.data(), row.size()),
                           expected[2 + i]))
        << "f16 redecode step " << i;
  }
}

TEST(KvTruncate, TruncateDoesNotDisturbRadixCacheEntries) {
  Rng rng(45);
  const TransformerModel model(spec_config(), rng);
  const auto& config = model.config();
  const auto prompt = ramp_tokens(8, config.vocab_size, 3);

  RadixKvCache cache(config, /*max_bytes=*/1 << 22);
  SessionState writer(config, config.max_seq_len);
  DecodeScratch scratch(config, 1);
  std::vector<float> row(static_cast<std::size_t>(config.vocab_size));
  for (const TokenId token : prompt) {
    decode_step(model, writer, scratch, token,
                std::span<float>(row.data(), row.size()));
  }
  cache.insert(std::span<const TokenId>(prompt.data(), prompt.size()),
               writer);

  // Session B reuses the cached prefix while holding a pin, speculates,
  // and rolls all the way back to zero. The cache rows it copied must be
  // untouched: a third session acquiring afterwards decodes bitwise.
  SessionState b(config, config.max_seq_len);
  auto ref_b =
      cache.acquire(std::span<const TokenId>(prompt.data(), prompt.size()),
                    b);
  ASSERT_EQ(ref_b.matched(), static_cast<std::int64_t>(prompt.size()));
  DecodeScratch spec_scratch(config, 4);
  const auto junk = ramp_tokens(4, config.vocab_size, 23);
  std::vector<float> junk_logits(
      junk.size() * static_cast<std::size_t>(config.vocab_size));
  verify_step(model, b, spec_scratch,
              std::span<const TokenId>(junk.data(), junk.size()),
              std::span<float>(junk_logits.data(), junk_logits.size()));
  b.truncate(0);
  ref_b.release();

  const TokenId probe =
      static_cast<TokenId>(5 % config.vocab_size);
  std::vector<TokenId> straight = prompt;
  straight.push_back(probe);
  const auto expected = serial_rows(model, straight);

  SessionState c(config, config.max_seq_len);
  auto ref_c =
      cache.acquire(std::span<const TokenId>(prompt.data(), prompt.size()),
                    c);
  ASSERT_EQ(ref_c.matched(), static_cast<std::int64_t>(prompt.size()));
  decode_step(model, c, scratch, probe,
              std::span<float>(row.data(), row.size()));
  EXPECT_TRUE(rows_equal(std::span<const float>(row.data(), row.size()),
                         expected.back()));
}

}  // namespace
}  // namespace chipalign
