// Tests for the evaluation module: metrics (hand-computed references),
// rubric grader, IFEval checker plumbing.

#include <gtest/gtest.h>

#include "data/qa_bench.hpp"
#include "eval/grader.hpp"
#include "eval/ifeval.hpp"
#include "eval/metrics.hpp"
#include "eval/qa_runner.hpp"
#include "rag/retrieval.hpp"

namespace chipalign {
namespace {

TEST(Metrics, LcsLength) {
  EXPECT_EQ(lcs_length({"a", "b", "c"}, {"a", "c"}), 2u);
  EXPECT_EQ(lcs_length({"a", "b"}, {"c", "d"}), 0u);
  EXPECT_EQ(lcs_length({}, {"a"}), 0u);
  EXPECT_EQ(lcs_length({"x", "a", "y", "b", "z"}, {"a", "b"}), 2u);
}

TEST(Metrics, RougeLIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(rouge_l("routes the nets", "routes the nets"), 1.0);
}

TEST(Metrics, RougeLHandComputed) {
  // hyp = "the cat sat" (3), ref = "the cat sat down" (4), LCS = 3.
  // P = 1, R = 0.75, F1 = 2*0.75/1.75 = 6/7.
  EXPECT_NEAR(rouge_l("the cat sat", "the cat sat down"), 6.0 / 7.0, 1e-9);
}

TEST(Metrics, RougeLCaseAndPunctInsensitive) {
  EXPECT_DOUBLE_EQ(rouge_l("(ROUTES THE NETS)", "routes the nets"), 1.0);
}

TEST(Metrics, RougeLDisjointIsZero) {
  EXPECT_DOUBLE_EQ(rouge_l("alpha beta", "gamma delta"), 0.0);
  EXPECT_DOUBLE_EQ(rouge_l("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(rouge_l("x", ""), 0.0);
}

TEST(Metrics, RougeLOrderMatters) {
  // Same bag of words, scrambled order: LCS < n.
  const double scrambled = rouge_l("nets the routes", "routes the nets");
  EXPECT_LT(scrambled, 1.0);
  EXPECT_GT(scrambled, 0.0);
}

TEST(Metrics, Rouge1HandComputed) {
  // hyp "a a b" vs ref "a b b": clipped overlap = 1(a) + 1(b) = 2.
  // P = 2/3, R = 2/3, F1 = 2/3.
  EXPECT_NEAR(rouge_1("a a b", "a b b"), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, TokenF1EqualsRouge1) {
  EXPECT_DOUBLE_EQ(token_f1("a a b", "a b b"), rouge_1("a a b", "a b b"));
}

TEST(Metrics, BleuPerfectMatchIsOne) {
  EXPECT_NEAR(bleu("the cat sat on the mat", "the cat sat on the mat"), 1.0,
              1e-9);
}

TEST(Metrics, BleuZeroWhenNoUnigramOverlap) {
  EXPECT_DOUBLE_EQ(bleu("aaa bbb", "ccc ddd"), 0.0);
}

TEST(Metrics, BleuBrevityPenaltyPunishesShortHyps) {
  const double full = bleu("the cat sat on the mat", "the cat sat on the mat");
  const double shortened = bleu("the cat", "the cat sat on the mat");
  EXPECT_LT(shortened, full);
}

TEST(Metrics, BleuHandlesShortSentences) {
  // Two tokens: only 1- and 2-gram orders available; must not throw or NaN.
  const double score = bleu("fast mode", "fast mode");
  EXPECT_GT(score, 0.9);
}

/// Property sweep: metric values are bounded and ROUGE F1 is symmetric.
class MetricProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperties, BoundedAndSymmetric) {
  Rng rng(GetParam());
  auto random_text = [&rng] {
    std::string text;
    const int words = 1 + static_cast<int>(rng.uniform_index(6));
    for (int w = 0; w < words; ++w) {
      if (w > 0) text += ' ';
      const int len = 1 + static_cast<int>(rng.uniform_index(5));
      for (int c = 0; c < len; ++c) {
        text += static_cast<char>('a' + rng.uniform_index(26));
      }
    }
    return text;
  };
  for (int i = 0; i < 25; ++i) {
    const std::string a = random_text();
    const std::string b = random_text();
    for (double value : {rouge_l(a, b), rouge_1(a, b), bleu(a, b),
                         token_f1(a, b)}) {
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, 1.0 + 1e-12);
    }
    // F1 metrics are symmetric in their arguments.
    EXPECT_NEAR(rouge_l(a, b), rouge_l(b, a), 1e-12);
    EXPECT_NEAR(rouge_1(a, b), rouge_1(b, a), 1e-12);
    // Identity scores 1.
    EXPECT_NEAR(rouge_l(a, a), 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperties,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(Grader, PerfectAnswerScores100) {
  EXPECT_EQ(rubric_grade("routes the nets", "routes the nets", {}), 100);
}

TEST(Grader, EmptyOrUnrelatedScoresZero) {
  EXPECT_EQ(rubric_grade("", "routes the nets", {}), 0);
  EXPECT_EQ(rubric_grade("entirely unrelated words", "routes the nets", {}), 0);
}

TEST(Grader, PartialAnswersGetMiddleBands) {
  // Half the tokens right.
  const int grade = rubric_grade("routes the pins wrong", "routes the nets in",
                                 {});
  EXPECT_GE(grade, 25);
  EXPECT_LE(grade, 75);
}

TEST(Grader, InstructionViolationCostsOneBand) {
  const std::vector<InstructionKind> instructions = {InstructionKind::kUpper};
  const int compliant = rubric_grade("ROUTES THE NETS", "ROUTES THE NETS",
                                     instructions);
  const int violating = rubric_grade("routes the nets", "ROUTES THE NETS",
                                     instructions);
  EXPECT_EQ(compliant, 100);
  EXPECT_EQ(violating, 75);
}

TEST(Grader, ViolationCannotGoBelowZero) {
  const std::vector<InstructionKind> instructions = {InstructionKind::kUpper};
  EXPECT_EQ(rubric_grade("wrong words entirely", "GOLDEN ANSWER", instructions),
            0);
}

TEST(Grader, AllBandsReachable) {
  // Craft responses with decreasing overlap against a 5-token golden answer.
  const std::string golden = "alpha beta gamma delta epsilon";
  EXPECT_EQ(rubric_grade(golden, golden, {}), 100);
  EXPECT_EQ(rubric_grade("alpha beta gamma delta zz", golden, {}), 75);
  EXPECT_EQ(rubric_grade("alpha beta qq zz yy", golden, {}), 50);
  EXPECT_EQ(rubric_grade("alpha qq zz yy ww", golden, {}), 25);
  EXPECT_EQ(rubric_grade("qq zz yy ww vv", golden, {}), 0);
}

// -- harness plumbing over a tiny random model
// ---------------------------------

ModelConfig harness_config() {
  ModelConfig config;
  config.name = "harness";
  config.vocab_size = tokenizer().vocab_size();
  config.d_model = 16;
  config.n_layers = 1;
  config.n_heads = 2;
  config.n_kv_heads = 1;
  config.d_ff = 24;
  config.max_seq_len = 512;  // multi-turn industrial prompts are long
  config.validate();
  return config;
}

TEST(Harness, IfevalProducesBoundedAccuracies) {
  Rng rng(1);
  TransformerModel model(harness_config(), rng);
  const auto items = build_ifeval_set(1, 10, 2);
  const IfEvalResult result = run_ifeval(model, items);
  EXPECT_EQ(result.prompt_count, 10);
  EXPECT_GE(result.instruction_count, 10);
  for (double v : {result.prompt_strict, result.prompt_loose,
                   result.instruction_strict, result.instruction_loose}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Loose accuracy can never be below strict accuracy.
  EXPECT_GE(result.prompt_loose, result.prompt_strict);
  EXPECT_GE(result.instruction_loose, result.instruction_strict);
}

TEST(Harness, OpenroadEvalCoversCategoriesInBothModes) {
  Rng rng(2);
  TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_openroad_eval(facts, 2, 9);
  const RetrievalPipeline rag(facts.corpus_sentences());

  const CategoryScores golden = run_openroad_eval(model, items, nullptr);
  const CategoryScores ragged = run_openroad_eval(model, items, &rag);
  EXPECT_EQ(golden.by_category.size(), 3u);
  EXPECT_EQ(ragged.by_category.size(), 3u);
  int total = 0;
  for (const auto& [category, count] : golden.counts) total += count;
  EXPECT_EQ(total, 9);
  EXPECT_GE(golden.all, 0.0);
  EXPECT_LE(golden.all, 1.0);
}

TEST(Harness, IndustrialEvalGradesBothSettings) {
  Rng rng(3);
  TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_industrial_eval(facts, 3, 1);
  const RetrievalPipeline rag(facts.corpus_sentences());

  const CategoryScores single =
      run_industrial_eval(model, items, rag, /*multi_turn=*/false);
  const CategoryScores multi =
      run_industrial_eval(model, items, rag, /*multi_turn=*/true);
  EXPECT_EQ(single.by_category.size(), 4u);
  EXPECT_EQ(multi.by_category.size(), 4u);
  for (const auto& [category, score] : single.by_category) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 100.0);
  }
}

TEST(Harness, MultiMetricEvalReturnsAllFourMetrics) {
  Rng rng(5);
  TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_openroad_eval(facts, 6, 6);
  const auto scores = run_openroad_eval_metrics(model, items);
  ASSERT_EQ(scores.size(), 4u);
  for (const char* metric : {"rouge_l", "rouge_1", "bleu", "token_f1"}) {
    ASSERT_TRUE(scores.count(metric)) << metric;
    EXPECT_GE(scores.at(metric).all, 0.0);
    EXPECT_LE(scores.at(metric).all, 1.0);
  }
  // token_f1 is rouge_1 by construction.
  EXPECT_DOUBLE_EQ(scores.at("token_f1").all, scores.at("rouge_1").all);
}

TEST(Harness, McqAccuracyNearChanceForRandomModel) {
  Rng rng(4);
  TransformerModel model(harness_config(), rng);
  const FactBase facts;
  const auto items = build_mcq_eval(facts, 4, 8);  // 24 questions
  const CategoryScores scores = run_mcq_eval(model, items);
  // A random model picks by spurious likelihoods; accuracy must be a valid
  // frequency and (with 24 items) not perfect.
  EXPECT_GE(scores.all, 0.0);
  EXPECT_LT(scores.all, 1.0);
  EXPECT_EQ(scores.by_category.size(), 3u);
}

}  // namespace
}  // namespace chipalign
