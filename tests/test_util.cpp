// Tests for src/util: rng, strings, thread pool, error macros, timer,
// xxh64 hashing, peak-RSS probe.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/mem_probe.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

TEST(Error, ThrowCarriesMessageAndLocation) {
  try {
    CA_THROW("value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesAndFails) {
  EXPECT_NO_THROW(CA_CHECK(1 + 1 == 2, "fine"));
  EXPECT_THROW(CA_CHECK(1 + 1 == 3, "broken"), Error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(2);
  std::vector<int> histogram(5, 0);
  for (int i = 0; i < 5000; ++i) {
    ++histogram[static_cast<std::size_t>(rng.uniform_index(5))];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(5);
  parent2.split();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
  (void)child;
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtils, SplitWhitespaceDropsEmpties) {
  const auto parts = split_whitespace("  hello\t world \n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtils, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StringUtils, CaseTransforms) {
  EXPECT_EQ(to_upper("aBc 1!"), "ABC 1!");
  EXPECT_EQ(to_lower("aBc 1!"), "abc 1!");
}

TEST(StringUtils, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "hello!"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("hello", "hel"));
}

TEST(StringUtils, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("no hits", "x", "y"), "no hits");
}

TEST(StringUtils, WordTokensLowercasesAndDropsPunct) {
  const auto tokens = word_tokens("Hello, World! x2 (ok)");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "x2");
  EXPECT_EQ(tokens[3], "ok");
  EXPECT_EQ(count_words("one two  three."), 3u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) CA_THROW("boom");
                        }),
      Error);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  int counter = 0;
  pool.parallel_for(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 10);
}

// Regression: completion used to be tracked by a pool-global in-flight
// counter, so a second caller's parallel_for could return while the first
// caller's tasks were still running (and steal its exceptions). With
// per-batch tokens, each caller must see exactly its own work complete.
TEST(ThreadPool, ConcurrentParallelForCallersAreIsolated) {
  ThreadPool pool(4);
  constexpr int kIters = 50;
  std::atomic<int> a_done{0};
  std::atomic<int> b_done{0};
  std::thread caller_a([&] {
    for (int iter = 0; iter < kIters; ++iter) {
      std::vector<std::atomic<int>> hits(17);
      pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
      for (const auto& hit : hits) ASSERT_EQ(hit.load(), 1);
      ++a_done;
    }
  });
  std::thread caller_b([&] {
    for (int iter = 0; iter < kIters; ++iter) {
      std::vector<std::atomic<int>> hits(23);
      pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
      for (const auto& hit : hits) ASSERT_EQ(hit.load(), 1);
      ++b_done;
    }
  });
  caller_a.join();
  caller_b.join();
  EXPECT_EQ(a_done.load(), kIters);
  EXPECT_EQ(b_done.load(), kIters);
}

// One caller's task exception must surface only in that caller's wait; the
// other concurrent caller must finish cleanly.
TEST(ThreadPool, ExceptionStaysWithItsBatch) {
  ThreadPool pool(4);
  std::atomic<bool> thrower_threw{false};
  std::atomic<bool> clean_ok{true};
  std::thread thrower([&] {
    for (int iter = 0; iter < 20; ++iter) {
      try {
        pool.parallel_for(8, [&](std::size_t i) {
          if (i == 5) CA_THROW("batch-local boom");
        });
      } catch (const Error&) {
        thrower_threw = true;
      }
    }
  });
  std::thread clean([&] {
    for (int iter = 0; iter < 20; ++iter) {
      try {
        std::atomic<int> count{0};
        pool.parallel_for(8, [&](std::size_t) { ++count; });
        if (count.load() != 8) clean_ok = false;
      } catch (...) {
        clean_ok = false;  // must never observe the other batch's exception
      }
    }
  });
  thrower.join();
  clean.join();
  EXPECT_TRUE(thrower_threw.load());
  EXPECT_TRUE(clean_ok.load());
}

// Regression: a parallel_for issued from inside a worker task used to
// deadlock once all workers blocked on subtasks nobody was free to run. The
// nested call must run inline on the worker and complete.
TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> inner_hits(2 * 16);
  pool.parallel_for(2, [&](std::size_t outer) {
    // Work-sharing dispatch may run an outer index on the calling thread or
    // a worker; either way the nested call must complete (inline on workers)
    // with every inner index run exactly once.
    pool.parallel_for(16, [&](std::size_t inner) {
      ++inner_hits[outer * 16 + inner];
    });
  });
  for (const auto& hit : inner_hits) EXPECT_EQ(hit.load(), 1);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

// Regression for the Batch::cancel() memory-ordering audit: a cross-thread
// cancel must skip every not-yet-started task (never hang wait()), a worker
// that observes the flag must also observe writes made before cancel()
// (release/acquire), and the pool must stay fully usable afterwards. The
// serving engine relies on this shape to cut queued work short when a
// request is cancelled mid-flight.
TEST(ThreadPool, CrossThreadBatchCancelSkipsQueuedWorkAndStaysUsable) {
  ThreadPool pool(1);  // one worker: the blocker pins the whole pool
  ThreadPool::Batch batch;
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release_blocker{false};
  std::atomic<int> ran{0};
  std::atomic<int> cancel_cause{0};  // written before cancel(); workers
                                     // observing the flag must see 42
  pool.submit(batch, [&] {
    blocker_started.store(true);
    while (!release_blocker.load()) std::this_thread::yield();
    ++ran;
  });
  while (!blocker_started.load()) std::this_thread::yield();
  for (int i = 0; i < 50; ++i) {
    pool.submit(batch, [&] {
      if (batch.cancelled()) {
        // acquire on cancelled() pairs with the canceller's release: the
        // cause written before cancel() must be visible here.
        EXPECT_EQ(cancel_cause.load(std::memory_order_relaxed), 42);
      }
      ++ran;
    });
  }
  std::thread canceller([&] {
    cancel_cause.store(42, std::memory_order_relaxed);
    batch.cancel();
    release_blocker.store(true);
  });
  canceller.join();
  batch.wait();  // must not hang: skipped tasks still signal completion
  EXPECT_TRUE(batch.cancelled());
  // Only the already-running blocker was guaranteed to run; everything
  // queued after the cancel was observed is skipped.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 51);

  // A fresh batch on the same pool is unaffected.
  ThreadPool::Batch fresh;
  std::atomic<int> fresh_ran{0};
  for (int i = 0; i < 8; ++i) pool.submit(fresh, [&] { ++fresh_ran; });
  fresh.wait();
  EXPECT_EQ(fresh_ran.load(), 8);
  EXPECT_FALSE(fresh.cancelled());
}

// Reference vectors for XXH64 with seed 0, from the canonical xxHash
// implementation. Pins bit-compatibility of the from-scratch port.
TEST(Hash, Xxh64MatchesReferenceVectors) {
  EXPECT_EQ(xxh64(""), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxh64("a"), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxh64("abc"), 0x44BC2CF5AD770999ULL);
  // >32 bytes exercises the four-lane main loop.
  EXPECT_EQ(xxh64("The quick brown fox jumps over the lazy dog"),
            0x0B242D361FDA71BCULL);
}

TEST(Hash, Xxh64SeedChangesDigest) {
  EXPECT_NE(xxh64("abc", 3, 0), xxh64("abc", 3, 1));
  const char* text = "abc";
  EXPECT_EQ(xxh64(text, 3, 0), xxh64(std::string("abc")));
}

TEST(Hash, StreamMatchesOneShotAcrossSplits) {
  Rng rng(9);
  std::vector<std::uint8_t> bytes(1000);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  const std::uint64_t oneshot = xxh64(bytes.data(), bytes.size());

  Xxh64Stream stream;
  stream.update(bytes.data(), 7);
  stream.update(bytes.data() + 7, 500);
  stream.update(bytes.data() + 507, bytes.size() - 507);
  EXPECT_EQ(stream.digest(), oneshot);
}

TEST(Hash, HexRoundTripAndValidation) {
  const std::uint64_t value = 0x0123456789ABCDEFULL;
  const std::string hex = hash_to_hex(value);
  EXPECT_EQ(hex, "0123456789abcdef");
  EXPECT_EQ(hash_from_hex(hex), value);
  EXPECT_EQ(hash_from_hex(hash_to_hex(0)), 0u);
  EXPECT_THROW(hash_from_hex("123"), Error);            // wrong length
  EXPECT_THROW(hash_from_hex("0123456789abcdeg"), Error);  // bad digit
}

TEST(MemProbe, ReportsPositiveRssOnLinux) {
  const std::uint64_t peak = peak_rss_bytes();
  const std::uint64_t current = current_rss_bytes();
  // /proc/self/status exists on every target platform of this repo; both
  // probes degrade to 0 elsewhere, in which case there is nothing to check.
  if (peak == 0 || current == 0) GTEST_SKIP() << "no /proc/self/status";
  EXPECT_GE(peak, current / 2);  // peak is a high-water mark (page-granular)
  EXPECT_GT(current, 1u << 20);  // a running gtest binary exceeds 1 MB
}

TEST(MemProbe, PeakIsMonotoneUnderAllocation) {
  const std::uint64_t before = peak_rss_bytes();
  if (before == 0) GTEST_SKIP() << "no /proc/self/status";
  // Touch 32 MB so the high-water mark cannot decrease.
  std::vector<std::uint8_t> block(32u << 20);
  std::memset(block.data(), 0xAB, block.size());
  EXPECT_GE(peak_rss_bytes(), before);
}

TEST(MemProbe, FormatBytesIsHumanReadable) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KB");
  EXPECT_EQ(format_bytes(3u << 20), "3.0 MB");
  EXPECT_EQ(format_bytes(5ull << 30), "5.0 GB");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace chipalign
