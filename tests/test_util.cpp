// Tests for src/util: rng, strings, thread pool, error macros, timer.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace chipalign {
namespace {

TEST(Error, ThrowCarriesMessageAndLocation) {
  try {
    CA_THROW("value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesAndFails) {
  EXPECT_NO_THROW(CA_CHECK(1 + 1 == 2, "fine"));
  EXPECT_THROW(CA_CHECK(1 + 1 == 3, "broken"), Error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(2);
  std::vector<int> histogram(5, 0);
  for (int i = 0; i < 5000; ++i) {
    ++histogram[static_cast<std::size_t>(rng.uniform_index(5))];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(5);
  parent2.split();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
  (void)child;
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtils, SplitWhitespaceDropsEmpties) {
  const auto parts = split_whitespace("  hello\t world \n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtils, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StringUtils, CaseTransforms) {
  EXPECT_EQ(to_upper("aBc 1!"), "ABC 1!");
  EXPECT_EQ(to_lower("aBc 1!"), "abc 1!");
}

TEST(StringUtils, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "hello!"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("hello", "hel"));
}

TEST(StringUtils, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("no hits", "x", "y"), "no hits");
}

TEST(StringUtils, WordTokensLowercasesAndDropsPunct) {
  const auto tokens = word_tokens("Hello, World! x2 (ok)");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "x2");
  EXPECT_EQ(tokens[3], "ok");
  EXPECT_EQ(count_words("one two  three."), 3u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) CA_THROW("boom");
                        }),
      Error);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  int counter = 0;
  pool.parallel_for(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 10);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace chipalign
