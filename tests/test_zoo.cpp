// Tests for the cached model zoo using a micro backbone spec (tiny budgets
// so the whole pipeline runs in seconds).

#include <gtest/gtest.h>

#include <filesystem>

#include "core/model_zoo.hpp"
#include "tensor/tensor_ops.hpp"

namespace chipalign {
namespace {

BackboneSpec micro_spec() {
  BackboneSpec spec;
  spec.name = "micro-zoo-test";
  spec.config.name = spec.name;
  spec.config.vocab_size = tokenizer().vocab_size();
  spec.config.d_model = 16;
  spec.config.n_layers = 1;
  spec.config.n_heads = 2;
  spec.config.n_kv_heads = 1;
  spec.config.d_ff = 24;
  spec.config.max_seq_len = 256;
  spec.init_seed = 9;

  TrainConfig tiny;
  tiny.steps = 4;
  tiny.batch_size = 2;
  tiny.peak_lr = 1e-3;
  tiny.warmup_steps = 1;
  spec.pretrain = tiny;
  spec.instruct_ft = tiny;
  spec.daft = tiny;
  spec.chip_recipe = BackboneSpec::ChipRecipe::kLoraFromInstruct;
  spec.chip_domains = {FactDomain::kVlsiFlow};
  return spec;
}

std::string temp_cache_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("ca_zoo_test_") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

double distance(const Checkpoint& a, const Checkpoint& b) {
  double worst = 0.0;
  for (const std::string& name : a.names()) {
    worst = std::max(worst, ops::max_abs_diff(a.at(name), b.at(name)));
  }
  return worst;
}

TEST(ModelZoo, BuildsAllRolesAndCachesThem) {
  ModelZoo zoo(temp_cache_dir("roles"));
  const BackboneSpec spec = micro_spec();

  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  const Checkpoint chip = zoo.chip(spec);
  EXPECT_TRUE(base.all_finite());
  EXPECT_TRUE(instruct.all_finite());
  EXPECT_TRUE(chip.all_finite());
  check_mergeable(base, instruct);
  check_mergeable(base, chip);

  // Cache files exist under the fingerprinted names.
  for (const char* role : {"base", "instruct", "chip"}) {
    EXPECT_TRUE(std::filesystem::exists(zoo.cache_path(spec, role))) << role;
  }

  // Second fetch is a byte-identical cache hit.
  const Checkpoint again = zoo.base(spec);
  EXPECT_EQ(distance(base, again), 0.0);
}

TEST(ModelZoo, RolesDiffer) {
  ModelZoo zoo(temp_cache_dir("differ"));
  const BackboneSpec spec = micro_spec();
  const Checkpoint base = zoo.base(spec);
  const Checkpoint instruct = zoo.instruct(spec);
  EXPECT_GT(distance(base, instruct), 0.0);  // finetuning moved the weights
}

TEST(ModelZoo, FingerprintSeparatesRecipes) {
  ModelZoo zoo(temp_cache_dir("fp"));
  const BackboneSpec spec = micro_spec();
  BackboneSpec other = spec;
  other.daft.steps += 1;

  // Changing the DAFT recipe must change only the chip cache path.
  EXPECT_EQ(zoo.cache_path(spec, "base"), zoo.cache_path(other, "base"));
  EXPECT_EQ(zoo.cache_path(spec, "instruct"),
            zoo.cache_path(other, "instruct"));
  EXPECT_NE(zoo.cache_path(spec, "chip"), zoo.cache_path(other, "chip"));

  // Changing pretraining invalidates everything.
  BackboneSpec repretrained = spec;
  repretrained.pretrain.seed += 1;
  EXPECT_NE(zoo.cache_path(spec, "base"),
            zoo.cache_path(repretrained, "base"));
  EXPECT_NE(zoo.cache_path(spec, "chip"),
            zoo.cache_path(repretrained, "chip"));
}

TEST(ModelZoo, ChipNemoRecipeBuildsFromBase) {
  ModelZoo zoo(temp_cache_dir("nemo"));
  BackboneSpec spec = micro_spec();
  spec.chip_recipe = BackboneSpec::ChipRecipe::kChipNemoFromBase;
  spec.chip_instruct_frac = 0.2;
  spec.chip_domains = {};
  const Checkpoint chip = zoo.chip(spec);
  EXPECT_TRUE(chip.all_finite());
  // The ChipNeMo recipe must not require the instruct model at all.
  EXPECT_FALSE(std::filesystem::exists(zoo.cache_path(spec, "instruct")));
}

}  // namespace
}  // namespace chipalign
