// Tests for src/tensor: Tensor, kernels, half-precision codecs.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/dtype.hpp"
#include "tensor/half.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace chipalign {
namespace {

TEST(Shape, NumelAndString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0, 5}), 0);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(shape_numel({-1}), Error);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.values()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, At2AndRowAccess) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at2(0, 2), 3.0F);
  EXPECT_EQ(t.at2(1, 0), 4.0F);
  auto row = t.row(1);
  EXPECT_EQ(row[2], 6.0F);
  EXPECT_THROW(t.at2(2, 0), Error);
  EXPECT_THROW(t.row(-1), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(Tensor, RandnStats) {
  Rng rng(1);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0F);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float v : t.values()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.1);
}

TEST(Tensor, AllFiniteDetectsNan) {
  Tensor t({2});
  EXPECT_TRUE(t.all_finite());
  t[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.all_finite());
}

TEST(Ops, AxpyDotNormScale) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  ops::axpy(2.0F, a.values(), b.values());
  EXPECT_EQ(b[0], 6.0F);
  EXPECT_EQ(b[2], 12.0F);
  EXPECT_DOUBLE_EQ(ops::dot(a.values(), a.values()), 14.0);
  EXPECT_NEAR(ops::norm(a.values()), std::sqrt(14.0), 1e-12);
  ops::scale(a.values(), 0.5F);
  EXPECT_EQ(a[2], 1.5F);
}

TEST(Ops, CosineBounds) {
  Tensor a({2}, {1, 0});
  Tensor b({2}, {0, 1});
  Tensor c({2}, {2, 0});
  EXPECT_NEAR(ops::cosine(a.values(), b.values()), 0.0, 1e-12);
  EXPECT_NEAR(ops::cosine(a.values(), c.values()), 1.0, 1e-12);
  Tensor zero({2});
  EXPECT_EQ(ops::cosine(a.values(), zero.values()), 0.0);
}

TEST(Ops, SoftmaxNormalizesAndIsStable) {
  Tensor logits({3}, {1000.0F, 1000.0F, 1000.0F});
  ops::softmax_inplace(logits.values());
  for (float v : logits.values()) EXPECT_NEAR(v, 1.0F / 3.0F, 1e-6);

  Tensor big({2}, {-1e30F, 0.0F});
  ops::softmax_inplace(big.values());
  EXPECT_NEAR(big[1], 1.0F, 1e-6);
}

TEST(Ops, LogSumExpMatchesDirect) {
  Tensor logits({3}, {0.1F, 0.2F, 0.3F});
  const double direct =
      std::log(std::exp(0.1) + std::exp(0.2) + std::exp(0.3));
  EXPECT_NEAR(ops::log_sum_exp(logits.values()), direct, 1e-6);
}

TEST(Ops, Argmax) {
  Tensor t({4}, {1, 5, 5, 2});
  EXPECT_EQ(ops::argmax(t.values()), 1);  // first of the tie
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0F);
  EXPECT_EQ(c.at2(0, 1), 64.0F);
  EXPECT_EQ(c.at2(1, 0), 139.0F);
  EXPECT_EQ(c.at2(1, 1), 154.0F);
  EXPECT_THROW(ops::matmul(a, a), Error);
}

TEST(Ops, MatmulNtEqualsMatmulWithTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn({4, 5}, rng);
  Tensor w = Tensor::randn({3, 5}, rng);
  Tensor direct = ops::matmul_nt(a, w);
  Tensor viaT = ops::matmul(a, ops::transpose(w));
  EXPECT_LT(ops::max_abs_diff(direct, viaT), 1e-4);
}

TEST(Ops, MatmulTnAccumEqualsTransposedProduct) {
  Rng rng(3);
  Tensor a = Tensor::randn({6, 4}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  Tensor out({4, 5});
  ops::matmul_tn_accum(a, b, out);
  Tensor expected = ops::matmul(ops::transpose(a), b);
  EXPECT_LT(ops::max_abs_diff(out, expected), 1e-4);
  // Accumulation: second call doubles the result.
  ops::matmul_tn_accum(a, b, out);
  EXPECT_LT(ops::max_abs_diff(out, ops::scaled(expected, 2.0F)), 1e-4);
}

// Regression: matmul and matmul_tn_accum used to skip zero entries of `a`
// (`if (aval == 0.0F) continue;`), so a 0 in `a` against a NaN/Inf in `b`
// silently produced 0 instead of NaN — IEEE says 0 * NaN = NaN. No
// value-dependent skips are allowed.
TEST(Ops, MatmulPropagatesNanThroughZeroRows) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a({2, 2}, {0, 0, 1, 0});     // row 0 is all zeros
  Tensor b({2, 2}, {nan, 2, 3, 4});
  Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at2(0, 0)));  // 0 * NaN + 0 * 3
  EXPECT_TRUE(std::isnan(c.at2(1, 0)));  // 1 * NaN + 0 * 3
  EXPECT_EQ(c.at2(0, 1), 0.0F);
  EXPECT_EQ(c.at2(1, 1), 2.0F);
}

TEST(Ops, MatmulPropagatesInfThroughZeroEntries) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({1, 2}, {0, 1});
  Tensor b({2, 1}, {inf, 5});
  Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at2(0, 0)));  // 0 * inf = NaN, NaN + 5 = NaN
}

TEST(Ops, MatmulTnAccumPropagatesNanThroughZeroEntries) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a({1, 2}, {0, 1});        // a^T row 0 multiplies b row 0
  Tensor b({1, 2}, {nan, 2});
  Tensor out({2, 2});
  ops::matmul_tn_accum(a, b, out);
  EXPECT_TRUE(std::isnan(out.at2(0, 0)));  // 0 * NaN
  EXPECT_TRUE(std::isnan(out.at2(1, 0)));  // 1 * NaN
  EXPECT_EQ(out.at2(0, 1), 0.0F);
  EXPECT_EQ(out.at2(1, 1), 2.0F);
}

TEST(Ops, ScaledSumMatchesComposition) {
  Tensor a({3}, {1, -2, 4});
  Tensor b({3}, {10, 20, -30});
  const Tensor fused = ops::scaled_sum(0.25F, a, 0.5F, b);
  const Tensor composed = ops::add(ops::scaled(a, 0.25F), ops::scaled(b, 0.5F));
  EXPECT_EQ(ops::max_abs_diff(fused, composed), 0.0);
  Tensor c({2});
  EXPECT_THROW(ops::scaled_sum(1.0F, a, 1.0F, c), Error);
}

TEST(Ops, ScaledSumSpanAllowsAliasedOutput) {
  Tensor a({4}, {1, 2, 3, 4});
  Tensor b({4}, {5, 6, 7, 8});
  ops::scaled_sum(2.0F, a.values(), 1.0F, b.values(), b.values());
  EXPECT_EQ(b[0], 7.0F);
  EXPECT_EQ(b[3], 16.0F);
}

TEST(Ops, AddSubHadamard) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  EXPECT_EQ(ops::add(a, b)[1], 7.0F);
  EXPECT_EQ(ops::sub(b, a)[0], 2.0F);
  EXPECT_EQ(ops::hadamard(a, b)[1], 10.0F);
  Tensor c({3});
  EXPECT_THROW(ops::add(a, c), Error);
}

TEST(Ops, FrobeniusNormAndCosineSimilarity) {
  Tensor a({2, 2}, {3, 0, 0, 4});
  EXPECT_NEAR(ops::frobenius_norm(a), 5.0, 1e-12);
  EXPECT_NEAR(ops::cosine_similarity(a, ops::scaled(a, 2.0F)), 1.0, 1e-6);
}

TEST(Dtype, SizesNamesAndParsing) {
  EXPECT_EQ(dtype_size(DType::kF32), 4u);
  EXPECT_EQ(dtype_size(DType::kF16), 2u);
  EXPECT_EQ(dtype_size(DType::kBF16), 2u);
  for (DType d : {DType::kF32, DType::kF16, DType::kBF16}) {
    EXPECT_EQ(dtype_from_name(dtype_name(d)), d);
  }
  EXPECT_THROW(dtype_from_name("I64"), Error);
  EXPECT_THROW(dtype_from_name(""), Error);
}

// -- half precision codecs ----------------------------------------------------

TEST(Half, F16ExactValues) {
  EXPECT_EQ(f32_to_f16_bits(0.0F), 0);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(1.0F)), 1.0F);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(-2.0F)), -2.0F);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(0.5F)), 0.5F);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(65504.0F)), 65504.0F);  // f16 max
}

TEST(Half, F16OverflowToInf) {
  const float big = 1e6F;
  EXPECT_TRUE(std::isinf(f16_bits_to_f32(f32_to_f16_bits(big))));
  EXPECT_TRUE(std::isinf(f16_bits_to_f32(f32_to_f16_bits(-big))));
}

TEST(Half, F16NanPreserved) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(f32_to_f16_bits(nan))));
}

TEST(Half, F16SubnormalRoundTrip) {
  // Smallest positive f16 subnormal is 2^-24.
  const float tiny = std::ldexp(1.0F, -24);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(tiny)), tiny);
  // Half of it rounds to zero (round to even).
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(std::ldexp(1.0F, -26))), 0.0F);
}

TEST(Half, Bf16ExactForSmallIntegers) {
  for (float v : {0.0F, 1.0F, -1.0F, 2.0F, 128.0F, -0.5F}) {
    EXPECT_EQ(bf16_bits_to_f32(f32_to_bf16_bits(v)), v) << v;
  }
}

TEST(Half, Bf16NanPreserved) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(bf16_bits_to_f32(f32_to_bf16_bits(nan))));
}

TEST(Half, Bf16InfPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_bits_to_f32(f32_to_bf16_bits(inf)), inf);
  EXPECT_EQ(bf16_bits_to_f32(f32_to_bf16_bits(-inf)), -inf);
}

/// Property sweep: relative round-trip error is bounded by the format's
/// epsilon across magnitudes.
class HalfRoundTrip : public ::testing::TestWithParam<float> {};

TEST_P(HalfRoundTrip, F16RelativeErrorBounded) {
  const float v = GetParam();
  const float back = f16_bits_to_f32(f32_to_f16_bits(v));
  EXPECT_NEAR(back, v, std::abs(v) * 1e-3F + 1e-7F);
}

TEST_P(HalfRoundTrip, Bf16RelativeErrorBounded) {
  const float v = GetParam();
  const float back = bf16_bits_to_f32(f32_to_bf16_bits(v));
  EXPECT_NEAR(back, v, std::abs(v) * 8e-3F + 1e-38F);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HalfRoundTrip,
                         ::testing::Values(1e-4F, -3.14159F, 0.33333F, 7.0F,
                                           123.456F, -4096.5F, 1.5e4F,
                                           2.7e-3F, -9.9e2F, 0.099F));

}  // namespace
}  // namespace chipalign
